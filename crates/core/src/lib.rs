//! The SeeMoRe protocol: hybrid crash/Byzantine State Machine Replication
//! for public/private cloud environments.
//!
//! This crate contains the paper's primary contribution:
//!
//! * [`replica::SeeMoReReplica`] — a replica implementing the **Lion**,
//!   **Dog** and **Peacock** modes (Sections 5.1–5.3), including
//!   checkpointing, garbage collection, state transfer, per-mode view
//!   changes and dynamic mode switching (Section 5.4).
//! * [`client::ClientCore`] — the client side of the protocol: request
//!   submission, per-mode reply quorums and retransmission.
//! * [`batching`] — the request-batching controller: primaries order
//!   [`Batch`]es of requests (one sequence number, one quorum round per
//!   batch) under a [`config::BatchPolicy`] — either the
//!   static `max_batch` / `max_delay` knobs or the adaptive AIMD
//!   controller that sizes batches from observed load.
//! * [`byzantine`] — Byzantine behaviour wrappers used by the tests and the
//!   evaluation harness to inject equivocation, silence and signature
//!   corruption into public-cloud replicas.
//! * [`profile`] — the analytical cost model behind Table 1.
//!
//! # The read-only fast path
//!
//! Operations carry a read/write classification
//! ([`OpClass`](seemore_types::OpClass)); writes are batched, sequenced and
//! executed through full agreement, while reads are served from a replica's
//! executed state under a mode-aware freshness rule — the single biggest
//! win for real (read-heavy) workloads, in the lineage of PBFT's read-only
//! optimization:
//!
//! * **Lion / Dog — trusted-primary lease reads.** Only the current trusted
//!   primary serves reads, and only while it holds a *commit-index lease*:
//!   whenever a slot this primary proposed commits with quorum evidence (a
//!   Lion accept quorum, a Dog inform quorum), the lease is extended to
//!   `propose_time + τ` — anchored at the **send time of the proposal**,
//!   never at the arrival time of the evidence, because a delayed ACCEPT or
//!   INFORM could otherwise revive a deposed primary's lease after its
//!   successor has already committed. Replicas arm their suspicion timers
//!   no earlier than the proposal's send and wait out `τ` of silence before
//!   voting to depose, so every lease expires before a successor elected
//!   behind this primary's back can commit a conflicting write; a freshly
//!   installed primary starts lease-less and earns one from its first
//!   committed slot. Each read is additionally *fenced* at the primary's
//!   proposal frontier: it is served only once `last_executed` covers every
//!   slot the primary had proposed when the read arrived. The fence is what
//!   makes Dog reads linearizable — Dog proxies may acknowledge a write to
//!   its client before the primary's INFORM-driven execution catches up,
//!   and the fence forces the read to wait for exactly that prefix.
//! * **Peacock — quorum reads behind a prepared fence.** The primary is
//!   untrusted, so no single reply can be believed: every proxy answers
//!   from its executed state and the client accepts only `2m + 1`
//!   *matching* replies. Matching alone is not freshness, though — the
//!   write path acknowledges on `m + 1` matching replies, so `m` Byzantine
//!   proxies plus honest laggards could assemble a matching *stale* quorum
//!   against an already-acknowledged write. Each proxy therefore serves
//!   reads only once every slot it has **prepared** is executed (the
//!   prepared fence): an acknowledged write's commit quorum contains at
//!   least `m + 1` honest prepared proxies, so behind the fence at most `m`
//!   honest proxies can still answer with the pre-write value — not enough,
//!   together with `m` Byzantine ones, to reach `2m + 1`. A concurrent
//!   write to the same key makes replies mismatch, and the read falls
//!   back.
//!
//! Like every lease scheme (Raft leader leases, Spanner), the
//! trusted-primary lease is a *real-time* mechanism: it is sound under the
//! same bounded-delay assumption the suspicion timers already encode —
//! that a forwarded request reaches the primary within the suspicion
//! timeout's margin (the batching delay a request may additionally spend
//! in the primary's buffer *is* discounted from the anchor). Under
//! unbounded asynchrony a delayed forward could arm a suspicion timer
//! arbitrarily long before the primary ever proposes the request, and no
//! propose-time anchor can cover that; deployments that cannot accept the
//! assumption can disable the fast path and order every read
//! (`Scenario::with_read_fast_path(false)` — always linearizable, never
//! fast). Agreement safety itself never depends on the lease.
//!
//! A read **falls back to the ordered path** whenever the fast path cannot
//! answer: the contacted replica refuses (not the lease-holding primary,
//! lease expired, view change or mode switch in progress, or the
//! application cannot prove the operation read-only — see
//! [`StateMachine::execute_read`](seemore_app::StateMachine::execute_read)),
//! a Peacock reply quorum fails to match, or the client times out.
//! Refusals are first-class signed `READ-REPLY` messages so clients fall
//! back immediately; the fallback re-submits the identical operation under
//! the identical `(client, timestamp)` identity, inheriting the ordered
//! path's exactly-once handling. Ordering a read is always safe — just
//! slower — so the fast path is strictly an optimization, never a safety
//! dependency.
//!
//! Every protocol core is *sans-IO*: it consumes [`Message`]s and timer
//! expirations and produces [`Action`]s, never touching sockets, clocks or
//! threads. The `seemore-runtime` crate drives cores over either a threaded
//! in-memory network or a deterministic discrete-event simulator.
//!
//! [`Message`]: seemore_wire::Message
//! [`Batch`]: seemore_wire::Batch

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod actions;
pub mod batching;
pub mod byzantine;
pub mod checkpoint;
pub mod client;
pub mod config;
pub mod exec;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod protocol;
pub mod reads;
pub mod replica;
pub mod shard;
pub mod testkit;

pub use actions::{Action, Timer};
pub use batching::{
    AdaptiveBatchConfig, AdaptiveBatcher, BatchAccumulator, BatchConfig, FlushCause,
};
pub use byzantine::{ByzantineBehavior, ByzantineReplica};
pub use client::{ClientCore, ClientOutcome, ClientProtocol};
pub use config::{BatchPolicy, ProtocolConfig};
pub use exec::ExecutedEntry;
pub use metrics::{BatchTelemetry, ReplicaMetrics};
pub use profile::ProtocolProfile;
pub use protocol::ReplicaProtocol;
pub use reads::{ParkedReads, ReadTally};
pub use replica::SeeMoReReplica;
pub use shard::{route_operation, RoutedClient, ShardGuard, ShardRouter};
