//! Normal-case agreement handlers for the three SeeMoRe modes
//! (Sections 5.1–5.3 of the paper), generalized to order [`Batch`]es.
//!
//! The unit of agreement is a batch: the primary accumulates pending client
//! requests under the configured [`BatchPolicy`](crate::config::BatchPolicy)
//! (static knobs or the adaptive AIMD controller — see [`crate::batching`])
//! and assigns one sequence number to the whole batch, so one proposal
//! broadcast, one round of votes and one commit order every request it
//! carries. An effective batch cap of 1 degenerates to classic
//! one-request-per-slot agreement. The primary feeds its in-flight slot
//! count (proposed but not yet executed) to the controller at every cut;
//! that occupancy is the load signal the adaptive policy grows on.

use super::SeeMoReReplica;
use crate::actions::{Action, Timer};
use crate::log::Proposal;
use seemore_crypto::Signature;
use seemore_telemetry::EventKind;
use seemore_types::{Instant, Mode, NodeId, ProtocolViolation, ReplicaId, SeqNum, View};
use seemore_wire::{
    Accept, Batch, ClientRequest, Commit, Inform, Message, PbftPrepare, PrePrepare, Prepare,
    SignedPayload,
};

impl SeeMoReReplica {
    // ------------------------------------------------------------------
    // Primary: batching and proposing
    // ------------------------------------------------------------------

    /// Offers `request` to the batching controller, proposing immediately
    /// when the policy says so (always, when the effective cap is 1).
    pub(crate) fn buffer_or_propose(
        &mut self,
        actions: &mut Vec<Action>,
        request: ClientRequest,
        now: Instant,
    ) {
        let id = request.id();
        if self.assigned.contains_key(&id) {
            // Already ordered (duplicate transmission); the commit path will
            // answer the client.
            return;
        }
        self.trace(EventKind::RequestAdmitted, None, Some(id), 0);
        let in_flight = self.slots_in_flight();
        if let Some(batch) = self
            .batcher
            .offer(request, now, in_flight, actions, &mut self.metrics)
        {
            self.propose_batch(actions, batch, now);
        }
    }

    /// Slots this primary proposed that have not executed yet — the
    /// occupancy signal the adaptive batching policy grows on.
    pub(crate) fn slots_in_flight(&self) -> u64 {
        self.next_seq.0.saturating_sub(self.exec.last_executed().0)
    }

    /// The batch flush timer of `generation` fired: propose whatever is
    /// buffered, provided the generation is still current (a stale timer —
    /// one that raced a size-trigger cut — is counted and ignored, so it can
    /// never truncate the next buffer's delay). A replica that was deposed
    /// while buffering re-routes its buffer to the current primary instead,
    /// so no request is stranded.
    pub(crate) fn on_batch_flush(&mut self, generation: u64, now: Instant) -> Vec<Action> {
        let mut actions = Vec::new();
        if !self.batcher.timer_is_current(generation) {
            self.metrics.batch.stale_timer_fires += 1;
            return actions;
        }
        if self.vc.in_view_change {
            // Keep buffering: the buffer is re-routed when the new view is
            // installed (see `install_new_view`).
            return actions;
        }
        if self.is_primary() {
            let in_flight = self.slots_in_flight();
            if let Some(batch) =
                self.batcher
                    .on_flush_timer(generation, in_flight, &mut self.metrics)
            {
                self.propose_batch(&mut actions, batch, now);
            }
        } else {
            for request in self.batcher.drain(&mut actions) {
                self.forward_to_primary(&mut actions, request);
            }
        }
        actions
    }

    /// Forces out any partially accumulated batch (used when a new view is
    /// installed, where recovery should not wait out the flush delay).
    pub(crate) fn flush_pending_batch(&mut self, actions: &mut Vec<Action>, now: Instant) {
        if let Some(batch) = self.batcher.flush(actions, &mut self.metrics) {
            self.propose_batch(actions, batch, now);
        }
    }

    /// Assigns a sequence number to `batch` and broadcasts the proposal
    /// (a `PREPARE` in Lion/Dog, a `PRE-PREPARE` in Peacock). The slot's
    /// read-lease anchor is recorded as the send time *minus the batching
    /// delay bound*: a member request may have sat in the buffer for up to
    /// `max_delay` after arming a backup's suspicion timer via forwarding,
    /// and the lease derived from this slot must not outlive a deposal that
    /// timer could trigger.
    pub(crate) fn propose_batch(&mut self, actions: &mut Vec<Action>, batch: Batch, now: Instant) {
        let seq = SeqNum(self.next_seq.0.max(self.exec.last_executed().0) + 1);
        if !self.log.in_window(seq, self.pconfig.high_water_mark) {
            // The window is full; the batch is dropped and the clients will
            // retransmit once the backlog drains.
            return;
        }
        self.next_seq = seq;
        if self.mode.has_trusted_primary() {
            self.proposed_at
                .insert(seq, now.saturating_sub(self.pconfig.batch.max_delay()));
        }
        for id in batch.request_ids() {
            self.assigned.insert(id, seq);
        }
        if self.recorder.enabled() {
            self.trace(EventKind::BatchCut, Some(seq), None, batch.len() as u64);
            for id in batch.request_ids() {
                self.trace(
                    EventKind::ProposeSent,
                    Some(seq),
                    Some(id),
                    batch.len() as u64,
                );
            }
        }
        let digest = batch.digest();

        match self.mode {
            Mode::Lion | Mode::Dog => {
                let mut prepare = Prepare {
                    view: self.view,
                    seq,
                    digest,
                    batch: batch.clone(),
                    signature: Signature::INVALID,
                };
                prepare.signature = self.sign_payload(&prepare);
                let instance = self.log.instance_mut(seq);
                instance.proposal = Some(Proposal {
                    view: self.view,
                    digest,
                    batch,
                    primary_signature: prepare.signature,
                });
                let recipients = self.all_replicas();
                self.broadcast_to(actions, recipients, Message::Prepare(prepare));
            }
            Mode::Peacock => {
                let mut preprepare = PrePrepare {
                    view: self.view,
                    seq,
                    digest,
                    batch: batch.clone(),
                    signature: Signature::INVALID,
                };
                preprepare.signature = self.sign_payload(&preprepare);
                let instance = self.log.instance_mut(seq);
                instance.proposal = Some(Proposal {
                    view: self.view,
                    digest,
                    batch,
                    primary_signature: preprepare.signature,
                });
                // The paper: the Peacock primary multicasts the pre-prepare
                // (with the batch) to *all* nodes, not only the proxies.
                let recipients = self.all_replicas();
                self.broadcast_to(actions, recipients, Message::PrePrepare(preprepare));
                // Arm a progress timer on the primary too, so a stalled
                // quorum is detected even if backups are slow.
                self.progress_armed.insert(seq, self.view);
                actions.push(Action::SetTimer {
                    timer: Timer::RequestProgress { seq },
                    after: self.pconfig.request_timeout,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Proposal validation shared by PREPARE and PRE-PREPARE
    // ------------------------------------------------------------------

    /// Validates a batch proposal received from the network. On success the
    /// proposal is stored in the log and `true` is returned.
    ///
    /// `payload` is the proposal message itself; its canonical signing
    /// bytes are built through the replica's scratch buffer at the point of
    /// verification (allocation-free, memo-assisted on redelivery).
    #[allow(clippy::too_many_arguments)]
    fn accept_proposal(
        &mut self,
        actions: &mut Vec<Action>,
        from: NodeId,
        view: seemore_types::View,
        seq: SeqNum,
        digest: seemore_crypto::Digest,
        batch: Batch,
        signature: Signature,
        payload: &impl SignedPayload,
    ) -> bool {
        let Some(sender) = from.as_replica() else {
            actions.push(self.violation(ProtocolViolation::UnexpectedSender {
                sender: ReplicaId(u32::MAX),
                expected_role: "primary replica",
            }));
            return false;
        };
        if self.vc.in_view_change {
            return false;
        }
        if view != self.view {
            actions.push(self.violation(ProtocolViolation::WrongView {
                got: view,
                expected: self.view,
            }));
            return false;
        }
        if sender != self.current_primary() {
            actions.push(self.violation(ProtocolViolation::UnexpectedSender {
                sender,
                expected_role: "current primary",
            }));
            return false;
        }
        if !self.verify_payload_once(NodeId::Replica(sender), payload, &signature) {
            actions.push(self.violation(ProtocolViolation::BadSignature {
                claimed_signer: NodeId::Replica(sender),
            }));
            return false;
        }
        // The advertised digest must bind exactly the carried batch (content
        // *and* order), so a Byzantine primary cannot smuggle different
        // request orders past the quorum-matching digest.
        if digest != batch.digest() {
            actions.push(self.violation(ProtocolViolation::DigestMismatch { seq: Some(seq) }));
            return false;
        }
        if !self.log.in_window(seq, self.pconfig.high_water_mark) {
            actions.push(self.violation(ProtocolViolation::OutsideWindow {
                seq,
                low: self.log.low_mark(),
                high: SeqNum(self.log.low_mark().0 + self.pconfig.high_water_mark),
            }));
            return false;
        }
        let instance = self.log.instance_mut(seq);
        if let Some(existing) = &instance.proposal {
            if existing.view == view && existing.digest != digest {
                // The primary proposed two different batches for the same
                // sequence number. A trusted primary never does this; an
                // untrusted (Peacock) primary doing it is Byzantine.
                actions.push(self.violation(ProtocolViolation::Equivocation { seq, view }));
                return false;
            }
            if existing.view == view && existing.digest == digest {
                // Duplicate delivery; already stored.
                return true;
            }
        }
        instance.proposal = Some(Proposal {
            view,
            digest,
            batch,
            primary_signature: signature,
        });
        true
    }

    // ------------------------------------------------------------------
    // PREPARE (Lion and Dog modes)
    // ------------------------------------------------------------------

    /// Handles the trusted primary's `PREPARE`.
    pub(crate) fn on_prepare(
        &mut self,
        from: NodeId,
        prepare: Prepare,
        now: Instant,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.mode == Mode::Peacock {
            actions.push(self.violation(ProtocolViolation::WrongMode { current: self.mode }));
            return actions;
        }
        if !self.accept_proposal(
            &mut actions,
            from,
            prepare.view,
            prepare.seq,
            prepare.digest,
            prepare.batch.clone(),
            prepare.signature,
            &prepare,
        ) {
            return actions;
        }
        let seq = prepare.seq;
        let digest = prepare.digest;

        match self.mode {
            Mode::Lion => {
                // Every backup votes directly to the trusted primary; the
                // vote needs no signature because only the primary uses it.
                let accept = Accept {
                    view: self.view,
                    seq,
                    digest,
                    replica: self.id,
                    signature: None,
                };
                let primary = self.current_primary();
                self.send(
                    &mut actions,
                    NodeId::Replica(primary),
                    Message::Accept(accept),
                );
                self.progress_armed.insert(seq, self.view);
                actions.push(Action::SetTimer {
                    timer: Timer::RequestProgress { seq },
                    after: self.pconfig.request_timeout,
                });
            }
            Mode::Dog => {
                if self.is_proxy() {
                    // Proxies exchange *signed* accepts with each other; the
                    // signatures double as view-change evidence.
                    let mut accept = Accept {
                        view: self.view,
                        seq,
                        digest,
                        replica: self.id,
                        signature: None,
                    };
                    accept.signature = Some(self.sign_payload(&accept));
                    // Record our own vote before broadcasting.
                    self.log.instance_mut(seq).record_accept(self.id, digest);
                    let proxies = self.current_proxies();
                    self.broadcast_to(&mut actions, proxies, Message::Accept(accept));
                    self.progress_armed.insert(seq, self.view);
                    actions.push(Action::SetTimer {
                        timer: Timer::RequestProgress { seq },
                        after: self.pconfig.request_timeout,
                    });
                    self.try_commit_dog(&mut actions, seq, digest, now);
                }
                // Passive replicas just hold the proposal and wait for
                // INFORM messages; they might already have enough.
                self.try_execute_informed(&mut actions, seq, now);
            }
            Mode::Peacock => unreachable!("handled above"),
        }
        actions
    }

    // ------------------------------------------------------------------
    // PRE-PREPARE (Peacock mode)
    // ------------------------------------------------------------------

    /// Handles the untrusted primary's `PRE-PREPARE`.
    pub(crate) fn on_pre_prepare(
        &mut self,
        from: NodeId,
        preprepare: PrePrepare,
        now: Instant,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.mode != Mode::Peacock {
            actions.push(self.violation(ProtocolViolation::WrongMode { current: self.mode }));
            return actions;
        }
        if !self.accept_proposal(
            &mut actions,
            from,
            preprepare.view,
            preprepare.seq,
            preprepare.digest,
            preprepare.batch.clone(),
            preprepare.signature,
            &preprepare,
        ) {
            return actions;
        }
        let seq = preprepare.seq;
        let digest = preprepare.digest;

        if self.is_proxy() && !self.is_primary() {
            let mut vote = PbftPrepare {
                view: self.view,
                seq,
                digest,
                replica: self.id,
                signature: Signature::INVALID,
            };
            vote.signature = self.sign_payload(&vote);
            self.log
                .instance_mut(seq)
                .record_pbft_prepare(self.id, digest);
            let proxies = self.current_proxies();
            self.broadcast_to(&mut actions, proxies, Message::PbftPrepare(vote));
            self.progress_armed.insert(seq, self.view);
            actions.push(Action::SetTimer {
                timer: Timer::RequestProgress { seq },
                after: self.pconfig.request_timeout,
            });
            self.try_prepare_peacock(&mut actions, seq, digest, now);
        }
        // Passive replicas hold the proposal for later INFORM matching.
        self.try_execute_informed(&mut actions, seq, now);
        actions
    }

    // ------------------------------------------------------------------
    // ACCEPT (Lion: primary collects; Dog: proxies collect)
    // ------------------------------------------------------------------

    /// Handles an `ACCEPT` vote.
    pub(crate) fn on_accept(&mut self, from: NodeId, accept: Accept, now: Instant) -> Vec<Action> {
        let mut actions = Vec::new();
        let Some(sender) = from.as_replica() else {
            return actions;
        };
        if sender != accept.replica {
            actions.push(self.violation(ProtocolViolation::UnexpectedSender {
                sender,
                expected_role: "the replica named in the vote",
            }));
            return actions;
        }
        if accept.view != self.view || self.vc.in_view_change {
            actions.push(self.violation(ProtocolViolation::WrongView {
                got: accept.view,
                expected: self.view,
            }));
            return actions;
        }

        match self.mode {
            Mode::Lion => {
                if !self.is_primary() {
                    return actions; // only the primary consumes Lion accepts
                }
                self.note_vote_digest(accept.seq, accept.view, &accept.digest);
                let instance = self.log.instance_mut(accept.seq);
                if !instance.proposal_matches(accept.view, &accept.digest) {
                    return actions;
                }
                instance.record_accept(sender, accept.digest);
                self.try_commit_lion(&mut actions, accept.seq, accept.digest, now);
            }
            Mode::Dog => {
                if !self.is_proxy() {
                    return actions;
                }
                // Dog accepts must be signed by the voting proxy.
                let Some(signature) = accept.signature else {
                    actions.push(self.violation(ProtocolViolation::BadSignature {
                        claimed_signer: NodeId::Replica(sender),
                    }));
                    return actions;
                };
                if !self.cluster.is_proxy(sender, self.view)
                    || !self.verify_payload_once(NodeId::Replica(sender), &accept, &signature)
                {
                    actions.push(self.violation(ProtocolViolation::BadSignature {
                        claimed_signer: NodeId::Replica(sender),
                    }));
                    return actions;
                }
                self.note_vote_digest(accept.seq, accept.view, &accept.digest);
                self.log
                    .instance_mut(accept.seq)
                    .record_accept(sender, accept.digest);
                self.try_commit_dog(&mut actions, accept.seq, accept.digest, now);
            }
            Mode::Peacock => {
                actions.push(self.violation(ProtocolViolation::WrongMode { current: self.mode }));
            }
        }
        actions
    }

    /// Lion primary: commit once `2m + c` accepts (plus its own proposal)
    /// are in.
    fn try_commit_lion(
        &mut self,
        actions: &mut Vec<Action>,
        seq: SeqNum,
        digest: seemore_crypto::Digest,
        now: Instant,
    ) {
        let threshold = self.cluster.lion_accept_threshold() as usize;
        let instance = self.log.instance_mut(seq);
        let votes = instance.matching_accepts(&digest);
        if instance.commit_sent || votes < threshold {
            return;
        }
        let Some(proposal) = instance.proposal.clone() else {
            return;
        };
        instance.commit_sent = true;
        instance.committed = true;
        self.trace(EventKind::QuorumReached, Some(seq), None, votes as u64);
        self.trace(EventKind::Committed, Some(seq), None, 0);
        // An accept quorum of the current view followed this primary:
        // extend the read lease, anchored at the slot's *propose* time (not
        // at evidence arrival, which a delayed network could abuse).
        self.extend_read_lease_from_slot(seq);

        let mut commit = Commit {
            view: self.view,
            seq,
            digest,
            replica: self.id,
            // The Lion primary attaches the batch so a replica that missed
            // the PREPARE can still execute.
            batch: Some(proposal.batch.clone()),
            signature: Signature::INVALID,
        };
        commit.signature = self.sign_payload(&commit);
        let recipients = self.all_replicas();
        self.broadcast_to(actions, recipients, Message::Commit(commit));

        self.metrics.committed += 1;
        self.exec.add_committed(seq, proposal.batch);
        self.execute_ready(actions, now);
    }

    /// Dog proxy: commit once `2m + 1` matching accepts (including its own)
    /// are in.
    fn try_commit_dog(
        &mut self,
        actions: &mut Vec<Action>,
        seq: SeqNum,
        digest: seemore_crypto::Digest,
        now: Instant,
    ) {
        let threshold = self.cluster.proxy_quorum() as usize;
        let instance = self.log.instance_mut(seq);
        let votes = instance.matching_accepts(&digest);
        if instance.commit_sent || votes < threshold {
            return;
        }
        if !instance.proposal_matches(self.view, &digest) {
            return;
        }
        instance.commit_sent = true;
        self.trace(EventKind::QuorumReached, Some(seq), None, votes as u64);
        self.broadcast_commit_vote(actions, seq, digest);
        self.mark_committed_by_proxy(actions, seq, digest, now);
    }

    // ------------------------------------------------------------------
    // PBFT-PREPARE (Peacock mode)
    // ------------------------------------------------------------------

    /// Handles a PBFT-style `PREPARE` vote (Peacock proxies only).
    pub(crate) fn on_pbft_prepare(
        &mut self,
        from: NodeId,
        vote: PbftPrepare,
        now: Instant,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.mode != Mode::Peacock || !self.is_proxy() {
            return actions;
        }
        let Some(sender) = from.as_replica() else {
            return actions;
        };
        if vote.view != self.view || self.vc.in_view_change {
            actions.push(self.violation(ProtocolViolation::WrongView {
                got: vote.view,
                expected: self.view,
            }));
            return actions;
        }
        if sender != vote.replica
            || !self.cluster.is_proxy(sender, self.view)
            || !self.verify_payload_once(NodeId::Replica(sender), &vote, &vote.signature)
        {
            actions.push(self.violation(ProtocolViolation::BadSignature {
                claimed_signer: NodeId::Replica(vote.replica),
            }));
            return actions;
        }
        self.note_vote_digest(vote.seq, vote.view, &vote.digest);
        self.log
            .instance_mut(vote.seq)
            .record_pbft_prepare(sender, vote.digest);
        self.try_prepare_peacock(&mut actions, vote.seq, vote.digest, now);
        actions
    }

    /// Peacock proxy: once the proposal plus `2m` matching prepare votes are
    /// in, the batch is *prepared* and the proxy broadcasts its commit vote.
    fn try_prepare_peacock(
        &mut self,
        actions: &mut Vec<Action>,
        seq: SeqNum,
        digest: seemore_crypto::Digest,
        now: Instant,
    ) {
        let threshold = 2 * self.cluster.byzantine_bound() as usize;
        let instance = self.log.instance_mut(seq);
        if instance.prepared
            || !instance.proposal_matches(self.view, &digest)
            || instance
                .pbft_prepares
                .values()
                .filter(|d| **d == digest)
                .count()
                < threshold
        {
            return;
        }
        instance.prepared = true;
        instance.record_commit(self.id, digest);
        // Advance the prepared frontier that fences this proxy's fast-path
        // reads (see `on_read_request`).
        self.highest_prepared = self.highest_prepared.max(seq);
        self.broadcast_commit_vote(actions, seq, digest);
        self.try_commit_peacock(actions, seq, digest, now);
    }

    /// Broadcasts this proxy's `COMMIT` vote to the other proxies.
    fn broadcast_commit_vote(
        &mut self,
        actions: &mut Vec<Action>,
        seq: SeqNum,
        digest: seemore_crypto::Digest,
    ) {
        let mut commit = Commit {
            view: self.view,
            seq,
            digest,
            replica: self.id,
            batch: None,
            signature: Signature::INVALID,
        };
        commit.signature = self.sign_payload(&commit);
        let proxies = self.current_proxies();
        self.broadcast_to(actions, proxies, Message::Commit(commit));
    }

    // ------------------------------------------------------------------
    // COMMIT
    // ------------------------------------------------------------------

    /// Handles a `COMMIT`: either the Lion primary's commit announcement or
    /// a proxy commit vote (Dog / Peacock).
    pub(crate) fn on_commit(&mut self, from: NodeId, commit: Commit, now: Instant) -> Vec<Action> {
        let mut actions = Vec::new();
        let Some(sender) = from.as_replica() else {
            return actions;
        };
        if sender != commit.replica {
            actions.push(self.violation(ProtocolViolation::UnexpectedSender {
                sender,
                expected_role: "the replica named in the commit",
            }));
            return actions;
        }
        if commit.view != self.view || self.vc.in_view_change {
            actions.push(self.violation(ProtocolViolation::WrongView {
                got: commit.view,
                expected: self.view,
            }));
            return actions;
        }
        if !self.verify_payload_once(NodeId::Replica(sender), &commit, &commit.signature) {
            actions.push(self.violation(ProtocolViolation::BadSignature {
                claimed_signer: NodeId::Replica(sender),
            }));
            return actions;
        }

        match self.mode {
            Mode::Lion => {
                // Only the trusted primary's commit counts.
                if sender != self.current_primary() {
                    actions.push(self.violation(ProtocolViolation::UnexpectedSender {
                        sender,
                        expected_role: "current primary",
                    }));
                    return actions;
                }
                let instance = self.log.instance_mut(commit.seq);
                if instance.committed {
                    return actions;
                }
                instance.committed = true;
                // Prefer the attached batch (validated against the signed
                // digest); fall back to the stored proposal if the primary
                // elided it.
                let batch = commit
                    .batch
                    .filter(|batch| batch.digest() == commit.digest)
                    .or_else(|| instance.proposal.as_ref().map(|p| p.batch.clone()));
                self.trace(EventKind::Committed, Some(commit.seq), None, 0);
                if let Some(batch) = batch {
                    self.metrics.committed += 1;
                    self.exec.add_committed(commit.seq, batch);
                    self.execute_ready(&mut actions, now);
                } else {
                    // We cannot execute without the batch; fetch state.
                    self.request_state_transfer(&mut actions, sender);
                }
            }
            Mode::Dog | Mode::Peacock => {
                if !self.is_proxy() || !self.cluster.is_proxy(sender, self.view) {
                    return actions;
                }
                self.note_vote_digest(commit.seq, commit.view, &commit.digest);
                self.log
                    .instance_mut(commit.seq)
                    .record_commit(sender, commit.digest);
                match self.mode {
                    // A lagging Dog proxy adopts the commit once m+1 proxies
                    // vouch for it (at least one of them is honest).
                    Mode::Dog => {
                        let threshold = self.cluster.byzantine_bound() as usize + 1;
                        let instance = self.log.instance_mut(commit.seq);
                        if !instance.committed
                            && instance.matching_commits(&commit.digest) >= threshold
                            && instance.proposal_matches(self.view, &commit.digest)
                        {
                            self.mark_committed_by_proxy(
                                &mut actions,
                                commit.seq,
                                commit.digest,
                                now,
                            );
                        }
                    }
                    Mode::Peacock => {
                        self.try_commit_peacock(&mut actions, commit.seq, commit.digest, now);
                    }
                    Mode::Lion => unreachable!(),
                }
            }
        }
        actions
    }

    /// Peacock proxy: committed once `2m + 1` matching commit votes
    /// (including its own) are in.
    fn try_commit_peacock(
        &mut self,
        actions: &mut Vec<Action>,
        seq: SeqNum,
        digest: seemore_crypto::Digest,
        now: Instant,
    ) {
        let threshold = self.cluster.proxy_quorum() as usize;
        let instance = self.log.instance_mut(seq);
        let votes = instance.matching_commits(&digest);
        if instance.committed
            || !instance.prepared
            || !instance.proposal_matches(self.view, &digest)
            || votes < threshold
        {
            return;
        }
        self.trace(EventKind::QuorumReached, Some(seq), None, votes as u64);
        self.mark_committed_by_proxy(actions, seq, digest, now);
    }

    /// Common tail for proxies (Dog / Peacock): mark committed, inform the
    /// passive replicas, execute and reply.
    fn mark_committed_by_proxy(
        &mut self,
        actions: &mut Vec<Action>,
        seq: SeqNum,
        digest: seemore_crypto::Digest,
        now: Instant,
    ) {
        let instance = self.log.instance_mut(seq);
        if instance.committed {
            return;
        }
        instance.committed = true;
        let batch = instance.proposal.as_ref().map(|p| p.batch.clone());
        let send_inform = !instance.inform_sent;
        instance.inform_sent = true;
        self.trace(EventKind::Committed, Some(seq), None, 0);

        if send_inform {
            let mut inform = Inform {
                view: self.view,
                seq,
                digest,
                replica: self.id,
                signature: Signature::INVALID,
            };
            inform.signature = self.sign_payload(&inform);
            let passive = self.passive_replicas();
            self.broadcast_to(actions, passive, Message::Inform(inform));
        }

        if let Some(batch) = batch {
            self.metrics.committed += 1;
            self.exec.add_committed(seq, batch);
            self.execute_ready(actions, now);
        }
        actions.push(Action::CancelTimer {
            timer: Timer::RequestProgress { seq },
        });
    }

    // ------------------------------------------------------------------
    // INFORM (passive replicas in Dog / Peacock)
    // ------------------------------------------------------------------

    /// Handles an `INFORM` notification from a proxy.
    pub(crate) fn on_inform(&mut self, from: NodeId, inform: Inform, now: Instant) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.mode == Mode::Lion {
            actions.push(self.violation(ProtocolViolation::WrongMode { current: self.mode }));
            return actions;
        }
        let Some(sender) = from.as_replica() else {
            return actions;
        };
        if inform.view != self.view {
            actions.push(self.violation(ProtocolViolation::WrongView {
                got: inform.view,
                expected: self.view,
            }));
            return actions;
        }
        if sender != inform.replica
            || !self.cluster.is_proxy(sender, self.view)
            || !self.verify_payload_once(NodeId::Replica(sender), &inform, &inform.signature)
        {
            actions.push(self.violation(ProtocolViolation::BadSignature {
                claimed_signer: NodeId::Replica(inform.replica),
            }));
            return actions;
        }
        self.log
            .instance_mut(inform.seq)
            .record_inform(sender, inform.digest);
        self.try_execute_informed(&mut actions, inform.seq, now);
        actions
    }

    /// Passive replica: execute once enough matching informs have arrived
    /// and the batch itself is known (from the primary's proposal).
    pub(crate) fn try_execute_informed(
        &mut self,
        actions: &mut Vec<Action>,
        seq: SeqNum,
        now: Instant,
    ) {
        if self.is_agreement_participant() {
            return;
        }
        let threshold = self.cluster.inform_threshold(self.mode) as usize;
        let instance = self.log.instance_mut(seq);
        if instance.committed {
            return;
        }
        let Some(proposal) = instance.proposal.clone() else {
            // We know the batch committed but never saw the proposal; ask a
            // proxy that informed us for the state.
            if instance.informs.len() >= threshold {
                if let Some(&proxy) = instance.informs.keys().next() {
                    self.request_state_transfer(actions, proxy);
                }
            }
            return;
        };
        let matching = instance
            .informs
            .values()
            .filter(|d| **d == proposal.digest)
            .count();
        if matching < threshold {
            return;
        }
        instance.committed = true;
        self.metrics.committed += 1;
        self.trace(EventKind::Committed, Some(seq), None, 0);
        // A Dog primary learns through an inform quorum (>= m+1 honest
        // proxies) that the current view is still committing its proposals:
        // extend the read lease, anchored at the slot's propose time.
        if self.mode == Mode::Dog && self.is_primary() {
            self.extend_read_lease_from_slot(seq);
        }
        self.exec.add_committed(seq, proposal.batch);
        self.execute_ready(actions, now);
    }

    /// Compares an incoming vote's digest against the proposal this replica
    /// accepted for `seq` in `view`, counting a disagreement as a
    /// vote-mismatch signal (a conflicting vote can only come from a replica
    /// that is lagging, partitioned — or lying). Purely observational: the
    /// vote is still recorded and judged by the normal quorum rules.
    pub(crate) fn note_vote_digest(
        &mut self,
        seq: SeqNum,
        view: View,
        digest: &seemore_crypto::Digest,
    ) {
        let mismatch = self
            .log
            .instance_mut(seq)
            .proposal
            .as_ref()
            .is_some_and(|p| p.view == view && p.digest != *digest);
        if mismatch {
            self.metrics.vote_mismatches += 1;
            self.trace(EventKind::VoteMismatch, Some(seq), None, 0);
        }
    }

    /// Issues a state-transfer request to `target` unless one is already in
    /// flight.
    pub(crate) fn request_state_transfer(&mut self, actions: &mut Vec<Action>, target: ReplicaId) {
        if self.state_transfer_pending {
            return;
        }
        self.state_transfer_pending = true;
        let request = seemore_wire::StateRequest {
            from_seq: self.exec.last_executed(),
            replica: self.id,
        };
        self.send(
            actions,
            NodeId::Replica(target),
            Message::StateRequest(request),
        );
    }
}
