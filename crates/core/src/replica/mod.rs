//! The SeeMoRe replica: one state machine implementing the Lion, Dog and
//! Peacock modes, their view changes, checkpointing and dynamic mode
//! switching.
//!
//! The replica is organized around [`SeeMoReReplica`], which owns:
//!
//! * the message [`log`](crate::log::MessageLog) of agreement instances,
//! * the [`ExecutionEngine`] applying committed requests in order,
//! * the [`CheckpointManager`] driving garbage collection and state
//!   transfer,
//! * and the view-change bookkeeping.
//!
//! Message handlers live in the `agreement` submodule (normal case) and
//! the `view_change` submodule (view change, new view and mode switch).

mod agreement;
mod view_change;

pub use view_change::mode_switch_announcer;

#[cfg(test)]
mod tests;

use crate::actions::{broadcast, Action, Timer};
use crate::batching::AdaptiveBatcher;
use crate::checkpoint::{CheckpointManager, StabilityRule};
use crate::config::ProtocolConfig;
use crate::exec::{ExecutedEntry, ExecutionEngine};
use crate::log::MessageLog;
use crate::metrics::ReplicaMetrics;
use crate::protocol::ReplicaProtocol;
use crate::reads::ParkedReads;
use seemore_app::StateMachine;
use seemore_crypto::{KeyStore, Signature, Signer, VerifyCache};
use seemore_store::{Durability, DurableCheckpoint, NullStore, WalRecord};
use seemore_telemetry::{EventKind, NullRecorder, Recorder, TraceEvent};
use seemore_types::{
    ClusterConfig, Instant, Mode, NodeId, ProtocolViolation, ReplicaId, RequestId, SeqNum, View,
};
use seemore_wire::{
    Checkpoint, ClientReply, ClientRequest, Message, MessageKind, ReadReply, ReadRequest, Recovery,
    SignedPayload, SigningScratch, StateRequest, StateResponse, ViewChange, WireSize,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Bookkeeping for an in-progress view change.
#[derive(Debug, Default)]
pub(crate) struct ViewChangeState {
    /// Whether this replica has stopped normal-case processing and is waiting
    /// for a `NEW-VIEW`.
    pub in_view_change: bool,
    /// The view this replica is trying to install.
    pub target_view: View,
    /// `VIEW-CHANGE` messages received, grouped by proposed view.
    pub received: BTreeMap<View, BTreeMap<ReplicaId, ViewChange>>,
    /// Views for which this replica has already emitted a `NEW-VIEW`.
    pub new_view_sent: Vec<View>,
}

/// A replica running the SeeMoRe protocol.
pub struct SeeMoReReplica {
    pub(crate) id: ReplicaId,
    pub(crate) cluster: ClusterConfig,
    pub(crate) pconfig: ProtocolConfig,
    pub(crate) keystore: KeyStore,
    pub(crate) signer: Signer,
    pub(crate) mode: Mode,
    pub(crate) view: View,
    pub(crate) log: MessageLog,
    pub(crate) exec: ExecutionEngine,
    pub(crate) checkpoints: CheckpointManager,
    /// Next sequence number to assign (meaningful only while primary).
    pub(crate) next_seq: SeqNum,
    /// Requests this primary has already assigned a sequence number (the
    /// sequence number of the batch each request rides in).
    pub(crate) assigned: HashMap<RequestId, SeqNum>,
    /// Pending requests accumulating into the next batch (primary only),
    /// plus the controller deciding when to cut them.
    pub(crate) batcher: AdaptiveBatcher,
    pub(crate) vc: ViewChangeState,
    /// View in which each outstanding progress timer was armed; a timer that
    /// fires after a newer view was installed is re-armed instead of
    /// suspecting the (new) primary immediately.
    pub(crate) progress_armed: HashMap<SeqNum, View>,
    /// View in which each forwarded-request timer was armed.
    pub(crate) forwarded_armed: HashMap<RequestId, View>,
    /// Requests this replica forwarded to a primary and is still watching;
    /// a newly installed primary proposes these immediately so that view
    /// changes recover without waiting for client retransmission.
    pub(crate) forwarded_requests: HashMap<RequestId, ClientRequest>,
    /// Mode the protocol will switch to at the next view change, if any.
    pub(crate) pending_mode: Option<Mode>,
    /// Whether a state-transfer request is already outstanding.
    pub(crate) state_transfer_pending: bool,
    /// Until when this replica, as a trusted primary (Lion/Dog), may serve
    /// linearizable reads from its executed state without ordering them.
    /// Extended to `propose_time + τ` (one suspicion timeout) every time a
    /// slot this primary proposed commits with quorum evidence (a Lion
    /// accept quorum, a Dog inform quorum). The anchor is the *proposal
    /// send time*, not the evidence arrival time: replicas arm their
    /// suspicion timers no earlier than the proposal's send, and wait out
    /// `τ` of silence before deposing a primary, so for any slot the lease
    /// derived from it expires before a successor elected behind this
    /// primary's back can commit a conflicting write — even if the quorum
    /// evidence itself was delayed arbitrarily in the network.
    pub(crate) read_lease_until: Instant,
    /// When each in-flight slot was proposed by this primary — the lease
    /// anchors above. Entries are consumed on commit and cleared on view
    /// change.
    pub(crate) proposed_at: HashMap<SeqNum, Instant>,
    /// Highest slot this replica has *prepared* as a Peacock proxy (seen a
    /// pre-prepare plus `2m` matching prepare votes). Peacock reads are
    /// fenced at this frontier: an acknowledged write's commit quorum
    /// contains at least `m + 1` honest prepared proxies, so once every
    /// prepared slot is executed locally, at most `m` honest proxies can
    /// still answer with the pre-write value — not enough, together with
    /// `m` Byzantine ones, to assemble a `2m + 1` matching stale quorum.
    pub(crate) highest_prepared: SeqNum,
    /// Fast-path reads waiting for the commit index to reach their fence
    /// (the proposal frontier at read arrival in Lion/Dog, the prepared
    /// frontier in Peacock).
    pub(crate) parked_reads: ParkedReads,
    /// Last time this replica observed commit progress (a valid COMMIT,
    /// INFORM or NEW-VIEW). Suspicion timers re-arm instead of deposing the
    /// primary while progress is being made — the PBFT practice of
    /// restarting the timer whenever the system moves forward.
    pub(crate) last_progress: Instant,
    /// Reusable buffer for canonical signing bytes, so the sign/verify hot
    /// path performs no per-message allocation.
    pub(crate) scratch: SigningScratch,
    /// Bounded memo of already-verified signatures (`None` when disabled by
    /// [`ProtocolConfig::verify_memo`]): duplicate deliveries and
    /// certificate re-checks skip the second HMAC.
    pub(crate) verify_memo: Option<VerifyCache>,
    pub(crate) metrics: ReplicaMetrics,
    pub(crate) crashed: bool,
    /// Durable store for safety-critical state. [`NullStore`] (disabled) by
    /// default; every persistence site is guarded by `store.enabled()` so
    /// the default configuration does no snapshot or encode work.
    pub(crate) store: Arc<dyn Durability>,
    /// Whether this replica restarted from durable state and has not yet
    /// received the committed suffix it missed while down. While recovering,
    /// protocol traffic is buffered (see `on_message`).
    pub(crate) recovering: bool,
    /// WAL records replayed at recovery (telemetry detail).
    pub(crate) wal_replayed: u64,
    /// Messages received while recovering, re-delivered once the rejoin
    /// completes so no view change or vote is silently dropped. Bounded;
    /// the oldest message is dropped on overflow.
    pub(crate) recovery_buffer: std::collections::VecDeque<(NodeId, Message)>,
    /// Stable sequence number of the last checkpoint written to the store,
    /// so re-stabilization paths do not rewrite an identical snapshot.
    pub(crate) persisted_checkpoint: SeqNum,
    /// Structured event sink. [`NullRecorder`] by default, in which case
    /// every trace site reduces to one cold branch (see
    /// `seemore-telemetry`'s zero-allocation contract).
    pub(crate) recorder: Arc<dyn Recorder>,
    /// Timestamp of the entry point currently executing (`on_message`,
    /// `on_timer`, ...), so helpers without a `now` parameter can stamp
    /// trace events.
    pub(crate) trace_at: Instant,
}

impl std::fmt::Debug for SeeMoReReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeeMoReReplica")
            .field("id", &self.id)
            .field("mode", &self.mode)
            .field("view", &self.view)
            .field("last_executed", &self.exec.last_executed())
            .finish_non_exhaustive()
    }
}

impl SeeMoReReplica {
    /// Creates a replica in the given initial mode, view 0.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a member of `cluster` or if the key store has
    /// no signer for it — both are configuration errors caught at startup.
    pub fn new(
        id: ReplicaId,
        cluster: ClusterConfig,
        pconfig: ProtocolConfig,
        keystore: KeyStore,
        mode: Mode,
        app: Box<dyn StateMachine>,
    ) -> Self {
        assert!(cluster.contains(id), "replica {id} not in cluster");
        let signer = keystore
            .signer_for(NodeId::Replica(id))
            .expect("key store must contain a signer for this replica");
        let rule = Self::stability_rule_for(mode, &cluster);
        SeeMoReReplica {
            id,
            cluster,
            pconfig,
            keystore,
            signer,
            mode,
            view: View::ZERO,
            log: MessageLog::new(),
            exec: ExecutionEngine::new(app),
            checkpoints: CheckpointManager::new(pconfig.checkpoint_period, rule),
            next_seq: SeqNum(0),
            assigned: HashMap::new(),
            batcher: AdaptiveBatcher::new(pconfig.batch),
            vc: ViewChangeState::default(),
            progress_armed: HashMap::new(),
            forwarded_armed: HashMap::new(),
            forwarded_requests: HashMap::new(),
            pending_mode: None,
            state_transfer_pending: false,
            // All replicas boot together into view 0, which counts as the
            // initial quorum contact (the same convention `last_progress`
            // uses for suspicion damping).
            read_lease_until: Instant::ZERO + pconfig.request_timeout,
            proposed_at: HashMap::new(),
            highest_prepared: SeqNum(0),
            parked_reads: ParkedReads::new(),
            last_progress: Instant::ZERO,
            scratch: SigningScratch::new(),
            verify_memo: pconfig.verify_memo.then(VerifyCache::default),
            metrics: ReplicaMetrics::default(),
            crashed: false,
            store: Arc::new(NullStore),
            recovering: false,
            wal_replayed: 0,
            recovery_buffer: std::collections::VecDeque::new(),
            persisted_checkpoint: SeqNum(0),
            recorder: Arc::new(NullRecorder),
            trace_at: Instant::ZERO,
        }
    }

    /// Attaches a durability store. Call before the replica starts
    /// processing messages; from then on every safety-critical outgoing
    /// message is appended to the store's WAL before it is handed to the
    /// transport, and stable checkpoints are snapshotted durably.
    pub fn set_store(&mut self, store: Arc<dyn Durability>) {
        self.store = store;
    }

    /// Rebuilds a replica from the durable state in `store` (its last
    /// checkpoint plus the WAL suffix), leaving it in the *recovering*
    /// state: [`on_start`](ReplicaProtocol::on_start) announces the
    /// recovery, peers answer with a [`StateResponse`], and the first one
    /// completes the rejoin. Replayed votes re-arm the same log guards the
    /// live replica had (accepted proposals, `commit_sent`, `inform_sent`,
    /// installed view), so the restarted replica can never contradict a
    /// claim it made before the crash.
    #[allow(clippy::too_many_arguments)]
    pub fn recover(
        id: ReplicaId,
        cluster: ClusterConfig,
        pconfig: ProtocolConfig,
        keystore: KeyStore,
        initial_mode: Mode,
        app: Box<dyn StateMachine>,
        store: Arc<dyn Durability>,
    ) -> Self {
        let mut replica = Self::new(id, cluster, pconfig, keystore, initial_mode, app);
        let state = store.recover().unwrap_or_default();
        replica.store = store;
        if let Some(cp) = &state.checkpoint {
            replica.exec.restore(&cp.snapshot);
            replica
                .checkpoints
                .make_stable(cp.seq, cp.state_digest, cp.proof.clone());
            replica.log.garbage_collect(cp.seq);
            replica.persisted_checkpoint = cp.seq;
        }
        replica.wal_replayed = state.wal.len() as u64;
        for record in state.wal {
            replica.replay_record(record);
        }
        replica.recovering = true;
        replica
    }

    /// Replays one WAL record into in-memory state (see
    /// [`recover`](Self::recover)). Replay is idempotent: votes are
    /// first-vote-wins and flags are merely re-set, so duplicated records
    /// (a crash between compaction's rewrite and delete) are harmless.
    fn replay_record(&mut self, record: WalRecord) {
        match record {
            WalRecord::ViewEntered { view, mode } => {
                if view >= self.view {
                    self.view = view;
                    self.mode = mode;
                    self.checkpoints
                        .set_rule(Self::stability_rule_for(mode, &self.cluster));
                }
            }
            WalRecord::Vote(message) => self.replay_vote(message),
        }
    }

    fn replay_vote(&mut self, message: Message) {
        use crate::log::Proposal;
        let in_window = |log: &MessageLog, seq: SeqNum| seq > log.low_mark();
        match message {
            Message::Prepare(p) if in_window(&self.log, p.seq) => {
                self.next_seq = self.next_seq.max(p.seq);
                let instance = self.log.instance_mut(p.seq);
                if instance.proposal.is_none() {
                    instance.proposal = Some(Proposal {
                        view: p.view,
                        digest: p.digest,
                        batch: p.batch,
                        primary_signature: p.signature,
                    });
                }
            }
            Message::PrePrepare(p) if in_window(&self.log, p.seq) => {
                self.next_seq = self.next_seq.max(p.seq);
                let instance = self.log.instance_mut(p.seq);
                if instance.proposal.is_none() {
                    instance.proposal = Some(Proposal {
                        view: p.view,
                        digest: p.digest,
                        batch: p.batch,
                        primary_signature: p.signature,
                    });
                }
            }
            Message::Accept(a) if in_window(&self.log, a.seq) => {
                self.log
                    .instance_mut(a.seq)
                    .record_accept(a.replica, a.digest);
            }
            Message::PbftPrepare(v) if in_window(&self.log, v.seq) => {
                self.log
                    .instance_mut(v.seq)
                    .record_pbft_prepare(v.replica, v.digest);
            }
            Message::Commit(c) if in_window(&self.log, c.seq) => {
                let instance = self.log.instance_mut(c.seq);
                instance.record_commit(c.replica, c.digest);
                // Having sent a commit-phase message is the claim that
                // must survive the crash: the guards in `try_commit_*`
                // key off these flags, so the restarted replica cannot
                // emit a conflicting commit for the slot.
                instance.commit_sent = true;
                instance.prepared = true;
            }
            Message::Inform(i) if in_window(&self.log, i.seq) => {
                let instance = self.log.instance_mut(i.seq);
                instance.record_inform(i.replica, i.digest);
                instance.inform_sent = true;
            }
            Message::Checkpoint(cp) => {
                let trusted = self.cluster.is_trusted(cp.replica);
                if self.checkpoints.record(cp, trusted) {
                    self.log.garbage_collect(self.checkpoints.stable_seq());
                }
            }
            _ => {}
        }
    }

    /// Replaces the structured-event sink (a shared ring buffer in traced
    /// runs). Call before the replica starts processing messages.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder;
    }

    /// Records one structured protocol event, stamped with this replica's
    /// identity, view, mode and the current entry point's timestamp. A
    /// single branch when tracing is disabled.
    #[inline]
    pub(crate) fn trace(
        &self,
        kind: EventKind,
        slot: Option<SeqNum>,
        request: Option<RequestId>,
        detail: u64,
    ) {
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent {
                seq: 0,
                at: self.trace_at,
                node: NodeId::Replica(self.id),
                view: self.view,
                mode: self.mode,
                slot,
                request,
                kind,
                detail,
            });
        }
    }

    /// Checkpoint stability rule for `mode`: a single trusted signature in
    /// Lion/Dog, `m + 1` matching messages in Peacock.
    pub(crate) fn stability_rule_for(mode: Mode, cluster: &ClusterConfig) -> StabilityRule {
        match mode {
            Mode::Lion | Mode::Dog => StabilityRule::TrustedSigner,
            Mode::Peacock => StabilityRule::Quorum(cluster.byzantine_bound() as usize + 1),
        }
    }

    /// The cluster configuration this replica was built with.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// The primary of the current `(mode, view)`.
    pub fn current_primary(&self) -> ReplicaId {
        self.cluster
            .primary(self.mode, self.view)
            .expect("cluster validated at construction")
    }

    /// Whether this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.current_primary() == self.id
    }

    /// Whether this replica is a proxy in the current view (Dog / Peacock).
    pub fn is_proxy(&self) -> bool {
        self.cluster.is_proxy(self.id, self.view)
    }

    /// Whether this replica participates in the agreement quorum of the
    /// current mode and view.
    pub fn is_agreement_participant(&self) -> bool {
        match self.mode {
            Mode::Lion => true,
            Mode::Dog | Mode::Peacock => self.is_proxy(),
        }
    }

    /// Whether this replica is eligible to *vote* for a view change in
    /// `mode` (Lion: everyone; Dog / Peacock: public-cloud replicas).
    pub(crate) fn is_view_change_voter(&self, mode: Mode) -> bool {
        match mode {
            Mode::Lion => true,
            Mode::Dog | Mode::Peacock => !self.cluster.is_trusted(self.id),
        }
    }

    /// The sequence number of the last request this replica executed.
    pub fn last_executed(&self) -> SeqNum {
        self.exec.last_executed()
    }

    /// The sequence number of the last stable checkpoint.
    pub fn stable_checkpoint(&self) -> SeqNum {
        self.checkpoints.stable_seq()
    }

    /// The application state digest (diagnostics / tests).
    pub fn state_digest(&self) -> seemore_crypto::Digest {
        self.exec.state_digest()
    }

    // ------------------------------------------------------------------
    // Signing and verification (the allocation-free hot path)
    // ------------------------------------------------------------------

    /// Signs `payload`'s canonical bytes through the reusable scratch
    /// buffer — no allocation per signature.
    pub(crate) fn sign_payload(&mut self, payload: &impl SignedPayload) -> Signature {
        self.signer.sign(self.scratch.bytes_of(payload))
    }

    /// Verifies `signature` as `node`'s signature over `payload`, through
    /// the scratch buffer and (when enabled) the verified-signature memo,
    /// so a redelivery skips the second HMAC.
    ///
    /// Use this only on paths where the protocol actually re-verifies
    /// identical bytes — client requests (retransmitted, and re-checked
    /// inside view-change certificates) and reads. Quorum votes are
    /// verified exactly once per message in healthy runs, so for them the
    /// memo's digest-keyed lookup is pure overhead: they go through
    /// [`verify_payload_once`](Self::verify_payload_once) instead.
    pub(crate) fn verify_payload(
        &mut self,
        node: NodeId,
        payload: &impl SignedPayload,
        signature: &Signature,
    ) -> bool {
        let Self {
            scratch,
            keystore,
            verify_memo,
            ..
        } = self;
        let bytes = scratch.bytes_of(payload);
        match verify_memo {
            Some(memo) => memo.verify(keystore, node, bytes, signature),
            None => keystore.verify(node, bytes, signature),
        }
    }

    /// Plain (memo-free) verification through the scratch buffer — the
    /// vote-path variant of [`verify_payload`](Self::verify_payload) for
    /// signatures the protocol checks exactly once.
    pub(crate) fn verify_payload_once(
        &mut self,
        node: NodeId,
        payload: &impl SignedPayload,
        signature: &Signature,
    ) -> bool {
        let Self {
            scratch, keystore, ..
        } = self;
        keystore.verify(node, scratch.bytes_of(payload), signature)
    }

    // ------------------------------------------------------------------
    // Outgoing-message helpers
    // ------------------------------------------------------------------

    /// Appends `message` to the durable WAL if it is a safety-critical vote
    /// (the *no-un-vote* rule: a claim must be durable before any peer can
    /// observe it). One cold branch when durability is disabled.
    #[inline]
    pub(crate) fn persist_outgoing(&self, message: &Message) {
        if self.store.enabled()
            && matches!(
                message.kind(),
                MessageKind::Prepare
                    | MessageKind::PrePrepare
                    | MessageKind::Accept
                    | MessageKind::PbftPrepare
                    | MessageKind::Commit
                    | MessageKind::Inform
                    | MessageKind::Checkpoint
            )
        {
            self.store.append(&WalRecord::Vote(message.clone()));
        }
    }

    /// Queues a send and records it in the metrics. Safety-critical votes
    /// hit the WAL before the action is queued.
    pub(crate) fn send(&mut self, actions: &mut Vec<Action>, to: NodeId, message: Message) {
        self.persist_outgoing(&message);
        self.metrics
            .record_sent(message.kind(), message.wire_size());
        actions.push(Action::Send { to, message });
    }

    /// Queues a broadcast to `recipients` (excluding this replica) and
    /// records each copy in the metrics. Safety-critical votes hit the WAL
    /// once per broadcast, before any copy is queued.
    pub(crate) fn broadcast_to(
        &mut self,
        actions: &mut Vec<Action>,
        recipients: impl IntoIterator<Item = ReplicaId>,
        message: Message,
    ) {
        self.persist_outgoing(&message);
        let recipients: Vec<NodeId> = recipients
            .into_iter()
            .filter(|r| *r != self.id)
            .map(NodeId::Replica)
            .collect();
        for _ in &recipients {
            self.metrics
                .record_sent(message.kind(), message.wire_size());
        }
        broadcast(actions, recipients, message, None);
    }

    /// All replicas in the cluster.
    pub(crate) fn all_replicas(&self) -> Vec<ReplicaId> {
        self.cluster.replicas().collect()
    }

    /// The proxies of the current view.
    pub(crate) fn current_proxies(&self) -> Vec<ReplicaId> {
        self.cluster.proxies(self.view)
    }

    /// The passive replicas of the current view: the private cloud plus the
    /// non-proxy public replicas (Dog / Peacock informs go to these).
    pub(crate) fn passive_replicas(&self) -> Vec<ReplicaId> {
        self.cluster
            .replicas()
            .filter(|r| !self.cluster.is_proxy(*r, self.view))
            .collect()
    }

    /// Records a protocol violation (invalid message) and returns the
    /// corresponding action.
    pub(crate) fn violation(&mut self, violation: ProtocolViolation) -> Action {
        self.metrics.rejected_messages += 1;
        if matches!(violation, ProtocolViolation::BadSignature { .. }) {
            self.trace(EventKind::SigVerifyFail, None, None, 0);
        }
        Action::Violation(violation)
    }

    // ------------------------------------------------------------------
    // Client requests
    // ------------------------------------------------------------------

    /// Handles a `REQUEST`, whether received directly from the client or
    /// forwarded / retransmitted.
    fn on_request(&mut self, request: ClientRequest, now: Instant) -> Vec<Action> {
        let mut actions = Vec::new();

        // Signature check: requests are signed by their client.
        if !self.verify_payload(NodeId::Client(request.client), &request, &request.signature) {
            actions.push(self.violation(ProtocolViolation::BadSignature {
                claimed_signer: NodeId::Client(request.client),
            }));
            return actions;
        }

        // Exactly-once: answer already-executed requests from the reply cache.
        if let Some(result) = self
            .exec
            .cached_reply(request.client, request.timestamp)
            .cloned()
        {
            let reply = self.make_reply(&request, result);
            self.send(
                &mut actions,
                NodeId::Client(request.client),
                Message::Reply(reply),
            );
            return actions;
        }

        if self.vc.in_view_change {
            // Requests received during a view change are deferred; the client
            // will retransmit.
            return actions;
        }

        if self.is_primary() {
            self.buffer_or_propose(&mut actions, request, now);
        } else {
            self.forward_to_primary(&mut actions, request);
        }
        actions
    }

    /// Forwards `request` to the current primary and watches for progress so
    /// that a dead primary is eventually suspected (this is what lets a
    /// client broadcast trigger a view change).
    pub(crate) fn forward_to_primary(&mut self, actions: &mut Vec<Action>, request: ClientRequest) {
        let primary = self.current_primary();
        let id = request.id();
        if self.exec.last_timestamp(request.client) < Some(request.timestamp)
            || self.exec.last_timestamp(request.client).is_none()
        {
            self.forwarded_requests.insert(id, request.clone());
            self.send(actions, NodeId::Replica(primary), Message::Request(request));
            // Arm the suspicion timer only for the first time we see this
            // request: client retransmissions must not keep resetting it,
            // otherwise a dead primary is never suspected.
            if self.is_view_change_voter(self.mode) && !self.forwarded_armed.contains_key(&id) {
                self.forwarded_armed.insert(id, self.view);
                actions.push(Action::SetTimer {
                    timer: Timer::ForwardedRequest { request: id },
                    after: self.pconfig.request_timeout,
                });
            }
        }
    }

    /// Builds a signed reply for `request` in the current mode and view
    /// (signing through the reusable scratch buffer).
    pub(crate) fn make_reply(&mut self, request: &ClientRequest, result: Vec<u8>) -> ClientReply {
        ClientReply::new_with(
            &mut self.scratch,
            &self.signer,
            self.mode,
            self.view,
            request.id(),
            self.id,
            result,
        )
    }

    // ------------------------------------------------------------------
    // Read-only fast path
    // ------------------------------------------------------------------

    /// Extends the trusted-primary read lease to `anchor + τ`. `anchor`
    /// must be the *send time of the proposal* whose quorum evidence just
    /// arrived — never the arrival time of the evidence itself (see the
    /// field docs for why receipt-time anchoring is unsafe under message
    /// delay).
    pub(crate) fn extend_read_lease(&mut self, anchor: Instant) {
        let extended = anchor + self.pconfig.request_timeout;
        if extended > self.read_lease_until {
            self.read_lease_until = extended;
            self.trace(EventKind::LeaseGrant, None, None, extended.as_nanos());
        }
    }

    /// Consumes the recorded propose time of `seq` (if this primary
    /// proposed it) and extends the lease from that anchor.
    pub(crate) fn extend_read_lease_from_slot(&mut self, seq: SeqNum) {
        if let Some(anchor) = self.proposed_at.remove(&seq) {
            self.extend_read_lease(anchor);
        }
    }

    /// Whether the trusted-primary read lease is still valid.
    pub(crate) fn read_lease_valid(&self, now: Instant) -> bool {
        now < self.read_lease_until
    }

    /// Handles a `READ-REQUEST`: serve it from executed state when this
    /// replica is allowed to (mode-dependent), park it behind the
    /// commit-index fence, or refuse it so the client falls back to the
    /// ordered path.
    fn on_read_request(&mut self, read: ReadRequest, now: Instant) -> Vec<Action> {
        let mut actions = Vec::new();
        // Reads are signed by their client, exactly like ordered requests.
        if !self.verify_payload(NodeId::Client(read.client), &read, &read.signature) {
            actions.push(self.violation(ProtocolViolation::BadSignature {
                claimed_signer: NodeId::Client(read.client),
            }));
            return actions;
        }
        match self.mode {
            // Lion / Dog: only the lease-holding trusted primary serves, and
            // only after its executed state covers everything it had already
            // proposed when the read arrived (the read-index fence). The
            // fence is what makes Dog reads linearizable: proxies may have
            // acknowledged a write to its client before the primary's
            // INFORM-driven execution catches up.
            Mode::Lion | Mode::Dog => {
                if !self.is_primary() || self.vc.in_view_change || !self.read_lease_valid(now) {
                    if self.is_primary() && !self.vc.in_view_change {
                        // The primary would have served this read, but its
                        // lease lapsed — the signal that commit evidence (and
                        // thus lease extension) stopped flowing.
                        self.trace(EventKind::LeaseExpiry, None, Some(read.id()), 0);
                    }
                    self.refuse_read(&mut actions, &read);
                    return actions;
                }
                self.trace(EventKind::RequestAdmitted, None, Some(read.id()), 0);
                let fence = SeqNum(self.next_seq.0.max(self.exec.last_executed().0));
                if self.exec.last_executed() >= fence {
                    self.serve_read(&mut actions, &read);
                } else {
                    self.parked_reads.park(fence, read);
                }
            }
            // Peacock: every proxy answers from local executed state and
            // the client needs 2m+1 matching replies — but matching alone is
            // not freshness, because the write path acknowledges on m+1
            // matching replies: m Byzantine proxies plus honest laggards
            // could still assemble a matching stale quorum. The *prepared
            // fence* closes that hole: a proxy answers only once every slot
            // it has prepared is executed, so at most m honest proxies
            // (those outside the write's prepare quorum) can ever answer
            // with the pre-write value. Passive replicas refuse outright
            // (their state lags the proxies' acknowledged prefix).
            Mode::Peacock => {
                if !self.is_proxy() || self.vc.in_view_change {
                    self.refuse_read(&mut actions, &read);
                    return actions;
                }
                self.trace(EventKind::RequestAdmitted, None, Some(read.id()), 0);
                let fence = self.highest_prepared;
                if self.exec.last_executed() >= fence {
                    self.serve_read(&mut actions, &read);
                } else {
                    self.parked_reads.park(fence, read);
                }
            }
        }
        actions
    }

    /// Evaluates `read` against executed state and replies; refuses when the
    /// application cannot prove the operation read-only (which also stops a
    /// Byzantine client from sneaking a mutation past ordering).
    fn serve_read(&mut self, actions: &mut Vec<Action>, read: &ReadRequest) {
        match self.exec.read(&read.operation) {
            Some(result) => {
                self.metrics.reads_served += 1;
                self.trace(EventKind::Executed, None, Some(read.id()), 0);
                self.trace(EventKind::Replied, None, Some(read.id()), 0);
                let reply = ReadReply::new_with(
                    &mut self.scratch,
                    &self.signer,
                    self.mode,
                    self.view,
                    read.id(),
                    self.id,
                    self.exec.last_executed(),
                    result,
                );
                self.send(
                    actions,
                    NodeId::Client(read.client),
                    Message::ReadReply(reply),
                );
            }
            None => self.refuse_read(actions, read),
        }
    }

    /// Sends a signed refusal redirecting the client to the ordered path.
    fn refuse_read(&mut self, actions: &mut Vec<Action>, read: &ReadRequest) {
        self.metrics.reads_refused += 1;
        self.trace(EventKind::ReadRefused, None, Some(read.id()), 0);
        let reply = ReadReply::refusal_with(
            &mut self.scratch,
            &self.signer,
            self.mode,
            self.view,
            read.id(),
            self.id,
            self.exec.last_executed(),
        );
        self.send(
            actions,
            NodeId::Client(read.client),
            Message::ReadReply(reply),
        );
    }

    /// Serves every parked read whose fence has been reached (called after
    /// executions advance `last_executed`).
    ///
    /// In the trusted-primary modes the admission-time lease check is
    /// re-validated at *serve* time: the very commit evidence that advanced
    /// execution may have been delayed past the lease this read was parked
    /// under (a deposed primary's successor could have committed in the
    /// meantime), in which case every parked read is refused instead.
    pub(crate) fn serve_parked_reads(&mut self, actions: &mut Vec<Action>, now: Instant) {
        if self.parked_reads.is_empty() {
            return;
        }
        if self.mode.has_trusted_primary()
            && (!self.is_primary() || self.vc.in_view_change || !self.read_lease_valid(now))
        {
            self.refuse_parked_reads(actions);
            return;
        }
        for read in self.parked_reads.take_ready(self.exec.last_executed()) {
            self.serve_read(actions, &read);
        }
    }

    /// Refuses every parked read (view change or mode switch started: the
    /// fence no longer means anything, so the clients must fall back).
    pub(crate) fn refuse_parked_reads(&mut self, actions: &mut Vec<Action>) {
        for read in self.parked_reads.drain() {
            self.refuse_read(actions, &read);
        }
    }

    // ------------------------------------------------------------------
    // Checkpointing and state transfer
    // ------------------------------------------------------------------

    /// Housekeeping after the stable checkpoint advanced: truncates the
    /// in-memory log and the per-slot bookkeeping maps below the stable
    /// sequence number, and (when durability is enabled) snapshots the
    /// checkpoint to the store and compacts the WAL below it. Keeping the
    /// resident log bounded does not depend on durability being on.
    pub(crate) fn after_stable_checkpoint(&mut self) {
        let stable = self.checkpoints.stable_seq();
        self.log.garbage_collect(stable);
        self.progress_armed.retain(|seq, _| *seq > stable);
        self.proposed_at.retain(|seq, _| *seq > stable);
        self.assigned.retain(|_, seq| *seq > stable);
        if self.store.enabled() && stable > self.persisted_checkpoint {
            let checkpoint = DurableCheckpoint {
                seq: stable,
                state_digest: self.checkpoints.stable_digest(),
                snapshot: self.exec.snapshot(),
                proof: self.checkpoints.stable_proof().to_vec(),
            };
            self.store.persist_checkpoint(&checkpoint);
            self.store.compact_below(stable);
            self.persisted_checkpoint = stable;
            self.trace(EventKind::CheckpointPersisted, Some(stable), None, 0);
        }
    }

    /// Called after executions; produces checkpoint messages when the
    /// executed sequence number crosses a checkpoint boundary.
    pub(crate) fn maybe_checkpoint(&mut self, actions: &mut Vec<Action>) {
        let executed = self.exec.last_executed();
        if !self.checkpoints.should_checkpoint(executed) {
            return;
        }
        let announcer = match self.mode {
            // Only the trusted primary announces checkpoints.
            Mode::Lion | Mode::Dog => self.is_primary(),
            // Every proxy announces; stability needs m+1 matching.
            Mode::Peacock => self.is_proxy(),
        };
        if !announcer {
            return;
        }
        let mut checkpoint = Checkpoint {
            seq: executed,
            state_digest: self.exec.state_digest(),
            replica: self.id,
            signature: seemore_crypto::Signature::INVALID,
        };
        checkpoint.signature = self.sign_payload(&checkpoint);
        // Record our own message (a trusted primary's own checkpoint is
        // immediately stable; a proxy's own vote counts toward the quorum).
        let trusted = self.cluster.is_trusted(self.id);
        if self.checkpoints.record(checkpoint.clone(), trusted) {
            self.metrics.stable_checkpoints += 1;
            self.after_stable_checkpoint();
        }
        let recipients = self.all_replicas();
        self.broadcast_to(actions, recipients, Message::Checkpoint(checkpoint));
    }

    /// Handles an incoming `CHECKPOINT` message.
    fn on_checkpoint(&mut self, from: NodeId, checkpoint: Checkpoint) -> Vec<Action> {
        let mut actions = Vec::new();
        let Some(sender) = from.as_replica() else {
            actions.push(self.violation(ProtocolViolation::UnexpectedSender {
                sender: ReplicaId(u32::MAX),
                expected_role: "replica",
            }));
            return actions;
        };
        if sender != checkpoint.replica
            || !self.verify_payload_once(
                NodeId::Replica(checkpoint.replica),
                &checkpoint,
                &checkpoint.signature,
            )
        {
            actions.push(self.violation(ProtocolViolation::BadSignature {
                claimed_signer: NodeId::Replica(checkpoint.replica),
            }));
            return actions;
        }
        let trusted = self.cluster.is_trusted(checkpoint.replica);
        let seq = checkpoint.seq;
        if self.checkpoints.record(checkpoint, trusted) {
            self.metrics.stable_checkpoints += 1;
            self.after_stable_checkpoint();
            // If we have fallen behind the stable checkpoint, ask for
            // state. The announcer has the freshest committed suffix, but in
            // Peacock mode announcers are untrusted proxies and a snapshot
            // is only ever adopted from the trusted tier — so also ask every
            // private-cloud replica (at most `c` of them can be down, and a
            // stale or duplicate response is ignored by `restore`).
            // Without the trusted copies a replica that lost an instance
            // permanently (e.g. one proposed while it was crashed) could
            // never execute past the gap.
            if self.exec.last_executed() < seq && !self.state_transfer_pending {
                self.state_transfer_pending = true;
                let request = StateRequest {
                    from_seq: self.exec.last_executed(),
                    replica: self.id,
                };
                let mut recipients: Vec<ReplicaId> = self.cluster.private_replicas().collect();
                if !recipients.contains(&sender) {
                    recipients.push(sender);
                }
                for recipient in recipients {
                    if recipient == self.id {
                        continue;
                    }
                    self.send(
                        &mut actions,
                        NodeId::Replica(recipient),
                        Message::StateRequest(request.clone()),
                    );
                }
            }
        }
        actions
    }

    /// Handles a `STATE-REQUEST` by returning our snapshot and pending
    /// committed entries.
    fn on_state_request(&mut self, request: StateRequest) -> Vec<Action> {
        let mut actions = Vec::new();
        let response = StateResponse {
            checkpoint: self.checkpoints.stable_proof().first().cloned(),
            snapshot: Some(self.exec.snapshot()),
            entries: self.exec.committed_after(request.from_seq),
            replica: self.id,
        };
        self.send(
            &mut actions,
            NodeId::Replica(request.replica),
            Message::StateResponse(response),
        );
        actions
    }

    /// Handles a `STATE-RESPONSE`.
    ///
    /// Snapshots are only adopted from trusted (private cloud) replicas: a
    /// Byzantine public replica could otherwise install a fabricated state.
    /// Pending committed entries are harmless to accept from anyone because
    /// they re-enter the normal commit path.
    fn on_state_response(
        &mut self,
        from: NodeId,
        response: StateResponse,
        now: Instant,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        self.state_transfer_pending = false;
        let Some(sender) = from.as_replica() else {
            return actions;
        };
        if let (Some(snapshot), true) = (&response.snapshot, self.cluster.is_trusted(sender)) {
            let before = self.exec.last_executed();
            self.exec.restore(snapshot);
            if self.exec.last_executed() > before {
                if let Some(cp) = &response.checkpoint {
                    self.checkpoints
                        .make_stable(cp.seq, cp.state_digest, vec![cp.clone()]);
                }
                self.after_stable_checkpoint();
            }
        }
        let low_mark = self.log.low_mark();
        for (seq, batch) in response.entries {
            if self.exec.add_committed(seq, batch) && seq > low_mark {
                self.log.instance_mut(seq).committed = true;
            }
        }
        self.execute_ready(&mut actions, now);
        actions
    }

    // ------------------------------------------------------------------
    // Crash recovery (rejoin after restarting from durable state)
    // ------------------------------------------------------------------

    /// Broadcasts a signed `RECOVERY` announcement and arms the re-announce
    /// timer. Called from `on_start` and from the `Timer::Recovery` handler
    /// while the rejoin is still incomplete.
    fn announce_recovery(&mut self, actions: &mut Vec<Action>) {
        let mut recovery = Recovery {
            last_executed: self.exec.last_executed(),
            view: self.view,
            replica: self.id,
            signature: Signature::INVALID,
        };
        recovery.signature = self.sign_payload(&recovery);
        let recipients = self.all_replicas();
        self.broadcast_to(actions, recipients, Message::Recovery(recovery));
        actions.push(Action::SetTimer {
            timer: Timer::Recovery,
            after: self.pconfig.request_timeout,
        });
    }

    /// Handles a `RECOVERY` announcement from a restarted peer by sending
    /// it the committed suffix above its durable state — the same answer a
    /// `STATE-REQUEST` from that sequence number would get.
    fn on_recovery(&mut self, from: NodeId, recovery: Recovery) -> Vec<Action> {
        let mut actions = Vec::new();
        let Some(sender) = from.as_replica() else {
            actions.push(self.violation(ProtocolViolation::UnexpectedSender {
                sender: ReplicaId(u32::MAX),
                expected_role: "replica",
            }));
            return actions;
        };
        if sender != recovery.replica
            || !self.verify_payload_once(
                NodeId::Replica(recovery.replica),
                &recovery,
                &recovery.signature,
            )
        {
            actions.push(self.violation(ProtocolViolation::BadSignature {
                claimed_signer: NodeId::Replica(recovery.replica),
            }));
            return actions;
        }
        self.on_state_request(StateRequest {
            from_seq: recovery.last_executed,
            replica: recovery.replica,
        })
    }

    /// Message handling while this replica is still rejoining: the first
    /// `STATE-RESPONSE` completes the rejoin; state-serving traffic is
    /// answered (it only reads restored state); everything else is buffered
    /// and re-delivered after the rejoin, so no vote or view-change message
    /// is silently dropped.
    fn on_message_recovering(
        &mut self,
        from: NodeId,
        message: Message,
        now: Instant,
    ) -> Vec<Action> {
        match message {
            Message::StateResponse(response) => self.complete_recovery(from, response, now),
            Message::StateRequest(request) => self.on_state_request(request),
            Message::Recovery(recovery) => self.on_recovery(from, recovery),
            other => {
                if self.recovery_buffer.len() >= RECOVERY_BUFFER_CAP {
                    self.recovery_buffer.pop_front();
                }
                self.recovery_buffer.push_back((from, other));
                Vec::new()
            }
        }
    }

    /// Finishes the rejoin: adopts the state response, leaves the
    /// recovering state and re-delivers everything buffered while down.
    fn complete_recovery(
        &mut self,
        from: NodeId,
        response: StateResponse,
        now: Instant,
    ) -> Vec<Action> {
        let mut actions = self.on_state_response(from, response, now);
        self.recovering = false;
        actions.push(Action::CancelTimer {
            timer: Timer::Recovery,
        });
        self.trace(EventKind::RecoveryCompleted, None, None, self.wal_replayed);
        let buffered = std::mem::take(&mut self.recovery_buffer);
        for (from, message) in buffered {
            actions.extend(self.on_message(from, message, now));
        }
        actions
    }

    /// Drains the execution queue (whole batches, atomically), emitting one
    /// reply per executed request where the current mode requires them, and
    /// triggering checkpoints.
    pub(crate) fn execute_ready(&mut self, actions: &mut Vec<Action>, now: Instant) {
        let executions = self.exec.execute_ready();
        if executions.is_empty() {
            return;
        }
        let should_reply = match self.mode {
            // Only the trusted primary replies in the Lion mode.
            Mode::Lion => self.is_primary(),
            // Proxies reply in the Dog and Peacock modes.
            Mode::Dog | Mode::Peacock => self.is_proxy(),
        };
        for execution in executions {
            self.metrics.executed += 1;
            self.trace(
                EventKind::Executed,
                Some(execution.seq),
                Some(execution.request.id()),
                0,
            );
            actions.push(Action::Executed {
                seq: execution.seq,
                request: execution.request.id(),
            });
            actions.push(Action::CancelTimer {
                timer: Timer::RequestProgress { seq: execution.seq },
            });
            actions.push(Action::CancelTimer {
                timer: Timer::ForwardedRequest {
                    request: execution.request.id(),
                },
            });
            self.forwarded_requests.remove(&execution.request.id());
            self.forwarded_armed.remove(&execution.request.id());
            if should_reply && execution.request.client != NOOP_CLIENT {
                self.trace(
                    EventKind::Replied,
                    Some(execution.seq),
                    Some(execution.request.id()),
                    0,
                );
                let reply = self.make_reply(&execution.request, execution.result);
                self.send(
                    actions,
                    NodeId::Client(execution.request.client),
                    Message::Reply(reply),
                );
            }
        }
        self.maybe_checkpoint(actions);
        // Executions moved the commit index forward; parked reads whose
        // fence is now covered can be served.
        self.serve_parked_reads(actions, now);
    }
}

/// The pseudo-client used for no-op requests issued during view changes
/// (the paper's `µ∅`). Replies are never sent to it.
pub(crate) const NOOP_CLIENT: seemore_types::ClientId = seemore_types::ClientId(u64::MAX);

/// Most messages a recovering replica will hold before the oldest is
/// dropped (clients and peers retransmit, so a bounded buffer is safe).
pub const RECOVERY_BUFFER_CAP: usize = 1024;

impl ReplicaProtocol for SeeMoReReplica {
    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_start(&mut self, now: Instant) -> Vec<Action> {
        if self.crashed || !self.recovering {
            return Vec::new();
        }
        self.trace_at = now;
        self.trace(EventKind::RecoveryStarted, None, None, self.wal_replayed);
        let mut actions = Vec::new();
        self.announce_recovery(&mut actions);
        actions
    }

    fn on_message(&mut self, from: NodeId, message: Message, now: Instant) -> Vec<Action> {
        if self.crashed {
            return Vec::new();
        }
        self.trace_at = now;
        self.metrics.record_received(message.kind());
        if self.recovering {
            return self.on_message_recovering(from, message, now);
        }
        // Observing commit-carrying traffic counts as progress for the
        // suspicion timers (the actual validity checks happen in the
        // handlers; a forged message can at worst delay a view change by one
        // timeout, which does not affect safety).
        if matches!(
            message.kind(),
            seemore_wire::MessageKind::Commit
                | seemore_wire::MessageKind::Inform
                | seemore_wire::MessageKind::NewView
        ) {
            self.last_progress = now;
        }
        let actions = match message {
            Message::Request(request) => self.on_request(request, now),
            Message::ReadRequest(read) => self.on_read_request(read, now),
            Message::Prepare(prepare) => self.on_prepare(from, prepare, now),
            Message::PrePrepare(preprepare) => self.on_pre_prepare(from, preprepare, now),
            Message::Accept(accept) => self.on_accept(from, accept, now),
            Message::PbftPrepare(vote) => self.on_pbft_prepare(from, vote, now),
            Message::Commit(commit) => self.on_commit(from, commit, now),
            Message::Inform(inform) => self.on_inform(from, inform, now),
            Message::Checkpoint(checkpoint) => self.on_checkpoint(from, checkpoint),
            Message::ViewChange(view_change) => self.on_view_change(from, view_change, now),
            Message::NewView(new_view) => self.on_new_view(from, new_view, now),
            Message::ModeChange(mode_change) => self.on_mode_change(from, mode_change, now),
            Message::StateRequest(request) => self.on_state_request(request),
            Message::StateResponse(response) => self.on_state_response(from, response, now),
            Message::Recovery(recovery) => self.on_recovery(from, recovery),
            // Replicas never receive replies; redirects are client-bound
            // (and emitted by the sharding guard, not the core).
            Message::Reply(_) | Message::ReadReply(_) | Message::Redirect(_) => Vec::new(),
        };
        self.metrics.note_log_size(self.log.len());
        actions
    }

    fn on_timer(&mut self, timer: Timer, now: Instant) -> Vec<Action> {
        if self.crashed {
            return Vec::new();
        }
        self.trace_at = now;
        if self.recovering {
            // While rejoining, only the recovery re-announce timer runs.
            if matches!(timer, Timer::Recovery) {
                let mut actions = Vec::new();
                self.announce_recovery(&mut actions);
                return actions;
            }
            return Vec::new();
        }
        match timer {
            Timer::RequestProgress { seq } => self.on_progress_timeout(seq, now),
            Timer::ForwardedRequest { request } => self.on_forwarded_timeout(request, now),
            Timer::ViewChange { view } => self.on_view_change_timeout(view, now),
            Timer::BatchFlush { generation } => self.on_batch_flush(generation, now),
            Timer::Recovery => Vec::new(),
            Timer::ClientRetransmit { .. } => Vec::new(),
        }
    }

    fn view(&self) -> View {
        self.view
    }

    fn mode(&self) -> Mode {
        self.mode
    }

    fn executed(&self) -> &[ExecutedEntry] {
        self.exec.history()
    }

    fn metrics(&self) -> &ReplicaMetrics {
        &self.metrics
    }

    fn request_mode_switch(&mut self, mode: Mode, now: Instant) -> Vec<Action> {
        self.trace_at = now;
        self.initiate_mode_switch(mode, now)
    }

    fn is_crashed(&self) -> bool {
        self.crashed
    }

    fn crash(&mut self) {
        self.crashed = true;
    }
}
