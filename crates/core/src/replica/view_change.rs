//! View changes, new-view installation and dynamic mode switching
//! (Sections 5.1–5.4 of the paper).

use super::{SeeMoReReplica, NOOP_CLIENT};
use crate::actions::{Action, Timer};
use crate::log::Proposal;
use crate::protocol::ReplicaProtocol;
use seemore_crypto::Signature;
use seemore_telemetry::EventKind;
use seemore_types::{
    ClusterConfig, Instant, Mode, NodeId, ProtocolViolation, ReplicaId, RequestId, SeqNum,
    Timestamp, View,
};
use seemore_wire::{
    Accept, Batch, ClientRequest, CommitCert, Message, ModeChange, NewView, PbftPrepare,
    PrepareCert, ViewChange,
};

/// The trusted replica that is allowed to announce a switch to `mode`
/// starting at `new_view`: the new primary for Lion/Dog, the transferer for
/// Peacock (Section 5.4).
pub fn mode_switch_announcer(
    cluster: &ClusterConfig,
    new_view: View,
    mode: Mode,
) -> Option<ReplicaId> {
    match mode {
        Mode::Lion | Mode::Dog => cluster.primary(mode, new_view).ok(),
        Mode::Peacock => cluster.transferer(new_view).ok(),
    }
}

/// The paper's `µ∅`: the internal no-op request used to fill ordering gaps
/// left by a view change.
fn noop_request(seq: SeqNum) -> ClientRequest {
    ClientRequest {
        client: NOOP_CLIENT,
        timestamp: Timestamp(seq.0),
        operation: Vec::new(),
        signature: Signature::INVALID,
    }
}

impl SeeMoReReplica {
    /// The mode the *next* view will run in (the pending switch target, if
    /// any, otherwise the current mode).
    pub(crate) fn effective_next_mode(&self) -> Mode {
        self.pending_mode.unwrap_or(self.mode)
    }

    /// The replica that collects `VIEW-CHANGE` messages and emits the
    /// `NEW-VIEW` for `(view, mode)`: the new primary in Lion/Dog, the
    /// trusted transferer in Peacock.
    pub(crate) fn new_view_collector(&self, view: View, mode: Mode) -> Option<ReplicaId> {
        match mode {
            Mode::Lion | Mode::Dog => self.cluster.primary(mode, view).ok(),
            Mode::Peacock => self.cluster.transferer(view).ok(),
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// A request we learned about never committed: suspect the primary.
    pub(crate) fn on_progress_timeout(&mut self, seq: SeqNum, now: Instant) -> Vec<Action> {
        let committed = self
            .log
            .instance(seq)
            .map(|instance| instance.committed)
            .unwrap_or(seq <= self.exec.last_executed());
        if committed || self.vc.in_view_change {
            return Vec::new();
        }
        // If a newer view was installed after this timer was armed, or the
        // system is visibly making progress, give the primary another full
        // timeout before suspecting it.
        let armed_view = self.progress_armed.get(&seq).copied().unwrap_or(View::ZERO);
        if armed_view < self.view || self.recent_progress(now) {
            self.progress_armed.insert(seq, self.view);
            return vec![Action::SetTimer {
                timer: Timer::RequestProgress { seq },
                after: self.pconfig.request_timeout,
            }];
        }
        self.suspect_primary(now)
    }

    /// Whether commit progress was observed within the last suspicion
    /// timeout (used to damp spurious view changes while the primary is
    /// healthy but busy).
    fn recent_progress(&self, now: Instant) -> bool {
        now.duration_since(self.last_progress) < self.pconfig.request_timeout
            && self.last_progress > Instant::ZERO
    }

    /// A request we forwarded to the primary was never executed.
    pub(crate) fn on_forwarded_timeout(&mut self, request: RequestId, now: Instant) -> Vec<Action> {
        let executed = self
            .exec
            .cached_reply(request.client, request.timestamp)
            .is_some();
        if executed || self.vc.in_view_change {
            return Vec::new();
        }
        // Same grace period as progress timers: a freshly installed primary
        // gets a full timeout (and the request is re-forwarded to it), and a
        // primary that is visibly committing other requests is not deposed.
        let armed_view = self
            .forwarded_armed
            .get(&request)
            .copied()
            .unwrap_or(View::ZERO);
        if armed_view < self.view || self.recent_progress(now) {
            self.forwarded_armed.insert(request, self.view);
            let mut actions = Vec::new();
            // Re-forward the buffered request to the *current* primary so it
            // does not depend on the client noticing the view change.
            if let Some(buffered) = self.forwarded_requests.get(&request).cloned() {
                if !self.is_primary() {
                    let primary = self.current_primary();
                    self.send(
                        &mut actions,
                        NodeId::Replica(primary),
                        Message::Request(buffered),
                    );
                } else {
                    actions.extend(self.on_message(
                        NodeId::Replica(self.id),
                        Message::Request(buffered),
                        now,
                    ));
                }
            }
            actions.push(Action::SetTimer {
                timer: Timer::ForwardedRequest { request },
                after: self.pconfig.request_timeout,
            });
            return actions;
        }
        self.suspect_primary(now)
    }

    /// No `NEW-VIEW` arrived for the view we voted for: escalate.
    pub(crate) fn on_view_change_timeout(&mut self, view: View, now: Instant) -> Vec<Action> {
        if !self.vc.in_view_change || self.view >= view {
            return Vec::new();
        }
        let mode = self.effective_next_mode();
        self.start_view_change(view.next(), mode, now)
    }

    fn suspect_primary(&mut self, now: Instant) -> Vec<Action> {
        let mode = self.effective_next_mode();
        if !self.is_view_change_voter(mode) {
            return Vec::new();
        }
        self.trace(
            EventKind::SuspicionFired,
            None,
            None,
            u64::from(self.current_primary().0),
        );
        self.start_view_change(self.view.next(), mode, now)
    }

    // ------------------------------------------------------------------
    // Sending VIEW-CHANGE
    // ------------------------------------------------------------------

    /// Stops normal-case processing and votes to install `target_view` in
    /// `target_mode`.
    pub(crate) fn start_view_change(
        &mut self,
        target_view: View,
        target_mode: Mode,
        _now: Instant,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.vc.in_view_change && self.vc.target_view >= target_view {
            return actions;
        }
        self.vc.in_view_change = true;
        self.vc.target_view = target_view;
        self.metrics.view_changes_started += 1;
        self.trace(EventKind::ViewChangeStart, None, None, target_view.0);
        // Normal-case processing stops: parked fast-path reads can no longer
        // be served under this view's fence, so their clients must fall back
        // to the ordered path.
        self.refuse_parked_reads(&mut actions);

        let stable_seq = self.checkpoints.stable_seq();
        let mut prepares = Vec::new();
        let mut commits = Vec::new();
        for (seq, instance) in self.log.instances_after(stable_seq) {
            let Some(proposal) = &instance.proposal else {
                continue;
            };
            let cert_batch = Some(proposal.batch.clone());
            if instance.committed && target_mode == Mode::Lion {
                // Only the Lion mode carries commit certificates; Dog and
                // Peacock omit them to keep view-change messages small.
                commits.push(CommitCert {
                    view: proposal.view,
                    seq: *seq,
                    digest: proposal.digest,
                    primary_signature: proposal.primary_signature,
                    batch: cert_batch,
                });
            } else {
                prepares.push(PrepareCert {
                    view: proposal.view,
                    seq: *seq,
                    digest: proposal.digest,
                    primary_signature: proposal.primary_signature,
                    batch: cert_batch,
                });
            }
        }

        let mut view_change = ViewChange {
            new_view: target_view,
            mode: target_mode,
            stable_seq,
            checkpoint_proof: self.checkpoints.stable_proof().to_vec(),
            prepares,
            commits,
            replica: self.id,
            signature: Signature::INVALID,
        };
        view_change.signature = self.sign_payload(&view_change);

        // Record our own vote so a collector that is also a voter counts it.
        self.vc
            .received
            .entry(target_view)
            .or_default()
            .insert(self.id, view_change.clone());

        // Recipients depend on the *target* mode (Section 5.2: in the Dog
        // mode only the public cloud and the next primary are involved).
        let recipients: Vec<ReplicaId> = match target_mode {
            Mode::Lion | Mode::Peacock => self.all_replicas(),
            Mode::Dog => {
                let mut set: Vec<ReplicaId> = self.cluster.public_replicas().collect();
                if let Some(primary) = self.new_view_collector(target_view, target_mode) {
                    if !set.contains(&primary) {
                        set.push(primary);
                    }
                }
                set
            }
        };
        self.broadcast_to(&mut actions, recipients, Message::ViewChange(view_change));
        actions.push(Action::SetTimer {
            timer: Timer::ViewChange { view: target_view },
            after: self.pconfig.view_change_timeout,
        });

        // The collector might already hold enough votes (including this one).
        self.try_assemble_new_view(&mut actions, target_view, target_mode, _now);
        actions
    }

    // ------------------------------------------------------------------
    // Receiving VIEW-CHANGE
    // ------------------------------------------------------------------

    /// Handles a `VIEW-CHANGE` vote from another replica.
    pub(crate) fn on_view_change(
        &mut self,
        from: NodeId,
        view_change: ViewChange,
        now: Instant,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        let Some(sender) = from.as_replica() else {
            return actions;
        };
        if sender != view_change.replica
            || !self.verify_payload_once(
                NodeId::Replica(sender),
                &view_change,
                &view_change.signature,
            )
        {
            actions.push(self.violation(ProtocolViolation::BadSignature {
                claimed_signer: NodeId::Replica(view_change.replica),
            }));
            return actions;
        }
        if view_change.new_view <= self.view {
            actions.push(self.violation(ProtocolViolation::WrongView {
                got: view_change.new_view,
                expected: self.view.next(),
            }));
            return actions;
        }
        let target_view = view_change.new_view;
        let target_mode = view_change.mode;
        self.vc
            .received
            .entry(target_view)
            .or_default()
            .insert(sender, view_change);

        // Liveness rule: if more than `m` replicas already voted for a newer
        // view, join them even if our own timer has not fired yet (a correct
        // replica must be among them).
        let votes = self
            .vc
            .received
            .get(&target_view)
            .map(|v| v.len())
            .unwrap_or(0);
        if !self.vc.in_view_change
            && votes > self.cluster.byzantine_bound() as usize
            && self.is_view_change_voter(target_mode)
        {
            actions.extend(self.start_view_change(target_view, target_mode, now));
        }

        self.try_assemble_new_view(&mut actions, target_view, target_mode, now);
        actions
    }

    /// If this replica is the collector for `(view, mode)` and holds enough
    /// votes, build and broadcast the `NEW-VIEW`.
    fn try_assemble_new_view(
        &mut self,
        actions: &mut Vec<Action>,
        view: View,
        mode: Mode,
        now: Instant,
    ) {
        if self.new_view_collector(view, mode) != Some(self.id) {
            return;
        }
        if self.vc.new_view_sent.contains(&view) || view <= self.view {
            return;
        }
        let threshold = self.cluster.view_change_threshold(mode) as usize;
        let Some(votes) = self.vc.received.get(&view) else {
            return;
        };
        let votes_from_others = votes.keys().filter(|r| **r != self.id).count();
        if votes_from_others < threshold {
            return;
        }
        self.vc.new_view_sent.push(view);

        let votes: Vec<ViewChange> = votes.values().cloned().collect();
        let new_view = self.build_new_view(view, mode, &votes);
        let recipients = self.all_replicas();
        self.broadcast_to(actions, recipients, Message::NewView(new_view.clone()));
        self.install_new_view(actions, new_view, now);
    }

    /// Constructs the `NEW-VIEW` message from the received `VIEW-CHANGE`
    /// evidence, following the three rules of Section 5.1.
    fn build_new_view(&mut self, view: View, mode: Mode, votes: &[ViewChange]) -> NewView {
        // Adopt the most recent stable checkpoint among the votes and our own.
        let mut best_checkpoint = self.checkpoints.stable_proof().first().cloned();
        let mut low = self.checkpoints.stable_seq();
        for vote in votes {
            if vote.stable_seq > low {
                if let Some(cp) = vote.checkpoint_proof.first() {
                    low = vote.stable_seq;
                    best_checkpoint = Some(cp.clone());
                }
            }
        }

        // Highest sequence number mentioned by any certificate.
        let mut high = low;
        for vote in votes {
            for cert in vote.prepares.iter() {
                high = high.max(cert.seq);
            }
            for cert in vote.commits.iter() {
                high = high.max(cert.seq);
            }
        }

        let lion_commit_threshold = self.cluster.quorum(Mode::Lion).quorum_size as usize;
        let mut prepares_out: Vec<PrepareCert> = Vec::new();
        let mut commits_out: Vec<CommitCert> = Vec::new();

        let mut seq = low.next();
        while seq <= high {
            // Rule 1: any commit certificate wins.
            let committed = votes
                .iter()
                .flat_map(|v| v.commits.iter())
                .find(|c| c.seq == seq && self.validate_cert_batch(c.digest, c.batch.as_ref()));
            // Collect prepare evidence for this sequence number.
            let prepared: Vec<&PrepareCert> = votes
                .iter()
                .flat_map(|v| v.prepares.iter())
                .filter(|p| p.seq == seq && self.validate_cert_batch(p.digest, p.batch.as_ref()))
                .collect();

            if let Some(cert) = committed {
                commits_out.push(CommitCert { ..cert.clone() });
            } else if mode == Mode::Lion && prepared.len() >= lion_commit_threshold {
                // Rule 2a (Lion): a full quorum of prepares proves the
                // batch may have committed; carry it as committed.
                let cert = prepared[0];
                commits_out.push(CommitCert {
                    view: cert.view,
                    seq,
                    digest: cert.digest,
                    primary_signature: cert.primary_signature,
                    batch: cert.batch.clone(),
                });
            } else if let Some(cert) = prepared.first() {
                // Rule 2b: at least one valid prepare; re-propose it.
                prepares_out.push((*cert).clone());
            } else {
                // Rule 3: nobody saw a proposal; fill the gap with a no-op.
                prepares_out.push(self.noop_cert(seq));
            }
            seq = seq.next();
        }

        let mut message = NewView {
            view,
            mode,
            prepares: prepares_out,
            commits: commits_out,
            checkpoint: best_checkpoint,
            view_change_proof: Vec::new(),
            replica: self.id,
            signature: Signature::INVALID,
        };
        message.signature = self.sign_payload(&message);
        message
    }

    /// A certificate is only usable if the batch it carries matches its
    /// combined digest (binding membership, content and order) and every
    /// member request carries a valid client signature (or is the internal
    /// no-op). This is what prevents a Byzantine public replica from
    /// smuggling a fabricated or reordered operation through a view change.
    ///
    /// These are quorum-certificate *re-checks*: each member request was
    /// already verified when it first arrived, so with the memo enabled the
    /// second HMAC is skipped.
    fn validate_cert_batch(
        &mut self,
        digest: seemore_crypto::Digest,
        batch: Option<&Batch>,
    ) -> bool {
        let Some(batch) = batch else { return false };
        if batch.digest() != digest {
            return false;
        }
        batch.iter().all(|request| {
            request.client == NOOP_CLIENT
                || self.verify_payload(NodeId::Client(request.client), request, &request.signature)
        })
    }

    /// Builds the no-op filler certificate for a gap sequence number
    /// (the paper's `µ∅`, as a singleton batch).
    fn noop_cert(&self, seq: SeqNum) -> PrepareCert {
        let batch = Batch::single(noop_request(seq));
        PrepareCert {
            view: self.view,
            seq,
            digest: batch.digest(),
            primary_signature: Signature::INVALID,
            batch: Some(batch),
        }
    }

    // ------------------------------------------------------------------
    // Receiving NEW-VIEW
    // ------------------------------------------------------------------

    /// Handles a `NEW-VIEW` from the new primary (Lion / Dog) or the
    /// transferer (Peacock).
    pub(crate) fn on_new_view(
        &mut self,
        from: NodeId,
        new_view: NewView,
        now: Instant,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        let Some(sender) = from.as_replica() else {
            return actions;
        };
        if new_view.view <= self.view {
            actions.push(self.violation(ProtocolViolation::WrongView {
                got: new_view.view,
                expected: self.view.next(),
            }));
            return actions;
        }
        let expected = self.new_view_collector(new_view.view, new_view.mode);
        if Some(sender) != expected || sender != new_view.replica {
            actions.push(self.violation(ProtocolViolation::UnexpectedSender {
                sender,
                expected_role: "new-view collector (new primary or transferer)",
            }));
            return actions;
        }
        if !self.verify_payload_once(NodeId::Replica(sender), &new_view, &new_view.signature) {
            actions.push(self.violation(ProtocolViolation::BadSignature {
                claimed_signer: NodeId::Replica(sender),
            }));
            return actions;
        }
        self.install_new_view(&mut actions, new_view, now);
        actions
    }

    /// Applies a validated `NEW-VIEW`: adopts the view, mode and checkpoint,
    /// replays the carried certificates, and re-enters the normal case.
    fn install_new_view(&mut self, actions: &mut Vec<Action>, new_view: NewView, now: Instant) {
        let old_mode = self.mode;
        actions.push(Action::CancelTimer {
            timer: Timer::ViewChange {
                view: new_view.view,
            },
        });

        self.view = new_view.view;
        self.mode = new_view.mode;
        // No-un-vote across views: the installed view must be durable before
        // any vote sent *in* it, otherwise a restart could re-vote in an
        // older view and contradict this view's certificates.
        if self.store.enabled() {
            self.store.append(&seemore_store::WalRecord::ViewEntered {
                view: self.view,
                mode: self.mode,
            });
        }
        if self.pending_mode == Some(new_view.mode) {
            self.pending_mode = None;
        }
        if old_mode != new_view.mode {
            self.metrics.mode_switches += 1;
            self.checkpoints
                .set_rule(Self::stability_rule_for(new_view.mode, &self.cluster));
            self.trace(
                EventKind::ModeSwitchDone,
                None,
                None,
                u64::from(new_view.mode.index()),
            );
        }
        self.vc.in_view_change = false;
        self.vc.received.retain(|view, _| *view > new_view.view);
        self.metrics.view_changes_completed += 1;
        self.trace(EventKind::ViewChangeInstall, None, None, new_view.view.0);
        self.assigned.clear();
        self.log.reset_votes_for_new_view();
        // Any read still parked from the previous view is refused, and the
        // lease anchors of the dead view are discarded: a freshly installed
        // trusted primary starts with no lease and earns one from its first
        // committed slot (its propose time is the anchor), so reads arriving
        // before that fall back to the ordered path — conservative, but it
        // avoids granting a lease from evidence whose send times we cannot
        // bound.
        self.refuse_parked_reads(actions);
        self.proposed_at.clear();

        // Adopt the carried checkpoint if it is ahead of ours.
        if let Some(cp) = &new_view.checkpoint {
            if cp.seq > self.checkpoints.stable_seq() {
                self.checkpoints
                    .make_stable(cp.seq, cp.state_digest, vec![cp.clone()]);
                self.after_stable_checkpoint();
                if self.exec.last_executed() < cp.seq && self.cluster.is_trusted(new_view.replica) {
                    self.request_state_transfer(actions, new_view.replica);
                }
            }
        }

        let mut highest = self.checkpoints.stable_seq().max(self.exec.last_executed());

        // Committed certificates: mark committed and execute.
        for cert in &new_view.commits {
            highest = highest.max(cert.seq);
            let instance = self.log.instance_mut(cert.seq);
            instance.committed = true;
            instance.proposal = Some(Proposal {
                view: new_view.view,
                digest: cert.digest,
                batch: cert
                    .batch
                    .clone()
                    .unwrap_or_else(|| Batch::single(noop_request(cert.seq))),
                primary_signature: cert.primary_signature,
            });
            if let Some(batch) = cert.batch.clone() {
                self.metrics.committed += 1;
                self.exec.add_committed(cert.seq, batch);
            }
        }

        // Prepared certificates: adopt as proposals of the new view and vote.
        let i_am_primary = self.current_primary() == self.id;
        for cert in &new_view.prepares {
            highest = highest.max(cert.seq);
            let Some(batch) = cert.batch.clone() else {
                continue;
            };
            let digest = cert.digest;
            let seq = cert.seq;
            {
                let instance = self.log.instance_mut(seq);
                if instance.committed {
                    continue;
                }
                instance.proposal = Some(Proposal {
                    view: new_view.view,
                    digest,
                    batch,
                    primary_signature: cert.primary_signature,
                });
            }
            match self.mode {
                Mode::Lion => {
                    if !i_am_primary {
                        let accept = Accept {
                            view: self.view,
                            seq,
                            digest,
                            replica: self.id,
                            signature: None,
                        };
                        let primary = self.current_primary();
                        self.send(actions, NodeId::Replica(primary), Message::Accept(accept));
                    }
                }
                Mode::Dog => {
                    if self.is_proxy() {
                        let mut accept = Accept {
                            view: self.view,
                            seq,
                            digest,
                            replica: self.id,
                            signature: None,
                        };
                        accept.signature = Some(self.sign_payload(&accept));
                        self.log.instance_mut(seq).record_accept(self.id, digest);
                        let proxies = self.current_proxies();
                        self.broadcast_to(actions, proxies, Message::Accept(accept));
                    }
                }
                Mode::Peacock => {
                    if self.is_proxy() && !i_am_primary {
                        let mut vote = PbftPrepare {
                            view: self.view,
                            seq,
                            digest,
                            replica: self.id,
                            signature: Signature::INVALID,
                        };
                        vote.signature = self.sign_payload(&vote);
                        self.log
                            .instance_mut(seq)
                            .record_pbft_prepare(self.id, digest);
                        let proxies = self.current_proxies();
                        self.broadcast_to(actions, proxies, Message::PbftPrepare(vote));
                    }
                }
            }
        }

        // The new primary continues sequence numbering above everything the
        // new view carried over.
        self.next_seq = highest;
        self.execute_ready(actions, now);

        // Requests that were sitting in the (old) primary's batch buffer
        // when the view changed must not be stranded: a prepared-but-never-
        // proposed buffer is re-routed through the normal request paths (and
        // its armed flush timer, if any, is cancelled with it).
        let buffered = self.batcher.drain(actions);

        if self.current_primary() == self.id {
            // A newly installed primary immediately proposes the requests
            // that were forwarded to the failed primary (plus its own
            // leftover buffer) but never ordered, so recovery does not wait
            // for client retransmissions (this is what keeps the Figure 4
            // outage short). The pending set is sorted by request identity
            // so recovery batches are deterministic.
            let mut pending: Vec<ClientRequest> = self
                .forwarded_requests
                .values()
                .chain(buffered.iter())
                .filter(|request| {
                    self.exec
                        .cached_reply(request.client, request.timestamp)
                        .is_none()
                        && !self.assigned.contains_key(&request.id())
                })
                .cloned()
                .collect();
            pending.sort_by_key(ClientRequest::id);
            pending.dedup_by_key(|request| request.id());
            for request in pending {
                self.buffer_or_propose(actions, request, now);
            }
            // Recovery must not wait out the flush delay: cut the partial
            // batch.
            self.flush_pending_batch(actions, now);
        } else {
            for request in buffered {
                if self
                    .exec
                    .cached_reply(request.client, request.timestamp)
                    .is_none()
                {
                    self.forward_to_primary(actions, request);
                }
            }
        }

        // A brand-new Lion/Dog primary must also drive the carried-over
        // prepares to commit; its own "vote" is implicit in having proposed
        // them, so nothing further is needed here — accepts from the backups
        // will arrive and the normal-case path takes over.
    }

    // ------------------------------------------------------------------
    // Dynamic mode switching (Section 5.4)
    // ------------------------------------------------------------------

    /// Called on the trusted replica that should announce a switch to
    /// `new_mode`. Returns no actions if this replica is not the legitimate
    /// announcer.
    pub(crate) fn initiate_mode_switch(&mut self, new_mode: Mode, now: Instant) -> Vec<Action> {
        let mut actions = Vec::new();
        if new_mode == self.mode {
            return actions;
        }
        let target_view = self.view.next();
        let announcer = mode_switch_announcer(&self.cluster, target_view, new_mode);
        if announcer != Some(self.id) || !self.cluster.is_trusted(self.id) {
            return actions;
        }
        let mut announcement = ModeChange {
            new_view: target_view,
            new_mode,
            replica: self.id,
            signature: Signature::INVALID,
        };
        announcement.signature = self.sign_payload(&announcement);
        let recipients = self.all_replicas();
        self.broadcast_to(
            &mut actions,
            recipients,
            Message::ModeChange(announcement.clone()),
        );
        actions.extend(self.apply_mode_change(announcement, now));
        actions
    }

    /// Handles a `MODE-CHANGE` announcement.
    pub(crate) fn on_mode_change(
        &mut self,
        from: NodeId,
        mode_change: ModeChange,
        now: Instant,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        let Some(sender) = from.as_replica() else {
            return actions;
        };
        if mode_change.new_view <= self.view {
            actions.push(self.violation(ProtocolViolation::WrongView {
                got: mode_change.new_view,
                expected: self.view.next(),
            }));
            return actions;
        }
        let announcer =
            mode_switch_announcer(&self.cluster, mode_change.new_view, mode_change.new_mode);
        if sender != mode_change.replica
            || announcer != Some(sender)
            || !self.cluster.is_trusted(sender)
        {
            actions.push(self.violation(ProtocolViolation::UnexpectedSender {
                sender,
                expected_role: "trusted mode-switch announcer",
            }));
            return actions;
        }
        if !self.verify_payload_once(
            NodeId::Replica(sender),
            &mode_change,
            &mode_change.signature,
        ) {
            actions.push(self.violation(ProtocolViolation::BadSignature {
                claimed_signer: NodeId::Replica(sender),
            }));
            return actions;
        }
        actions.extend(self.apply_mode_change(mode_change, now));
        actions
    }

    /// Adopts a validated mode-change announcement: remembers the pending
    /// mode and participates in the view change that installs it.
    fn apply_mode_change(&mut self, mode_change: ModeChange, now: Instant) -> Vec<Action> {
        let mut actions = Vec::new();
        self.pending_mode = Some(mode_change.new_mode);
        self.trace(
            EventKind::ModeSwitchStart,
            None,
            None,
            u64::from(mode_change.new_mode.index()),
        );
        if self.is_view_change_voter(mode_change.new_mode) {
            actions.extend(self.start_view_change(mode_change.new_view, mode_change.new_mode, now));
        } else {
            // Non-voters (private replicas for Dog/Peacock targets) stop
            // normal-case processing and wait for the NEW-VIEW.
            self.vc.in_view_change = true;
            self.vc.target_view = mode_change.new_view;
            self.refuse_parked_reads(&mut actions);
            actions.push(Action::SetTimer {
                timer: Timer::ViewChange {
                    view: mode_change.new_view,
                },
                after: self.pconfig.view_change_timeout,
            });
        }
        actions
    }
}
