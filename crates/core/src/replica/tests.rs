//! Protocol-level tests for the SeeMoRe replica, driven through the
//! synchronous test cluster.

use crate::actions::Timer;
use crate::batching::BatchConfig;
use crate::byzantine::{ByzantineBehavior, ByzantineReplica};
use crate::client::ClientCore;
use crate::config::{BatchPolicy, ProtocolConfig};
use crate::replica::SeeMoReReplica;
use crate::testkit::SyncCluster;
use seemore_app::{KvOp, KvResult, KvStore};
use seemore_crypto::KeyStore;
use seemore_types::{ClientId, ClusterConfig, Duration, Mode, ReplicaId, SeqNum};

/// Builds a cluster of SeeMoRe replicas plus `clients` clients, all in
/// `mode`.
fn build_cluster(
    c: u32,
    m: u32,
    mode: Mode,
    clients: u64,
    pconfig: ProtocolConfig,
) -> (SyncCluster, ClusterConfig, KeyStore) {
    let cluster_config = ClusterConfig::minimal(c, m).expect("valid minimal cluster");
    let keystore = KeyStore::generate(
        0x5eed ^ u64::from(c * 31 + m),
        cluster_config.total_size(),
        clients,
    );
    let mut cluster = SyncCluster::new();
    for replica in cluster_config.replicas() {
        cluster.add_replica(Box::new(SeeMoReReplica::new(
            replica,
            cluster_config,
            pconfig,
            keystore.clone(),
            mode,
            Box::new(KvStore::new()),
        )));
    }
    for client in 0..clients {
        cluster.add_client(ClientCore::new(
            ClientId(client),
            cluster_config,
            keystore.clone(),
            mode,
            Duration::from_millis(100),
        ));
    }
    (cluster, cluster_config, keystore)
}

/// Asserts the SMR safety property: the executed histories of all listed
/// replicas are prefix-consistent (one is a prefix of the other) and agree on
/// request digests position by position.
fn assert_histories_consistent(cluster: &SyncCluster, replicas: &[ReplicaId]) {
    for window in replicas.windows(2) {
        let a = cluster.replica(window[0]).executed();
        let b = cluster.replica(window[1]).executed();
        let common = a.len().min(b.len());
        for i in 0..common {
            assert_eq!(
                a[i].digest, b[i].digest,
                "history divergence between {} and {} at position {i}",
                window[0], window[1]
            );
            assert_eq!(a[i].seq, b[i].seq);
        }
    }
}

/// The batch-flush timer currently armed on `id` (timers are
/// generation-tagged, so tests must look the live identity up rather than
/// name a constant).
fn armed_batch_flush(cluster: &SyncCluster, id: ReplicaId) -> Option<Timer> {
    cluster
        .armed_timers(id)
        .into_iter()
        .find(|t| matches!(t, Timer::BatchFlush { .. }))
}

fn put_op(key: &str, value: &str) -> Vec<u8> {
    KvOp::Put {
        key: key.as_bytes().to_vec(),
        value: value.as_bytes().to_vec(),
    }
    .encode()
}

fn get_op(key: &str) -> Vec<u8> {
    KvOp::Get {
        key: key.as_bytes().to_vec(),
    }
    .encode()
}

const LIMIT: u64 = 200_000;

// ----------------------------------------------------------------------
// Normal-case operation, one test per mode
// ----------------------------------------------------------------------

#[test]
fn lion_mode_commits_and_replies() {
    let (mut cluster, config, _) = build_cluster(1, 1, Mode::Lion, 1, ProtocolConfig::default());
    cluster.submit(ClientId(0), put_op("account", "100"));
    cluster.run_to_quiescence(LIMIT);

    let client = cluster.client(ClientId(0));
    assert_eq!(client.completed().len(), 1, "client request must complete");
    assert_eq!(
        KvResult::decode(&client.completed()[0].result),
        Some(KvResult::Ok)
    );

    // Every replica executed the request.
    for replica in config.replicas() {
        assert_eq!(
            cluster.replica(replica).executed().len(),
            1,
            "{replica} lagging"
        );
    }
    assert_histories_consistent(&cluster, &config.replicas().collect::<Vec<_>>());
}

#[test]
fn dog_mode_commits_and_replies() {
    let (mut cluster, config, _) = build_cluster(1, 1, Mode::Dog, 1, ProtocolConfig::default());
    cluster.submit(ClientId(0), put_op("k", "v"));
    cluster.run_to_quiescence(LIMIT);

    let client = cluster.client(ClientId(0));
    assert_eq!(client.completed().len(), 1);

    for replica in config.replicas() {
        assert_eq!(
            cluster.replica(replica).executed().len(),
            1,
            "{replica} did not execute (passive replicas learn via INFORM)"
        );
    }
    assert_histories_consistent(&cluster, &config.replicas().collect::<Vec<_>>());
}

#[test]
fn peacock_mode_commits_and_replies() {
    let (mut cluster, config, _) = build_cluster(1, 1, Mode::Peacock, 1, ProtocolConfig::default());
    cluster.submit(ClientId(0), put_op("k", "v"));
    cluster.run_to_quiescence(LIMIT);

    let client = cluster.client(ClientId(0));
    assert_eq!(client.completed().len(), 1);

    for replica in config.replicas() {
        assert_eq!(
            cluster.replica(replica).executed().len(),
            1,
            "{replica} lagging"
        );
    }
    assert_histories_consistent(&cluster, &config.replicas().collect::<Vec<_>>());
}

#[test]
fn sequential_requests_are_totally_ordered_across_clients() {
    for mode in Mode::ALL {
        let (mut cluster, config, _) = build_cluster(1, 1, mode, 3, ProtocolConfig::default());
        for round in 0..5 {
            for client in 0..3u64 {
                cluster.submit(
                    ClientId(client),
                    put_op(&format!("k{client}"), &format!("{round}")),
                );
                cluster.run_to_quiescence(LIMIT);
            }
        }
        for client in 0..3u64 {
            assert_eq!(
                cluster.client(ClientId(client)).completed().len(),
                5,
                "{mode}: client {client} incomplete"
            );
        }
        let replicas: Vec<ReplicaId> = config.replicas().collect();
        for replica in &replicas {
            assert_eq!(
                cluster.replica(*replica).executed().len(),
                15,
                "{mode}: {replica}"
            );
        }
        assert_histories_consistent(&cluster, &replicas);
    }
}

#[test]
fn reads_observe_prior_writes() {
    let (mut cluster, _, _) = build_cluster(1, 1, Mode::Lion, 1, ProtocolConfig::default());
    cluster.submit(ClientId(0), put_op("x", "42"));
    cluster.run_to_quiescence(LIMIT);
    cluster.submit(ClientId(0), get_op("x"));
    cluster.run_to_quiescence(LIMIT);

    let client = cluster.client(ClientId(0));
    assert_eq!(client.completed().len(), 2);
    assert_eq!(
        KvResult::decode(&client.completed()[1].result),
        Some(KvResult::Value(b"42".to_vec()))
    );
}

// ----------------------------------------------------------------------
// Crash tolerance
// ----------------------------------------------------------------------

#[test]
fn lion_tolerates_backup_crash_in_private_cloud() {
    let (mut cluster, config, _) = build_cluster(1, 1, Mode::Lion, 1, ProtocolConfig::default());
    // Crash the non-primary trusted replica (r1); c = 1 tolerates it.
    cluster.replica_mut(ReplicaId(1)).crash();

    for i in 0..3 {
        cluster.submit(ClientId(0), put_op("k", &format!("{i}")));
        cluster.run_to_quiescence(LIMIT);
    }
    assert_eq!(cluster.client(ClientId(0)).completed().len(), 3);
    let alive: Vec<ReplicaId> = config.replicas().filter(|r| *r != ReplicaId(1)).collect();
    for replica in &alive {
        assert_eq!(cluster.replica(*replica).executed().len(), 3);
    }
    assert_histories_consistent(&cluster, &alive);
}

#[test]
fn lion_primary_crash_triggers_view_change_and_recovers() {
    let (mut cluster, config, _) = build_cluster(1, 1, Mode::Lion, 1, ProtocolConfig::default());
    // Establish normal operation first.
    cluster.submit(ClientId(0), put_op("a", "1"));
    cluster.run_to_quiescence(LIMIT);
    assert_eq!(cluster.client(ClientId(0)).completed().len(), 1);

    // Crash the primary of view 0 (replica 0).
    cluster.replica_mut(ReplicaId(0)).crash();

    // The next request goes to the dead primary and stalls.
    cluster.submit(ClientId(0), put_op("a", "2"));
    cluster.run_to_quiescence(LIMIT);
    assert_eq!(cluster.client(ClientId(0)).completed().len(), 1);

    // Client retransmits; replicas forward to the dead primary and arm
    // progress timers.
    cluster.fire_client_timers(LIMIT);
    // Timers expire: view change to view 1 with the other trusted replica as
    // primary.
    cluster.fire_all_timers(LIMIT);
    cluster.run_to_quiescence(LIMIT);
    // Retransmit again so the new primary orders the request.
    cluster.fire_client_timers(LIMIT);
    cluster.run_to_quiescence(LIMIT);

    assert_eq!(
        cluster.client(ClientId(0)).completed().len(),
        2,
        "request must complete after the view change"
    );
    let alive: Vec<ReplicaId> = config.replicas().filter(|r| *r != ReplicaId(0)).collect();
    for replica in &alive {
        assert!(
            cluster.replica(*replica).view() > seemore_types::View(0),
            "{replica} should have moved past view 0"
        );
    }
    assert_histories_consistent(&cluster, &alive);
}

#[test]
fn peacock_primary_crash_recovers_via_transferer() {
    let (mut cluster, config, _) = build_cluster(1, 1, Mode::Peacock, 1, ProtocolConfig::default());
    cluster.submit(ClientId(0), put_op("a", "1"));
    cluster.run_to_quiescence(LIMIT);
    assert_eq!(cluster.client(ClientId(0)).completed().len(), 1);

    // The Peacock primary of view 0 is the first public replica.
    let primary = config
        .primary(Mode::Peacock, seemore_types::View(0))
        .unwrap();
    cluster.replica_mut(primary).crash();

    cluster.submit(ClientId(0), put_op("a", "2"));
    cluster.run_to_quiescence(LIMIT);
    cluster.fire_client_timers(LIMIT);
    cluster.fire_all_timers(LIMIT);
    cluster.run_to_quiescence(LIMIT);
    cluster.fire_client_timers(LIMIT);
    cluster.run_to_quiescence(LIMIT);
    // One more retransmission round in case the first landed during the
    // view change.
    cluster.fire_client_timers(LIMIT);
    cluster.run_to_quiescence(LIMIT);

    assert_eq!(cluster.client(ClientId(0)).completed().len(), 2);
    let alive: Vec<ReplicaId> = config.replicas().filter(|r| *r != primary).collect();
    assert_histories_consistent(&cluster, &alive);
}

// ----------------------------------------------------------------------
// Byzantine tolerance
// ----------------------------------------------------------------------

#[test]
fn byzantine_public_replicas_cannot_break_safety() {
    for behavior in [
        ByzantineBehavior::Silent,
        ByzantineBehavior::CorruptSignatures,
        ByzantineBehavior::ConflictingVotes,
    ] {
        for mode in [Mode::Dog, Mode::Peacock, Mode::Lion] {
            let cluster_config = ClusterConfig::minimal(1, 1).unwrap();
            let keystore = KeyStore::generate(777, cluster_config.total_size(), 1);
            let mut cluster = SyncCluster::new();
            // The last public replica misbehaves (m = 1 tolerated).
            let byzantine_id = ReplicaId(cluster_config.total_size() - 1);
            for replica in cluster_config.replicas() {
                let core = SeeMoReReplica::new(
                    replica,
                    cluster_config,
                    ProtocolConfig::default(),
                    keystore.clone(),
                    mode,
                    Box::new(KvStore::new()),
                );
                if replica == byzantine_id {
                    cluster.add_replica(Box::new(ByzantineReplica::new(core, behavior)));
                } else {
                    cluster.add_replica(Box::new(core));
                }
            }
            cluster.add_client(ClientCore::new(
                ClientId(0),
                cluster_config,
                keystore.clone(),
                mode,
                Duration::from_millis(100),
            ));

            for i in 0..3 {
                cluster.submit(ClientId(0), put_op("k", &format!("{i}")));
                cluster.run_to_quiescence(LIMIT);
                // Give lagging paths a chance via retransmission.
                if cluster.client(ClientId(0)).has_pending() {
                    cluster.fire_client_timers(LIMIT);
                    cluster.run_to_quiescence(LIMIT);
                }
            }
            assert_eq!(
                cluster.client(ClientId(0)).completed().len(),
                3,
                "{mode} with {behavior:?}: client starved"
            );
            let honest: Vec<ReplicaId> = cluster_config
                .replicas()
                .filter(|r| *r != byzantine_id)
                .collect();
            assert_histories_consistent(&cluster, &honest);
        }
    }
}

// ----------------------------------------------------------------------
// Checkpointing and garbage collection
// ----------------------------------------------------------------------

#[test]
fn checkpoints_become_stable_and_garbage_collect() {
    let pconfig = ProtocolConfig::with_checkpoint_period(4);
    let (mut cluster, config, _) = build_cluster(1, 1, Mode::Lion, 1, pconfig);
    for i in 0..9 {
        cluster.submit(ClientId(0), put_op(&format!("k{i}"), "v"));
        cluster.run_to_quiescence(LIMIT);
    }
    assert_eq!(cluster.client(ClientId(0)).completed().len(), 9);
    for replica in config.replicas() {
        let metrics = cluster.replica(replica).metrics();
        assert!(
            metrics.stable_checkpoints >= 2,
            "{replica} stabilized only {} checkpoints",
            metrics.stable_checkpoints
        );
    }
}

#[test]
fn dog_mode_checkpoints_are_driven_by_the_trusted_primary() {
    let pconfig = ProtocolConfig::with_checkpoint_period(2);
    let (mut cluster, config, _) = build_cluster(1, 1, Mode::Dog, 1, pconfig);
    for i in 0..6 {
        cluster.submit(ClientId(0), put_op(&format!("k{i}"), "v"));
        cluster.run_to_quiescence(LIMIT);
    }
    for replica in config.replicas() {
        assert!(
            cluster.replica(replica).metrics().stable_checkpoints >= 1,
            "{replica}"
        );
    }
}

// ----------------------------------------------------------------------
// Dynamic mode switching
// ----------------------------------------------------------------------

#[test]
fn mode_switch_lion_to_peacock_and_back() {
    let (mut cluster, config, _) = build_cluster(1, 1, Mode::Lion, 1, ProtocolConfig::default());
    cluster.submit(ClientId(0), put_op("a", "1"));
    cluster.run_to_quiescence(LIMIT);

    // Switch to Peacock: the announcer is the transferer of view 1.
    let announcer =
        crate::replica::mode_switch_announcer(&config, seemore_types::View(1), Mode::Peacock)
            .unwrap();
    let now = cluster.now();
    let actions = cluster
        .replica_mut(announcer)
        .request_mode_switch(Mode::Peacock, now);
    assert!(!actions.is_empty(), "announcer must emit the MODE-CHANGE");
    // Feed the announcer's own actions into the network.
    for action in &actions {
        for (to, message) in action.sends() {
            cluster.inject(
                seemore_types::NodeId::Replica(announcer),
                to,
                message.clone(),
            );
        }
    }
    cluster.run_to_quiescence(LIMIT);

    for replica in config.replicas() {
        assert_eq!(
            cluster.replica(replica).mode(),
            Mode::Peacock,
            "{replica} did not switch"
        );
    }

    // The protocol keeps working in the new mode.
    cluster.submit(ClientId(0), put_op("a", "2"));
    cluster.run_to_quiescence(LIMIT);
    if cluster.client(ClientId(0)).has_pending() {
        cluster.fire_client_timers(LIMIT);
        cluster.run_to_quiescence(LIMIT);
    }
    assert_eq!(cluster.client(ClientId(0)).completed().len(), 2);

    // And back to Lion (announcer = primary of the next view in Lion mode).
    let current_view = cluster.replica(ReplicaId(0)).view();
    let announcer = crate::replica::mode_switch_announcer(
        &config,
        seemore_types::View(current_view.0 + 1),
        Mode::Lion,
    )
    .unwrap();
    let now = cluster.now();
    let actions = cluster
        .replica_mut(announcer)
        .request_mode_switch(Mode::Lion, now);
    for action in &actions {
        for (to, message) in action.sends() {
            cluster.inject(
                seemore_types::NodeId::Replica(announcer),
                to,
                message.clone(),
            );
        }
    }
    cluster.run_to_quiescence(LIMIT);
    for replica in config.replicas() {
        assert_eq!(
            cluster.replica(replica).mode(),
            Mode::Lion,
            "{replica} did not switch back"
        );
    }

    cluster.submit(ClientId(0), put_op("a", "3"));
    cluster.run_to_quiescence(LIMIT);
    if cluster.client(ClientId(0)).has_pending() {
        cluster.fire_client_timers(LIMIT);
        cluster.run_to_quiescence(LIMIT);
    }
    assert_eq!(cluster.client(ClientId(0)).completed().len(), 3);
    assert_histories_consistent(&cluster, &config.replicas().collect::<Vec<_>>());
}

// ----------------------------------------------------------------------
// Larger failure configurations (the Fig. 2 scenarios)
// ----------------------------------------------------------------------

#[test]
fn figure2_configurations_all_commit() {
    for (c, m) in [(1, 1), (2, 2), (1, 3), (3, 1)] {
        for mode in Mode::ALL {
            let (mut cluster, config, _) = build_cluster(c, m, mode, 1, ProtocolConfig::default());
            cluster.submit(ClientId(0), put_op("k", "v"));
            cluster.run_to_quiescence(LIMIT);
            if cluster.client(ClientId(0)).has_pending() {
                cluster.fire_client_timers(LIMIT);
                cluster.run_to_quiescence(LIMIT);
            }
            assert_eq!(
                cluster.client(ClientId(0)).completed().len(),
                1,
                "c={c} m={m} {mode}: request did not complete"
            );
            assert_histories_consistent(&cluster, &config.replicas().collect::<Vec<_>>());
        }
    }
}

// ----------------------------------------------------------------------
// Batching: one sequence number orders many requests
// ----------------------------------------------------------------------

/// A full batch (size trigger) commits atomically in every mode: all member
/// requests execute in batch order under one sequence number, and every
/// client gets its reply.
#[test]
fn full_batches_commit_atomically_in_every_mode() {
    for mode in Mode::ALL {
        let pconfig =
            ProtocolConfig::default().with_batching(BatchConfig::new(3, Duration::from_millis(1)));
        let (mut cluster, config, _) = build_cluster(1, 1, mode, 3, pconfig);
        for client in 0..3u64 {
            cluster.submit(ClientId(client), put_op(&format!("k{client}"), "v"));
        }
        cluster.run_to_quiescence(LIMIT);
        if (0..3u64).any(|c| cluster.client(ClientId(c)).has_pending()) {
            cluster.fire_client_timers(LIMIT);
            cluster.run_to_quiescence(LIMIT);
        }
        for client in 0..3u64 {
            assert_eq!(
                cluster.client(ClientId(client)).completed().len(),
                1,
                "{mode}: client {client} starved"
            );
        }
        for replica in config.replicas() {
            let history = cluster.replica(replica).executed();
            assert_eq!(history.len(), 3, "{mode}: {replica} lagging");
            // All three requests share one slot, in batch order.
            assert!(
                history.iter().all(|e| e.seq == SeqNum(1)),
                "{mode}: {replica}"
            );
            let offsets: Vec<usize> = history.iter().map(|e| e.offset).collect();
            assert_eq!(offsets, vec![0, 1, 2], "{mode}: {replica}");
        }
        assert_histories_consistent(&cluster, &config.replicas().collect::<Vec<_>>());
    }
}

/// A partial batch is cut by the flush timer (latency trigger), not lost.
#[test]
fn partial_batches_flush_on_the_timer() {
    for mode in Mode::ALL {
        let pconfig =
            ProtocolConfig::default().with_batching(BatchConfig::new(64, Duration::from_millis(1)));
        let (mut cluster, config, _) = build_cluster(1, 1, mode, 2, pconfig);
        cluster.submit(ClientId(0), put_op("a", "1"));
        cluster.submit(ClientId(1), put_op("b", "2"));
        cluster.run_to_quiescence(LIMIT);
        // Nothing ordered yet: the buffer holds 2 < 64 requests.
        let primary = config.primary(mode, seemore_types::View(0)).unwrap();
        for replica in config.replicas() {
            assert!(
                cluster.replica(replica).executed().is_empty(),
                "{mode}: {replica}"
            );
        }
        // The flush timer cuts the partial batch.
        let flush = armed_batch_flush(&cluster, primary).expect("flush timer armed");
        assert!(cluster.fire_timer(primary, flush), "{mode}: timer armed");
        cluster.run_to_quiescence(LIMIT);
        if (0..2u64).any(|c| cluster.client(ClientId(c)).has_pending()) {
            cluster.fire_client_timers(LIMIT);
            cluster.run_to_quiescence(LIMIT);
        }
        for replica in config.replicas() {
            let history = cluster.replica(replica).executed();
            assert_eq!(history.len(), 2, "{mode}: {replica} lagging");
            assert!(
                history.iter().all(|e| e.seq == SeqNum(1)),
                "{mode}: {replica}"
            );
        }
        for client in 0..2u64 {
            assert_eq!(
                cluster.client(ClientId(client)).completed().len(),
                1,
                "{mode}"
            );
        }
    }
}

/// A view change preserves a prepared-but-uncommitted batch: the batch was
/// proposed by the old primary and received by the backups but never
/// committed; the new view must re-propose and commit it without losing,
/// duplicating or reordering its member requests.
#[test]
fn view_change_preserves_prepared_but_uncommitted_batches() {
    let pconfig =
        ProtocolConfig::default().with_batching(BatchConfig::new(3, Duration::from_millis(1)));
    let (mut cluster, config, _) = build_cluster(1, 1, Mode::Lion, 3, pconfig);
    let primary = config.primary(Mode::Lion, seemore_types::View(0)).unwrap();

    // Deliver the three client requests to the primary; the third fills the
    // batch and queues the PREPARE broadcast.
    for client in 0..3u64 {
        cluster.submit(ClientId(client), put_op(&format!("k{client}"), "v"));
    }
    for _ in 0..3 {
        assert!(cluster.step(), "request delivery");
    }
    // Cut the primary off *before* any ACCEPT can reach it: the queued
    // PREPAREs still go out (they were already sent), but the commit never
    // happens — the batch is prepared everywhere and committed nowhere.
    cluster.isolate(primary);
    cluster.run_to_quiescence(LIMIT);
    for replica in config.replicas().filter(|r| *r != primary) {
        assert!(
            cluster.replica(replica).executed().is_empty(),
            "{replica} committed early"
        );
    }

    // Backups suspect the primary and install view 1; the new primary
    // re-proposes the carried batch.
    cluster.fire_all_timers(LIMIT);
    cluster.run_to_quiescence(LIMIT);
    cluster.fire_client_timers(LIMIT);
    cluster.run_to_quiescence(LIMIT);

    let alive: Vec<ReplicaId> = config.replicas().filter(|r| *r != primary).collect();
    for replica in &alive {
        let history = cluster.replica(*replica).executed();
        assert!(
            cluster.replica(*replica).view() > seemore_types::View(0),
            "{replica} still in view 0"
        );
        // The batch survived intact: same three requests, batch order
        // preserved, nothing duplicated.
        let executed: Vec<u64> = history
            .iter()
            .filter(|e| e.request.client != super::NOOP_CLIENT)
            .map(|e| e.request.client.0)
            .collect();
        assert_eq!(
            executed,
            vec![0, 1, 2],
            "{replica} lost or reordered the batch"
        );
    }
    assert_histories_consistent(&cluster, &alive);
    for client in 0..3u64 {
        assert_eq!(
            cluster.client(ClientId(client)).completed().len(),
            1,
            "client {client} starved across the view change"
        );
    }
}

/// A replica that buffered requests and was then deposed re-routes its
/// buffer to the new primary instead of stranding the requests.
#[test]
fn deposed_primary_reroutes_its_batch_buffer() {
    let pconfig =
        ProtocolConfig::default().with_batching(BatchConfig::new(64, Duration::from_millis(1)));
    let (mut cluster, config, _) = build_cluster(1, 1, Mode::Lion, 2, pconfig);
    let primary = config.primary(Mode::Lion, seemore_types::View(0)).unwrap();

    // Two requests reach the primary's buffer (64 never fills).
    cluster.submit(ClientId(0), put_op("a", "1"));
    cluster.submit(ClientId(1), put_op("b", "2"));
    cluster.run_to_quiescence(LIMIT);

    // Clients retransmit to everyone; backups forward to the (stalled)
    // primary and arm suspicion timers. The primary is isolated so its
    // flush can no longer reach anyone.
    cluster.isolate(primary);
    cluster.fire_client_timers(LIMIT);
    cluster.fire_all_timers(LIMIT);
    cluster.run_to_quiescence(LIMIT);
    cluster.fire_client_timers(LIMIT);
    cluster.run_to_quiescence(LIMIT);

    for client in 0..2u64 {
        assert_eq!(
            cluster.client(ClientId(client)).completed().len(),
            1,
            "client {client} starved after the primary was deposed"
        );
    }
    let alive: Vec<ReplicaId> = config.replicas().filter(|r| *r != primary).collect();
    assert_histories_consistent(&cluster, &alive);
}

/// Regression for the stale flush-timer bug: a size-trigger cut used to
/// leave the armed `BatchFlush` timer live, so it fired into the *next*
/// buffer and cut it prematurely — silently truncating the flush delay of
/// every batch after the first under steady load. With generation-tagged
/// timers the stale expiry is provably not the armed timer and is ignored:
/// the second batch waits out its own full delay.
#[test]
fn stale_flush_timer_cannot_truncate_the_next_batch() {
    for mode in Mode::ALL {
        let pconfig =
            ProtocolConfig::default().with_batching(BatchConfig::new(3, Duration::from_millis(1)));
        let (mut cluster, config, _) = build_cluster(1, 1, mode, 4, pconfig);
        let primary = config.primary(mode, seemore_types::View(0)).unwrap();

        // The first request arms the flush timer; remember that identity.
        cluster.submit(ClientId(0), put_op("a", "1"));
        cluster.run_to_quiescence(LIMIT);
        let stale =
            armed_batch_flush(&cluster, primary).expect("first buffered request arms the timer");

        // Fill the batch: the size trigger cuts it, which must invalidate
        // (and cancel) the armed timer.
        cluster.submit(ClientId(1), put_op("b", "2"));
        cluster.submit(ClientId(2), put_op("c", "3"));
        cluster.run_to_quiescence(LIMIT);
        if (0..3u64).any(|c| cluster.client(ClientId(c)).has_pending()) {
            cluster.fire_client_timers(LIMIT);
            cluster.run_to_quiescence(LIMIT);
        }
        for replica in config.replicas() {
            assert_eq!(
                cluster.replica(replica).executed().len(),
                3,
                "{mode}: {replica} missing the first batch"
            );
        }
        assert!(
            armed_batch_flush(&cluster, primary).is_none(),
            "{mode}: the size cut must cancel the flush timer"
        );

        // A fourth request starts the second buffer with a fresh timer.
        cluster.submit(ClientId(3), put_op("d", "4"));
        cluster.run_to_quiescence(LIMIT);
        let fresh = armed_batch_flush(&cluster, primary).expect("second buffer arms a timer");
        assert_ne!(fresh, stale, "{mode}: every arming gets a new generation");

        // The stale timer expires anyway (a substrate can race an expiry
        // against the cancel): it must NOT cut the second batch early.
        let now = cluster.now();
        let actions = cluster.replica_mut(primary).on_timer(stale, now);
        assert!(
            actions.is_empty(),
            "{mode}: stale flush timer produced actions: {actions:?}"
        );
        cluster.run_to_quiescence(LIMIT);
        for replica in config.replicas() {
            assert_eq!(
                cluster.replica(replica).executed().len(),
                3,
                "{mode}: {replica} executed the second batch before its delay elapsed"
            );
        }
        assert_eq!(
            cluster.replica(primary).metrics().batch.stale_timer_fires,
            1,
            "{mode}: the stale expiry should be counted"
        );

        // The *current* timer — i.e. the full delay of the second buffer —
        // is what flushes it.
        assert!(
            cluster.fire_timer(primary, fresh),
            "{mode}: fresh timer still armed"
        );
        cluster.run_to_quiescence(LIMIT);
        if cluster.client(ClientId(3)).has_pending() {
            cluster.fire_client_timers(LIMIT);
            cluster.run_to_quiescence(LIMIT);
        }
        assert_eq!(
            cluster.client(ClientId(3)).completed().len(),
            1,
            "{mode}: second batch lost"
        );
        assert_histories_consistent(&cluster, &config.replicas().collect::<Vec<_>>());
    }
}

/// A zero flush delay with a cap above 1 must not arm a zero-delay timer
/// per request (degenerate timer churn): it proposes every request
/// immediately, exactly like an unbatched policy.
#[test]
fn zero_delay_policy_proposes_immediately_without_timer_churn() {
    for mode in Mode::ALL {
        let pconfig = ProtocolConfig::default().with_batching(BatchConfig::new(8, Duration::ZERO));
        let (mut cluster, config, _) = build_cluster(1, 1, mode, 2, pconfig);
        let primary = config.primary(mode, seemore_types::View(0)).unwrap();
        for client in 0..2u64 {
            cluster.submit(ClientId(client), put_op(&format!("k{client}"), "v"));
        }
        cluster.run_to_quiescence(LIMIT);
        if (0..2u64).any(|c| cluster.client(ClientId(c)).has_pending()) {
            cluster.fire_client_timers(LIMIT);
            cluster.run_to_quiescence(LIMIT);
        }
        assert!(
            armed_batch_flush(&cluster, primary).is_none(),
            "{mode}: a zero-delay policy must never arm a flush timer"
        );
        for client in 0..2u64 {
            assert_eq!(
                cluster.client(ClientId(client)).completed().len(),
                1,
                "{mode}: client {client}"
            );
        }
        for replica in config.replicas() {
            assert_eq!(cluster.replica(replica).executed().len(), 2, "{mode}");
        }
        // Every batch was a singleton cut on arrival.
        assert_eq!(
            cluster.replica(primary).metrics().batch.max_size(),
            1,
            "{mode}"
        );
    }
}

/// The adaptive policy grows the effective cap past 1 under a request burst
/// (slots in flight at cut time) and never cuts a batch above its ceiling,
/// in every mode.
#[test]
fn adaptive_policy_grows_batches_under_load_in_every_mode() {
    for mode in Mode::ALL {
        let pconfig = ProtocolConfig::default()
            .with_batch_policy(BatchPolicy::adaptive(4, Duration::from_millis(1)));
        let (mut cluster, config, _) = build_cluster(1, 1, mode, 6, pconfig);
        let primary = config.primary(mode, seemore_types::View(0)).unwrap();

        for round in 0..3 {
            for client in 0..6u64 {
                cluster.submit(ClientId(client), put_op(&format!("k{client}-{round}"), "v"));
            }
            // Drain the burst, firing flush timers for partial tails and
            // client retransmissions for stragglers.
            for _ in 0..20 {
                cluster.run_to_quiescence(LIMIT);
                if let Some(flush) = armed_batch_flush(&cluster, primary) {
                    cluster.fire_timer(primary, flush);
                    continue;
                }
                if (0..6u64).any(|c| cluster.client(ClientId(c)).has_pending()) {
                    cluster.fire_client_timers(LIMIT);
                    cluster.run_to_quiescence(LIMIT);
                }
                break;
            }
        }

        let telemetry = &cluster.replica(primary).metrics().batch;
        assert!(telemetry.batches() > 0, "{mode}: nothing was cut");
        assert!(
            telemetry.max_size() >= 2,
            "{mode}: the cap never grew under load (max {})",
            telemetry.max_size()
        );
        assert!(
            telemetry.max_size() <= 4,
            "{mode}: a batch exceeded the ceiling (max {})",
            telemetry.max_size()
        );
        for client in 0..6u64 {
            assert_eq!(
                cluster.client(ClientId(client)).completed().len(),
                3,
                "{mode}: client {client} starved"
            );
        }
        assert_histories_consistent(&cluster, &config.replicas().collect::<Vec<_>>());
    }
}

// ----------------------------------------------------------------------
// Message-count sanity vs. Table 1 expectations
// ----------------------------------------------------------------------

#[test]
fn lion_uses_linear_messages_and_dog_uses_quadratic() {
    let (mut lion, config, _) = build_cluster(1, 1, Mode::Lion, 1, ProtocolConfig::default());
    lion.submit(ClientId(0), put_op("k", "v"));
    lion.run_to_quiescence(LIMIT);
    let lion_msgs: u64 = config
        .replicas()
        .map(|r| lion.replica(r).metrics().agreement_messages_sent())
        .sum();

    let (mut dog, config, _) = build_cluster(1, 1, Mode::Dog, 1, ProtocolConfig::default());
    dog.submit(ClientId(0), put_op("k", "v"));
    dog.run_to_quiescence(LIMIT);
    let dog_msgs: u64 = config
        .replicas()
        .map(|r| dog.replica(r).metrics().agreement_messages_sent())
        .sum();

    let (mut peacock, config, _) = build_cluster(1, 1, Mode::Peacock, 1, ProtocolConfig::default());
    peacock.submit(ClientId(0), put_op("k", "v"));
    peacock.run_to_quiescence(LIMIT);
    let peacock_msgs: u64 = config
        .replicas()
        .map(|r| peacock.replica(r).metrics().agreement_messages_sent())
        .sum();

    // Lion (O(n), 2 phases over the full network) must use fewer agreement
    // messages than either proxy-based quadratic mode — the message-count
    // column of Table 1. (Dog and Peacock are close to each other at this
    // small scale: Dog has one fewer phase but one more voter per phase.)
    assert!(lion_msgs < dog_msgs, "lion={lion_msgs} dog={dog_msgs}");
    assert!(
        lion_msgs < peacock_msgs,
        "lion={lion_msgs} peacock={peacock_msgs}"
    );
}

// ----------------------------------------------------------------------
// Read-only fast path
// ----------------------------------------------------------------------

#[test]
fn fast_path_reads_serve_without_ordering_in_every_mode() {
    for mode in Mode::ALL {
        let (mut cluster, config, _) = build_cluster(1, 1, mode, 2, ProtocolConfig::default());
        cluster.submit(ClientId(0), put_op("x", "42"));
        cluster.run_to_quiescence(LIMIT);
        let ordered_before: usize = config
            .replicas()
            .map(|r| cluster.replica(r).executed().len())
            .sum();

        cluster.submit_op(ClientId(1), get_op("x"), seemore_types::OpClass::Read);
        cluster.run_to_quiescence(LIMIT);

        let client = cluster.client(ClientId(1));
        assert_eq!(client.completed().len(), 1, "{mode}: read must complete");
        let outcome = &client.completed()[0];
        assert_eq!(outcome.class, seemore_types::OpClass::Read);
        assert_eq!(
            KvResult::decode(&outcome.result),
            Some(KvResult::Value(b"42".to_vec())),
            "{mode}: read must observe the committed write"
        );

        // The read never entered the ordered path: no replica executed a
        // second operation, and at least one replica served it fast.
        let ordered_after: usize = config
            .replicas()
            .map(|r| cluster.replica(r).executed().len())
            .sum();
        assert_eq!(
            ordered_after, ordered_before,
            "{mode}: the fast read must not be ordered"
        );
        let served: u64 = config
            .replicas()
            .map(|r| cluster.replica(r).metrics().reads_served)
            .sum();
        match mode {
            // A single trusted primary serves Lion/Dog reads.
            Mode::Lion | Mode::Dog => assert_eq!(served, 1, "{mode}"),
            // Every proxy answers in Peacock (3m + 1 = 4).
            Mode::Peacock => assert_eq!(served, 4, "{mode}"),
        }
    }
}

#[test]
fn backup_refuses_fast_reads_in_trusted_primary_modes() {
    for mode in [Mode::Lion, Mode::Dog] {
        let (mut cluster, _, keystore) = build_cluster(1, 1, mode, 1, ProtocolConfig::default());
        let signer = keystore
            .signer_for(seemore_types::NodeId::Client(ClientId(0)))
            .unwrap();
        let read = seemore_wire::ReadRequest::new(
            ClientId(0),
            seemore_types::Timestamp(1),
            get_op("x"),
            &signer,
        );
        // A backup (trusted, but not the primary) must refuse: its executed
        // state may lag the acknowledged prefix.
        cluster.inject(
            seemore_types::NodeId::Client(ClientId(0)),
            seemore_types::NodeId::Replica(ReplicaId(1)),
            seemore_wire::Message::ReadRequest(read),
        );
        cluster.run_to_quiescence(LIMIT);
        assert_eq!(
            cluster.replica(ReplicaId(1)).metrics().reads_refused,
            1,
            "{mode}: backup must refuse"
        );
        assert_eq!(cluster.replica(ReplicaId(1)).metrics().reads_served, 0);
    }
}

#[test]
fn expired_lease_refuses_and_the_client_falls_back_to_the_ordered_path() {
    let (mut cluster, _, _) = build_cluster(1, 1, Mode::Lion, 1, ProtocolConfig::default());
    cluster.submit(ClientId(0), put_op("x", "7"));
    cluster.run_to_quiescence(LIMIT);

    // Let the lease (one request timeout past the last commit) expire with
    // no new quorum contact.
    cluster.advance_time(Duration::from_millis(500));
    cluster.submit_op(ClientId(0), get_op("x"), seemore_types::OpClass::Read);
    cluster.run_to_quiescence(LIMIT);

    // The refusal redirected the client to the ordered path, which ordered
    // and executed the Get like any other request — and ordering the Get
    // renewed the lease as a side effect.
    let client = cluster.client(ClientId(0));
    assert_eq!(client.completed().len(), 2);
    let outcome = &client.completed()[1];
    assert_eq!(outcome.class, seemore_types::OpClass::Read);
    assert_eq!(
        KvResult::decode(&outcome.result),
        Some(KvResult::Value(b"7".to_vec()))
    );
    assert_eq!(cluster.replica(ReplicaId(0)).metrics().reads_refused, 1);
    assert_eq!(cluster.replica(ReplicaId(0)).metrics().reads_served, 0);

    // With the lease fresh again, the next read takes the fast path.
    cluster.submit_op(ClientId(0), get_op("x"), seemore_types::OpClass::Read);
    cluster.run_to_quiescence(LIMIT);
    assert_eq!(cluster.replica(ReplicaId(0)).metrics().reads_served, 1);
    assert_eq!(cluster.client(ClientId(0)).completed().len(), 3);
}

#[test]
fn dog_reads_park_behind_the_commit_index_fence() {
    // Submit a write and a read back-to-back without draining in between:
    // the primary proposes the write (slot 1 in flight), then receives the
    // read while its own execution still lags the proxies' progress. The
    // fence must hold the read until the INFORM-driven execution catches
    // up, so the read observes the write it arrived after.
    let (mut cluster, _, _) = build_cluster(1, 1, Mode::Dog, 2, ProtocolConfig::default());
    cluster.submit(ClientId(0), put_op("x", "fenced"));
    cluster.submit_op(ClientId(1), get_op("x"), seemore_types::OpClass::Read);
    cluster.run_to_quiescence(LIMIT);

    let reader = cluster.client(ClientId(1));
    assert_eq!(reader.completed().len(), 1);
    assert_eq!(
        KvResult::decode(&reader.completed()[0].result),
        Some(KvResult::Value(b"fenced".to_vec())),
        "a read arriving after an in-flight write must wait for it"
    );
    assert_eq!(cluster.replica(ReplicaId(0)).metrics().reads_served, 1);
}

#[test]
fn mode_switch_refuses_parked_reads() {
    // Park a read behind a write that can never commit (the proxies are
    // isolated), then announce a mode switch: the primary must refuse the
    // parked read so its client is not stranded.
    let (mut cluster, config, _) = build_cluster(1, 1, Mode::Dog, 2, ProtocolConfig::default());
    for proxy in config.public_replicas() {
        cluster.isolate(proxy);
    }
    cluster.submit(ClientId(0), put_op("x", "stuck"));
    cluster.submit_op(ClientId(1), get_op("x"), seemore_types::OpClass::Read);
    cluster.run_to_quiescence(LIMIT);
    assert_eq!(cluster.replica(ReplicaId(0)).metrics().reads_served, 0);
    assert_eq!(cluster.replica(ReplicaId(0)).metrics().reads_refused, 0);

    // The announcer for a Peacock switch starting at view 1 is the
    // transferer (trusted r1); its announcement reaches the primary, which
    // stops normal-case processing and flushes the parked read as a refusal.
    cluster.request_mode_switch(ReplicaId(1), Mode::Peacock);
    cluster.run_to_quiescence(LIMIT);
    assert_eq!(
        cluster.replica(ReplicaId(0)).metrics().reads_refused,
        1,
        "the parked read must be refused on a mode switch"
    );
}

#[test]
fn peacock_reads_park_behind_prepared_but_uncommitted_slots() {
    // A Peacock proxy must not answer a fast-path read while a slot it has
    // *prepared* is still unexecuted: the write may already have been
    // acknowledged to its client (the write path accepts m+1 matching
    // replies), and this proxy's stale answer could complete a
    // matching-but-stale 2m+1 read quorum together with m Byzantine proxies
    // and the (at most m) honest proxies outside the write's prepare quorum.
    use crate::protocol::ReplicaProtocol;
    use seemore_crypto::Signature;
    use seemore_types::{NodeId, Timestamp};
    use seemore_wire::{Batch, Commit, Message, PbftPrepare, PrePrepare, SignedPayload};

    let config = ClusterConfig::minimal(1, 1).unwrap();
    let keystore = KeyStore::generate(0xFE7CE, config.total_size(), 1);
    // r2 is the view-0 Peacock primary; r3 is an ordinary proxy under test.
    let mut proxy = SeeMoReReplica::new(
        ReplicaId(3),
        config,
        ProtocolConfig::default(),
        keystore.clone(),
        Mode::Peacock,
        Box::new(KvStore::new()),
    );
    let now = seemore_types::Instant::ZERO;

    // The primary's PRE-PREPARE for slot 1.
    let client_signer = keystore.signer_for(NodeId::Client(ClientId(0))).unwrap();
    let request = seemore_wire::ClientRequest::new(
        ClientId(0),
        Timestamp(1),
        put_op("x", "new"),
        &client_signer,
    );
    let batch = Batch::single(request);
    let primary_signer = keystore.signer_for(NodeId::Replica(ReplicaId(2))).unwrap();
    let mut preprepare = PrePrepare {
        view: seemore_types::View(0),
        seq: SeqNum(1),
        digest: batch.digest(),
        batch: batch.clone(),
        signature: Signature::INVALID,
    };
    preprepare.signature = primary_signer.sign(&preprepare.signing_bytes());
    proxy.on_message(
        NodeId::Replica(ReplicaId(2)),
        Message::PrePrepare(preprepare),
        now,
    );

    // One more prepare vote reaches the 2m = 2 matching threshold (the
    // proxy's own vote was recorded when it handled the pre-prepare): the
    // slot is now *prepared* but not committed.
    let vote_signer = keystore.signer_for(NodeId::Replica(ReplicaId(4))).unwrap();
    let mut vote = PbftPrepare {
        view: seemore_types::View(0),
        seq: SeqNum(1),
        digest: batch.digest(),
        replica: ReplicaId(4),
        signature: Signature::INVALID,
    };
    vote.signature = vote_signer.sign(&vote.signing_bytes());
    proxy.on_message(
        NodeId::Replica(ReplicaId(4)),
        Message::PbftPrepare(vote),
        now,
    );
    assert_eq!(proxy.executed().len(), 0, "slot must not have executed yet");

    // A fast-path read arriving now must park, not serve.
    let read =
        seemore_wire::ReadRequest::new(ClientId(0), Timestamp(2), get_op("x"), &client_signer);
    let actions = proxy.on_message(NodeId::Client(ClientId(0)), Message::ReadRequest(read), now);
    assert!(
        actions.iter().all(|a| !a.is_send()),
        "read behind the prepared frontier must be parked, got {actions:?}"
    );
    assert_eq!(proxy.metrics().reads_served, 0);
    assert_eq!(proxy.metrics().reads_refused, 0);

    // Commit votes from two more proxies reach 2m + 1 = 3 (with the proxy's
    // own vote from the prepare step): the slot executes and the parked
    // read is served — with the committed value.
    for replica in [4u32, 5] {
        let signer = keystore
            .signer_for(NodeId::Replica(ReplicaId(replica)))
            .unwrap();
        let mut commit = Commit {
            view: seemore_types::View(0),
            seq: SeqNum(1),
            digest: batch.digest(),
            replica: ReplicaId(replica),
            batch: None,
            signature: Signature::INVALID,
        };
        commit.signature = signer.sign(&commit.signing_bytes());
        proxy.on_message(
            NodeId::Replica(ReplicaId(replica)),
            Message::Commit(commit),
            now,
        );
    }
    assert_eq!(proxy.executed().len(), 1);
    assert_eq!(
        proxy.metrics().reads_served,
        1,
        "parked read must be served"
    );
}
