//! Analytical cost model behind Table 1 of the paper.
//!
//! Table 1 compares the three SeeMoRe modes with Paxos, PBFT and UpRight
//! along four axes: communication phases, message complexity, receiving
//! network size and quorum size. [`ProtocolProfile`] captures one row and
//! [`table1`] generates the whole table for a given `(c, m)` so the
//! benchmark harness can print it (and the tests can check it) for any
//! failure configuration.

use seemore_types::Mode;

/// Asymptotic message complexity of the agreement path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageComplexity {
    /// `O(n)` messages per request.
    Linear,
    /// `O(n²)` messages per request.
    Quadratic,
}

impl std::fmt::Display for MessageComplexity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessageComplexity::Linear => write!(f, "O(n)"),
            MessageComplexity::Quadratic => write!(f, "O(n^2)"),
        }
    }
}

/// One row of Table 1, instantiated for concrete failure bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolProfile {
    /// Protocol (or SeeMoRe mode) name as printed in the paper.
    pub name: &'static str,
    /// Number of communication phases between request reception at the
    /// primary and commit.
    pub phases: u32,
    /// Message complexity class.
    pub messages: MessageComplexity,
    /// Symbolic receiving-network size, e.g. `3m+2c+1`.
    pub receiving_network_formula: &'static str,
    /// Concrete receiving-network size for the given `(c, m)`.
    pub receiving_network: u32,
    /// Symbolic quorum size, e.g. `2m+c+1`.
    pub quorum_formula: &'static str,
    /// Concrete quorum size for the given `(c, m)`.
    pub quorum: u32,
    /// Estimated number of protocol messages exchanged per committed request
    /// in the failure-free case (the closed forms given in Section 5).
    pub normal_case_messages: u32,
}

/// The profile of one SeeMoRe mode for `c` crash and `m` Byzantine faults.
///
/// Normal-case message counts follow the closed forms in Sections 5.1–5.3:
/// `3N` for Lion, `N + (3m+1)² + (3m+1)·N` for Dog and
/// `N + 2(3m+1)² + (1+S)(3m+1)` for Peacock, with `N = 3m+2c+1` and `S = 2c`.
pub fn seemore_profile(mode: Mode, c: u32, m: u32) -> ProtocolProfile {
    let n = 3 * m + 2 * c + 1;
    let s = 2 * c;
    let proxies = 3 * m + 1;
    match mode {
        Mode::Lion => ProtocolProfile {
            name: "Lion",
            phases: 2,
            messages: MessageComplexity::Linear,
            receiving_network_formula: "3m+2c+1",
            receiving_network: n,
            quorum_formula: "2m+c+1",
            quorum: 2 * m + c + 1,
            normal_case_messages: 3 * n,
        },
        Mode::Dog => ProtocolProfile {
            name: "Dog",
            phases: 2,
            messages: MessageComplexity::Quadratic,
            receiving_network_formula: "3m+1",
            receiving_network: proxies,
            quorum_formula: "2m+1",
            quorum: 2 * m + 1,
            normal_case_messages: n + proxies * proxies + proxies * n,
        },
        Mode::Peacock => ProtocolProfile {
            name: "Peacock",
            phases: 3,
            messages: MessageComplexity::Quadratic,
            receiving_network_formula: "3m+1",
            receiving_network: proxies,
            quorum_formula: "2m+1",
            quorum: 2 * m + 1,
            normal_case_messages: n + 2 * proxies * proxies + (1 + s) * proxies,
        },
    }
}

/// Profile of the crash fault-tolerant baseline (Paxos) tolerating
/// `f = c + m` crash failures, as configured in the paper's evaluation.
pub fn paxos_profile(c: u32, m: u32) -> ProtocolProfile {
    let f = c + m;
    let n = 2 * f + 1;
    ProtocolProfile {
        name: "Paxos",
        phases: 2,
        messages: MessageComplexity::Linear,
        receiving_network_formula: "2f+1",
        receiving_network: n,
        quorum_formula: "f+1",
        quorum: f + 1,
        normal_case_messages: 3 * n,
    }
}

/// Profile of the Byzantine fault-tolerant baseline (PBFT) tolerating
/// `f = c + m` Byzantine failures.
pub fn pbft_profile(c: u32, m: u32) -> ProtocolProfile {
    let f = c + m;
    let n = 3 * f + 1;
    ProtocolProfile {
        name: "PBFT",
        phases: 3,
        messages: MessageComplexity::Quadratic,
        receiving_network_formula: "3f+1",
        receiving_network: n,
        quorum_formula: "2f+1",
        quorum: 2 * f + 1,
        normal_case_messages: n + 2 * n * n,
    }
}

/// Profile of the hybrid baseline (UpRight / S-UpRight): PBFT-style
/// agreement over `3m + 2c + 1` replicas with `2m + c + 1` quorums.
pub fn upright_profile(c: u32, m: u32) -> ProtocolProfile {
    let n = 3 * m + 2 * c + 1;
    ProtocolProfile {
        name: "UpRight",
        phases: 2,
        messages: MessageComplexity::Quadratic,
        receiving_network_formula: "3m+2c+1",
        receiving_network: n,
        quorum_formula: "2m+c+1",
        quorum: 2 * m + c + 1,
        normal_case_messages: n + 2 * n * n,
    }
}

/// All rows of Table 1 for the given failure bounds, in the paper's order.
pub fn table1(c: u32, m: u32) -> Vec<ProtocolProfile> {
    vec![
        seemore_profile(Mode::Lion, c, m),
        seemore_profile(Mode::Dog, c, m),
        seemore_profile(Mode::Peacock, c, m),
        paxos_profile(c, m),
        pbft_profile(c, m),
        upright_profile(c, m),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_symbolic_columns_match_paper() {
        let rows = table1(1, 1);
        let by_name = |name: &str| rows.iter().find(|r| r.name == name).unwrap().clone();

        let lion = by_name("Lion");
        assert_eq!(lion.phases, 2);
        assert_eq!(lion.messages, MessageComplexity::Linear);
        assert_eq!(lion.receiving_network_formula, "3m+2c+1");
        assert_eq!(lion.quorum_formula, "2m+c+1");

        let dog = by_name("Dog");
        assert_eq!(dog.phases, 2);
        assert_eq!(dog.messages, MessageComplexity::Quadratic);
        assert_eq!(dog.receiving_network_formula, "3m+1");
        assert_eq!(dog.quorum_formula, "2m+1");

        let peacock = by_name("Peacock");
        assert_eq!(peacock.phases, 3);
        assert_eq!(peacock.quorum_formula, "2m+1");

        let paxos = by_name("Paxos");
        assert_eq!(paxos.phases, 2);
        assert_eq!(paxos.messages, MessageComplexity::Linear);
        assert_eq!(paxos.quorum_formula, "f+1");

        let pbft = by_name("PBFT");
        assert_eq!(pbft.phases, 3);
        assert_eq!(pbft.quorum_formula, "2f+1");

        let upright = by_name("UpRight");
        assert_eq!(upright.phases, 2);
        assert_eq!(upright.messages, MessageComplexity::Quadratic);
        assert_eq!(upright.quorum_formula, "2m+c+1");
    }

    #[test]
    fn concrete_sizes_for_the_evaluation_scenarios() {
        // f = 2 (c = m = 1): SeeMoRe/UpRight = 6, CFT = 5, BFT = 7.
        let rows = table1(1, 1);
        assert_eq!(
            rows.iter()
                .find(|r| r.name == "Lion")
                .unwrap()
                .receiving_network,
            6
        );
        assert_eq!(
            rows.iter()
                .find(|r| r.name == "UpRight")
                .unwrap()
                .receiving_network,
            6
        );
        assert_eq!(
            rows.iter()
                .find(|r| r.name == "Paxos")
                .unwrap()
                .receiving_network,
            5
        );
        assert_eq!(
            rows.iter()
                .find(|r| r.name == "PBFT")
                .unwrap()
                .receiving_network,
            7
        );
        // The Dog/Peacock modes only talk to the 3m+1 = 4 public replicas.
        assert_eq!(
            rows.iter()
                .find(|r| r.name == "Dog")
                .unwrap()
                .receiving_network,
            4
        );

        // f = 4 scenarios from Fig. 2(b)-(d).
        assert_eq!(seemore_profile(Mode::Lion, 2, 2).receiving_network, 11);
        assert_eq!(seemore_profile(Mode::Lion, 1, 3).receiving_network, 12);
        assert_eq!(seemore_profile(Mode::Lion, 3, 1).receiving_network, 10);
        assert_eq!(paxos_profile(2, 2).receiving_network, 9);
        assert_eq!(pbft_profile(2, 2).receiving_network, 13);
    }

    #[test]
    fn normal_case_message_counts_match_closed_forms() {
        // c = m = 1: N = 6, S = 2, proxies = 4.
        let lion = seemore_profile(Mode::Lion, 1, 1);
        assert_eq!(lion.normal_case_messages, 18); // 3N
        let dog = seemore_profile(Mode::Dog, 1, 1);
        assert_eq!(dog.normal_case_messages, 6 + 16 + 24); // N + 16 + 4N
        let peacock = seemore_profile(Mode::Peacock, 1, 1);
        assert_eq!(peacock.normal_case_messages, 6 + 32 + 12); // N + 2*16 + 3*4
    }

    #[test]
    fn lion_always_cheaper_than_pbft_in_messages() {
        for c in 1..5u32 {
            for m in 1..5u32 {
                let lion = seemore_profile(Mode::Lion, c, m);
                let pbft = pbft_profile(c, m);
                assert!(lion.normal_case_messages < pbft.normal_case_messages);
                assert!(lion.receiving_network < pbft.receiving_network);
            }
        }
    }

    #[test]
    fn display_of_complexity() {
        assert_eq!(MessageComplexity::Linear.to_string(), "O(n)");
        assert_eq!(MessageComplexity::Quadratic.to_string(), "O(n^2)");
    }
}
