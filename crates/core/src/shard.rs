//! Sharded multi-group routing: the replica-side guard and the client-side
//! routing tier.
//!
//! A sharded deployment fronts `N` independent SeeMoRe groups, each running
//! the unmodified single-group protocol over its own slice of the keyspace.
//! The cores stay sans-IO and group-oblivious; sharding is layered on at the
//! boundary by two small components:
//!
//! * [`ShardGuard`] wraps a replica core. It intercepts client traffic
//!   ([`Message::Request`] / [`Message::ReadRequest`]) before it reaches the
//!   core, checks key ownership against the group's [`ShardMap`], and
//!   answers misrouted requests with a signed [`Redirect`] instead of
//!   admitting them to agreement. Everything else — and every owned request
//!   — passes straight through.
//! * [`ShardRouter`] is the client's sans-IO routing tier. It caches a
//!   `ShardMap`, routes each operation's key to a group, verifies incoming
//!   redirects against the answering group's key material, and adopts the
//!   redirect's map when it is newer than the cached one.
//! * [`RoutedClient`] glues a [`ClientProtocol`] attempt to the router: when
//!   a verified redirect answers the *pending* request it cancels the
//!   attempt so the driving loop can re-route and resubmit.
//!
//! Trust model: a redirect is signed by a single replica, so a Byzantine
//! public-cloud replica can at worst bounce a client to the wrong group —
//! whose own guard redirects again with the authoritative map — or feed it a
//! fabricated higher-version map, a liveness nuisance but never a safety
//! violation (the owning group re-checks every key it admits). Hardened
//! deployments can restrict redirect trust to private-cloud replicas.

use crate::actions::{Action, Timer};
use crate::client::{ClientOutcome, ClientProtocol};
use crate::exec::ExecutedEntry;
use crate::metrics::ReplicaMetrics;
use crate::protocol::ReplicaProtocol;
use seemore_app::KvOp;
use seemore_crypto::{KeyStore, Signer};
use seemore_types::{
    ClientId, GroupId, Instant, Mode, NodeId, OpClass, ReplicaId, RequestId, ShardMap, Timestamp,
    View,
};
use seemore_wire::{Message, Redirect, SignedPayload};

/// The group a shard map routes `operation` to.
///
/// KV operations route by their key, so all ops touching one key land in one
/// group regardless of verb; opaque payloads (benchmark no-ops, baseline
/// traffic) route by the whole payload, which still spreads load and stays
/// deterministic.
pub fn route_operation(map: &ShardMap, operation: &[u8]) -> GroupId {
    map.group_of(KvOp::key_of(operation).unwrap_or(operation))
}

/// A replica-side wrapper that refuses requests for keys its group does not
/// own, answering with a signed [`Redirect`] before the request can enter
/// agreement.
///
/// Delegates every [`ReplicaProtocol`] method to the wrapped core; only
/// `on_message` is intercepted, and only for client traffic. A single-group
/// deployment never wraps its cores, so `with_shards(1)` histories stay
/// bit-identical to unsharded runs.
pub struct ShardGuard {
    inner: Box<dyn ReplicaProtocol>,
    group: GroupId,
    map: ShardMap,
    signer: Signer,
    redirects: u64,
}

impl ShardGuard {
    /// Wraps `inner` as a member of `group` under `map`, signing redirects
    /// with `signer` (the replica's own key).
    pub fn new(
        inner: Box<dyn ReplicaProtocol>,
        group: GroupId,
        map: ShardMap,
        signer: Signer,
    ) -> ShardGuard {
        ShardGuard {
            inner,
            group,
            map,
            signer,
            redirects: 0,
        }
    }

    /// Number of misrouted requests this guard has answered with a redirect.
    pub fn redirects(&self) -> u64 {
        self.redirects
    }

    /// The shard map this guard enforces.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Installs a newer shard map (a reconfiguration seam; ignored if `map`
    /// is not strictly newer than the installed one).
    pub fn install_map(&mut self, map: ShardMap) {
        if self.map.is_older_than(&map) {
            self.map = map;
        }
    }

    /// If the group does not own `operation`'s key, the redirect answering
    /// the request identified by `(client, timestamp)`.
    fn refusal(
        &mut self,
        client: ClientId,
        timestamp: Timestamp,
        operation: &[u8],
    ) -> Option<Action> {
        let target = route_operation(&self.map, operation);
        if target == self.group {
            return None;
        }
        self.redirects += 1;
        let redirect = Redirect::new(
            RequestId::new(client, timestamp),
            self.inner.id(),
            self.group,
            target,
            self.map.clone(),
            &self.signer,
        );
        Some(Action::Send {
            to: NodeId::Client(client),
            message: Message::Redirect(redirect),
        })
    }
}

impl ReplicaProtocol for ShardGuard {
    fn id(&self) -> ReplicaId {
        self.inner.id()
    }

    fn on_start(&mut self, now: Instant) -> Vec<Action> {
        self.inner.on_start(now)
    }

    fn on_message(&mut self, from: NodeId, message: Message, now: Instant) -> Vec<Action> {
        // A crashed replica answers nothing — not even refusals.
        let refusal = if self.inner.is_crashed() {
            None
        } else {
            match &message {
                Message::Request(m) => self.refusal(m.client, m.timestamp, &m.operation),
                Message::ReadRequest(m) => self.refusal(m.client, m.nonce, &m.operation),
                _ => None,
            }
        };
        match refusal {
            Some(action) => vec![action],
            None => self.inner.on_message(from, message, now),
        }
    }

    fn on_timer(&mut self, timer: Timer, now: Instant) -> Vec<Action> {
        self.inner.on_timer(timer, now)
    }

    fn view(&self) -> View {
        self.inner.view()
    }

    fn mode(&self) -> Mode {
        self.inner.mode()
    }

    fn executed(&self) -> &[ExecutedEntry] {
        self.inner.executed()
    }

    fn metrics(&self) -> &ReplicaMetrics {
        self.inner.metrics()
    }

    fn request_mode_switch(&mut self, mode: Mode, now: Instant) -> Vec<Action> {
        self.inner.request_mode_switch(mode, now)
    }

    fn is_crashed(&self) -> bool {
        self.inner.is_crashed()
    }

    fn crash(&mut self) {
        self.inner.crash()
    }
}

/// The client's sans-IO routing tier: a cached [`ShardMap`] plus the key
/// material needed to authenticate redirects from every group.
#[derive(Debug)]
pub struct ShardRouter {
    map: ShardMap,
    keystores: Vec<KeyStore>,
    redirects_followed: u64,
    redirects_rejected: u64,
    maps_adopted: u64,
}

impl ShardRouter {
    /// A router seeded with `map`, trusting `keystores[g]` to verify
    /// redirects from group `g`.
    pub fn new(map: ShardMap, keystores: Vec<KeyStore>) -> ShardRouter {
        ShardRouter {
            map,
            keystores,
            redirects_followed: 0,
            redirects_rejected: 0,
            maps_adopted: 0,
        }
    }

    /// The currently cached shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Routes an operation to the group owning its key under the cached map.
    pub fn route(&self, operation: &[u8]) -> GroupId {
        route_operation(&self.map, operation)
    }

    /// Verified redirects this router has acted on.
    pub fn redirects_followed(&self) -> u64 {
        self.redirects_followed
    }

    /// Redirects dropped for bad signatures or inconsistent provenance.
    pub fn redirects_rejected(&self) -> u64 {
        self.redirects_rejected
    }

    /// Times a redirect's map superseded the cached one.
    pub fn maps_adopted(&self) -> u64 {
        self.maps_adopted
    }

    /// Processes a redirect received from a replica of `from_group`.
    ///
    /// Returns `true` when the redirect is authentic: signed by the claimed
    /// replica of `from_group` over exactly the fields received. An authentic
    /// redirect's map replaces the cached one if strictly newer; the caller
    /// should then re-route from the *cached map* rather than trusting the
    /// redirect's `target` field directly, so a stale (but authentic)
    /// redirect can never steer routing backwards.
    pub fn observe_redirect(&mut self, from_group: GroupId, redirect: &Redirect) -> bool {
        if redirect.group != from_group {
            self.redirects_rejected += 1;
            return false;
        }
        let verified = self
            .keystores
            .get(from_group.as_usize())
            .map(|ks| {
                ks.verify(
                    NodeId::Replica(redirect.replica),
                    &redirect.signing_bytes(),
                    &redirect.signature,
                )
            })
            .unwrap_or(false);
        if !verified {
            self.redirects_rejected += 1;
            return false;
        }
        self.redirects_followed += 1;
        if self.map.is_older_than(&redirect.map) {
            self.map = redirect.map.clone();
            self.maps_adopted += 1;
        }
        true
    }
}

/// A [`ClientProtocol`] wrapper binding one routed attempt to a
/// [`ShardRouter`].
///
/// The driving loop creates one `RoutedClient` per attempt (an attempt is
/// one submission to one group). When a verified redirect arrives for the
/// pending request, the wrapper cancels the attempt and records the event;
/// the driver then consults the router — whose map the redirect may have
/// refreshed — and resubmits to the owning group.
pub struct RoutedClient<'r, C> {
    inner: C,
    group: GroupId,
    router: &'r mut ShardRouter,
    redirected: bool,
}

impl<'r, C: ClientProtocol> RoutedClient<'r, C> {
    /// Binds an attempt on `group` to `router`.
    pub fn new(inner: C, group: GroupId, router: &'r mut ShardRouter) -> RoutedClient<'r, C> {
        RoutedClient {
            inner,
            group,
            router,
            redirected: false,
        }
    }

    /// Whether a verified redirect cancelled this attempt.
    pub fn redirected(&self) -> bool {
        self.redirected
    }

    /// Unwraps the attempt, returning the inner client.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<'r, C: ClientProtocol> ClientProtocol for RoutedClient<'r, C> {
    fn id(&self) -> ClientId {
        self.inner.id()
    }

    fn submit(&mut self, operation: Vec<u8>, now: Instant) -> Vec<Action> {
        self.inner.submit(operation, now)
    }

    fn submit_op(&mut self, operation: Vec<u8>, class: OpClass, now: Instant) -> Vec<Action> {
        self.inner.submit_op(operation, class, now)
    }

    fn on_message(&mut self, from: NodeId, message: Message, now: Instant) -> Vec<Action> {
        if let Message::Redirect(redirect) = &message {
            // Only a verified redirect answering the *pending* request may
            // cancel the attempt; stragglers from earlier attempts (every
            // replica of a group answers a retransmit broadcast) still
            // refresh the map but cannot cancel unrelated work.
            let verified = self.router.observe_redirect(self.group, redirect);
            if verified && self.inner.pending_request() == Some(redirect.request) {
                self.inner.cancel_pending();
                self.redirected = true;
            }
            return Vec::new();
        }
        self.inner.on_message(from, message, now)
    }

    fn on_retransmit_timer(&mut self, now: Instant) -> Vec<Action> {
        self.inner.on_retransmit_timer(now)
    }

    fn completed(&self) -> &[ClientOutcome] {
        self.inner.completed()
    }

    fn take_completed(&mut self) -> Vec<ClientOutcome> {
        self.inner.take_completed()
    }

    fn has_pending(&self) -> bool {
        self.inner.has_pending()
    }

    fn retransmissions(&self) -> u64 {
        self.inner.retransmissions()
    }

    fn cancel_pending(&mut self) -> bool {
        self.inner.cancel_pending()
    }

    fn pending_request(&self) -> Option<RequestId> {
        self.inner.pending_request()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientCore;
    use crate::config::ProtocolConfig;
    use crate::replica::SeeMoReReplica;
    use seemore_app::KvStore;
    use seemore_types::{ClusterConfig, Duration};

    fn keystore_for(seed: u64) -> KeyStore {
        KeyStore::generate(seed, cluster().total_size(), 2)
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig::minimal(1, 1).unwrap()
    }

    fn guarded(group: GroupId, map: ShardMap, ks: &KeyStore) -> ShardGuard {
        let core = SeeMoReReplica::new(
            ReplicaId(0),
            cluster(),
            ProtocolConfig::default(),
            ks.clone(),
            Mode::Lion,
            Box::new(KvStore::new()),
        );
        let signer = ks.signer_for(NodeId::Replica(ReplicaId(0))).unwrap();
        ShardGuard::new(Box::new(core), group, map, signer)
    }

    fn put(key: &[u8]) -> Vec<u8> {
        KvOp::Put {
            key: key.to_vec(),
            value: b"v".to_vec(),
        }
        .encode()
    }

    fn request_for(ks: &KeyStore, op: Vec<u8>) -> seemore_wire::ClientRequest {
        let signer = ks.signer_for(NodeId::Client(ClientId(0))).unwrap();
        seemore_wire::ClientRequest::new(ClientId(0), Timestamp(1), op, &signer)
    }

    /// A key owned by `group` and one owned by some other group, under `map`.
    fn owned_and_foreign(map: &ShardMap, group: GroupId) -> (Vec<u8>, Vec<u8>) {
        let mut owned = None;
        let mut foreign = None;
        for i in 0..1000u32 {
            let key = format!("key-{i}").into_bytes();
            if map.group_of(&key) == group {
                owned.get_or_insert(key);
            } else {
                foreign.get_or_insert(key);
            }
            if owned.is_some() && foreign.is_some() {
                break;
            }
        }
        (owned.unwrap(), foreign.unwrap())
    }

    #[test]
    fn the_guard_redirects_misrouted_requests_and_admits_owned_ones() {
        let ks = keystore_for(7);
        let map = ShardMap::uniform(4);
        let group = GroupId(1);
        let mut guard = guarded(group, map.clone(), &ks);
        let (owned, foreign) = owned_and_foreign(&map, group);

        let actions = guard.on_message(
            NodeId::Client(ClientId(0)),
            Message::Request(request_for(&ks, put(&foreign))),
            Instant::ZERO,
        );
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Send {
                to: NodeId::Client(ClientId(0)),
                message: Message::Redirect(redirect),
            } => {
                assert_eq!(redirect.group, group);
                assert_eq!(redirect.target, map.group_of(&foreign));
                assert_eq!(redirect.map, map);
                assert!(ks.verify(
                    NodeId::Replica(ReplicaId(0)),
                    &redirect.signing_bytes(),
                    &redirect.signature
                ));
            }
            other => panic!("expected a redirect to the client, got {other:?}"),
        }
        assert_eq!(guard.redirects(), 1);
        // Nothing entered agreement for the refused request.
        assert_eq!(guard.metrics().committed, 0);

        // An owned key passes through to the core (the Lion primary
        // broadcasts a Prepare, so the core produces actions).
        let actions = guard.on_message(
            NodeId::Client(ClientId(0)),
            Message::Request(request_for(&ks, put(&owned))),
            Instant::ZERO,
        );
        assert!(!actions.is_empty());
        assert_eq!(guard.redirects(), 1);
    }

    #[test]
    fn opaque_operations_route_by_whole_payload() {
        let map = ShardMap::uniform(4);
        let payload = b"not a kv op".to_vec();
        assert_eq!(route_operation(&map, &payload), map.group_of(&payload));
        // KV ops route by key, not by encoding.
        let key = b"shared-key";
        assert_eq!(
            route_operation(&map, &put(key)),
            route_operation(&map, &KvOp::Get { key: key.to_vec() }.encode())
        );
    }

    #[test]
    fn the_router_verifies_redirects_and_adopts_newer_maps() {
        let ks0 = keystore_for(11);
        let ks1 = keystore_for(12);
        let stale = ShardMap::uniform(1);
        let fresh = ShardMap {
            version: 2,
            partitioning: seemore_types::Partitioning::Hash { groups: 2 },
        };
        let mut router = ShardRouter::new(stale, vec![ks0.clone(), ks1.clone()]);

        let signer = ks1.signer_for(NodeId::Replica(ReplicaId(2))).unwrap();
        let redirect = Redirect::new(
            RequestId::new(ClientId(0), Timestamp(3)),
            ReplicaId(2),
            GroupId(1),
            GroupId(0),
            fresh.clone(),
            &signer,
        );
        assert!(router.observe_redirect(GroupId(1), &redirect));
        assert_eq!(router.map(), &fresh);
        assert_eq!(router.maps_adopted(), 1);
        assert_eq!(router.redirects_followed(), 1);

        // Replaying the same redirect verifies but adopts nothing new.
        assert!(router.observe_redirect(GroupId(1), &redirect));
        assert_eq!(router.maps_adopted(), 1);
    }

    #[test]
    fn the_router_rejects_tampered_and_misattributed_redirects() {
        let ks0 = keystore_for(21);
        let ks1 = keystore_for(22);
        let mut router = ShardRouter::new(ShardMap::uniform(2), vec![ks0.clone(), ks1.clone()]);
        let signer = ks1.signer_for(NodeId::Replica(ReplicaId(1))).unwrap();
        let authentic = Redirect::new(
            RequestId::new(ClientId(1), Timestamp(5)),
            ReplicaId(1),
            GroupId(1),
            GroupId(0),
            ShardMap::uniform(2),
            &signer,
        );

        // Tampered target.
        let mut tampered = authentic.clone();
        tampered.target = GroupId(1);
        assert!(!router.observe_redirect(GroupId(1), &tampered));

        // Claimed provenance disagrees with the receiving port's group.
        assert!(!router.observe_redirect(GroupId(0), &authentic));

        // Group id out of range for the keystore set.
        let mut foreign = authentic.clone();
        foreign.group = GroupId(9);
        assert!(!router.observe_redirect(GroupId(9), &foreign));

        assert_eq!(router.redirects_rejected(), 3);
        assert_eq!(router.redirects_followed(), 0);
        assert_eq!(router.map(), &ShardMap::uniform(2));

        // The authentic one still goes through afterwards.
        assert!(router.observe_redirect(GroupId(1), &authentic));
    }

    #[test]
    fn a_routed_client_cancels_only_its_pending_request() {
        let ks = keystore_for(31);
        let mut router = ShardRouter::new(ShardMap::uniform(2), vec![ks.clone(), ks.clone()]);
        let client = ClientCore::new(
            ClientId(0),
            cluster(),
            ks.clone(),
            Mode::Lion,
            Duration::from_millis(50),
        );
        let mut routed = RoutedClient::new(client, GroupId(0), &mut router);
        let _ = routed.submit_op(put(b"k"), OpClass::Write, Instant::ZERO);
        let pending = routed.pending_request().unwrap();

        let signer = ks.signer_for(NodeId::Replica(ReplicaId(1))).unwrap();
        // A stale redirect for some *other* request refreshes nothing and
        // must not cancel the live attempt.
        let stale = Redirect::new(
            RequestId::new(ClientId(0), Timestamp(999)),
            ReplicaId(1),
            GroupId(0),
            GroupId(1),
            ShardMap::uniform(2),
            &signer,
        );
        routed.on_message(
            NodeId::Replica(ReplicaId(1)),
            Message::Redirect(stale),
            Instant::ZERO,
        );
        assert!(!routed.redirected());
        assert_eq!(routed.pending_request(), Some(pending));

        // The redirect answering the pending request cancels it.
        let live = Redirect::new(
            pending,
            ReplicaId(1),
            GroupId(0),
            GroupId(1),
            ShardMap::uniform(2),
            &signer,
        );
        routed.on_message(
            NodeId::Replica(ReplicaId(1)),
            Message::Redirect(live),
            Instant::ZERO,
        );
        assert!(routed.redirected());
        assert_eq!(routed.pending_request(), None);
    }
}
