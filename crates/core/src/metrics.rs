//! Per-replica protocol counters.
//!
//! The evaluation cares about the number of messages each protocol exchanges
//! per committed request (Table 1) and about control-plane events such as
//! view changes (Figure 4). Every core maintains a [`ReplicaMetrics`] that
//! the runtime aggregates.

use seemore_wire::MessageKind;
use std::collections::BTreeMap;

/// Counters maintained by every replica core.
#[derive(Debug, Clone, Default)]
pub struct ReplicaMetrics {
    sent: BTreeMap<MessageKind, u64>,
    received: BTreeMap<MessageKind, u64>,
    sent_bytes: u64,
    /// Requests committed by this replica.
    pub committed: u64,
    /// Requests executed by this replica.
    pub executed: u64,
    /// View changes this replica participated in (sent a `VIEW-CHANGE`).
    pub view_changes_started: u64,
    /// `NEW-VIEW`s this replica installed.
    pub view_changes_completed: u64,
    /// Mode switches this replica completed.
    pub mode_switches: u64,
    /// Checkpoints that became stable at this replica.
    pub stable_checkpoints: u64,
    /// Messages discarded as invalid (bad signature, wrong view, ...).
    pub rejected_messages: u64,
}

impl ReplicaMetrics {
    /// Records an outgoing message of `kind` with the given wire size.
    pub fn record_sent(&mut self, kind: MessageKind, wire_size: usize) {
        *self.sent.entry(kind).or_default() += 1;
        self.sent_bytes += wire_size as u64;
    }

    /// Records an incoming message of `kind`.
    pub fn record_received(&mut self, kind: MessageKind) {
        *self.received.entry(kind).or_default() += 1;
    }

    /// Number of messages of `kind` sent so far.
    pub fn sent(&self, kind: MessageKind) -> u64 {
        self.sent.get(&kind).copied().unwrap_or(0)
    }

    /// Number of messages of `kind` received so far.
    pub fn received(&self, kind: MessageKind) -> u64 {
        self.received.get(&kind).copied().unwrap_or(0)
    }

    /// Total messages sent across all kinds.
    pub fn total_sent(&self) -> u64 {
        self.sent.values().sum()
    }

    /// Total messages received across all kinds.
    pub fn total_received(&self) -> u64 {
        self.received.values().sum()
    }

    /// Total bytes sent (according to the wire-size model).
    pub fn total_sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// Messages sent on the agreement data path only (excluding client
    /// traffic and control-plane messages), matching the "number of message
    /// exchanges" column of Table 1.
    pub fn agreement_messages_sent(&self) -> u64 {
        self.sent
            .iter()
            .filter(|(kind, _)| kind.is_agreement())
            .map(|(_, count)| *count)
            .sum()
    }

    /// Folds another replica's counters into this one (used by the runtime
    /// to aggregate cluster-wide totals).
    pub fn merge(&mut self, other: &ReplicaMetrics) {
        for (kind, count) in &other.sent {
            *self.sent.entry(*kind).or_default() += count;
        }
        for (kind, count) in &other.received {
            *self.received.entry(*kind).or_default() += count;
        }
        self.sent_bytes += other.sent_bytes;
        self.committed += other.committed;
        self.executed += other.executed;
        self.view_changes_started += other.view_changes_started;
        self.view_changes_completed += other.view_changes_completed;
        self.mode_switches += other.mode_switches;
        self.stable_checkpoints += other.stable_checkpoints;
        self.rejected_messages += other.rejected_messages;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = ReplicaMetrics::default();
        m.record_sent(MessageKind::Prepare, 100);
        m.record_sent(MessageKind::Prepare, 100);
        m.record_sent(MessageKind::Reply, 32);
        m.record_received(MessageKind::Accept);
        assert_eq!(m.sent(MessageKind::Prepare), 2);
        assert_eq!(m.sent(MessageKind::Reply), 1);
        assert_eq!(m.sent(MessageKind::Commit), 0);
        assert_eq!(m.received(MessageKind::Accept), 1);
        assert_eq!(m.total_sent(), 3);
        assert_eq!(m.total_received(), 1);
        assert_eq!(m.total_sent_bytes(), 232);
    }

    #[test]
    fn agreement_messages_exclude_client_and_control_traffic() {
        let mut m = ReplicaMetrics::default();
        m.record_sent(MessageKind::Prepare, 10);
        m.record_sent(MessageKind::Accept, 10);
        m.record_sent(MessageKind::Reply, 10);
        m.record_sent(MessageKind::ViewChange, 10);
        m.record_sent(MessageKind::Checkpoint, 10);
        assert_eq!(m.agreement_messages_sent(), 2);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = ReplicaMetrics::default();
        a.record_sent(MessageKind::Commit, 50);
        a.committed = 3;
        a.view_changes_completed = 1;

        let mut b = ReplicaMetrics::default();
        b.record_sent(MessageKind::Commit, 50);
        b.record_received(MessageKind::Prepare);
        b.committed = 2;
        b.rejected_messages = 4;

        a.merge(&b);
        assert_eq!(a.sent(MessageKind::Commit), 2);
        assert_eq!(a.received(MessageKind::Prepare), 1);
        assert_eq!(a.committed, 5);
        assert_eq!(a.rejected_messages, 4);
        assert_eq!(a.view_changes_completed, 1);
        assert_eq!(a.total_sent_bytes(), 100);
    }
}
