//! Per-replica protocol counters.
//!
//! The evaluation cares about the number of messages each protocol exchanges
//! per committed request (Table 1) and about control-plane events such as
//! view changes (Figure 4). Every core maintains a [`ReplicaMetrics`] that
//! the runtime aggregates.

use crate::batching::FlushCause;
use seemore_wire::MessageKind;
use std::collections::BTreeMap;

/// Chosen-size telemetry of the batching controller: what batch sizes the
/// policy actually cut and why, maintained by the replica that cut them and
/// aggregated into `RunReport` by the runtime.
#[derive(Debug, Clone, Default)]
pub struct BatchTelemetry {
    /// Histogram of cut batch sizes (`size → count`).
    sizes: BTreeMap<usize, u64>,
    /// Batches cut by the size trigger (buffer reached the effective cap).
    pub cut_by_size: u64,
    /// Batches cut by the flush timer (partial buffer, latency trigger).
    pub cut_by_timer: u64,
    /// Batches forced out (view-change installation).
    pub cut_forced: u64,
    /// Stale flush-timer expirations that were correctly ignored (a timer
    /// generation that had already been invalidated by a cut).
    pub stale_timer_fires: u64,
}

impl BatchTelemetry {
    /// Records one cut batch of `len` requests.
    pub fn record_cut(&mut self, len: usize, cause: FlushCause) {
        *self.sizes.entry(len).or_default() += 1;
        match cause {
            FlushCause::Size => self.cut_by_size += 1,
            FlushCause::Timer => self.cut_by_timer += 1,
            FlushCause::Forced => self.cut_forced += 1,
        }
    }

    /// Total batches cut.
    pub fn batches(&self) -> u64 {
        self.sizes.values().sum()
    }

    /// Mean cut batch size (0 when nothing was cut).
    pub fn mean_size(&self) -> f64 {
        let total = self.batches();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .sizes
            .iter()
            .map(|(size, count)| *size as u64 * count)
            .sum();
        weighted as f64 / total as f64
    }

    /// Median cut batch size (0 when nothing was cut).
    pub fn p50_size(&self) -> usize {
        let total = self.batches();
        if total == 0 {
            return 0;
        }
        let midpoint = total.div_ceil(2);
        let mut seen = 0u64;
        for (size, count) in &self.sizes {
            seen += count;
            if seen >= midpoint {
                return *size;
            }
        }
        0
    }

    /// Largest batch ever cut.
    pub fn max_size(&self) -> usize {
        self.sizes.keys().next_back().copied().unwrap_or(0)
    }

    /// Folds another replica's batch telemetry into this one.
    pub fn merge(&mut self, other: &BatchTelemetry) {
        for (size, count) in &other.sizes {
            *self.sizes.entry(*size).or_default() += count;
        }
        self.cut_by_size += other.cut_by_size;
        self.cut_by_timer += other.cut_by_timer;
        self.cut_forced += other.cut_forced;
        self.stale_timer_fires += other.stale_timer_fires;
    }
}

/// Counters maintained by every replica core.
#[derive(Debug, Clone, Default)]
pub struct ReplicaMetrics {
    sent: BTreeMap<MessageKind, u64>,
    received: BTreeMap<MessageKind, u64>,
    sent_bytes: u64,
    /// Requests committed by this replica.
    pub committed: u64,
    /// Requests executed by this replica.
    pub executed: u64,
    /// View changes this replica participated in (sent a `VIEW-CHANGE`).
    pub view_changes_started: u64,
    /// `NEW-VIEW`s this replica installed.
    pub view_changes_completed: u64,
    /// Mode switches this replica completed.
    pub mode_switches: u64,
    /// Checkpoints that became stable at this replica.
    pub stable_checkpoints: u64,
    /// Messages discarded as invalid (bad signature, wrong view, ...).
    pub rejected_messages: u64,
    /// Agreement votes whose digest disagreed with the proposal this
    /// replica accepted for the same slot and view — a per-peer
    /// misbehaviour (or lag) signal surfaced to the health rollup.
    pub vote_mismatches: u64,
    /// Read-only requests this replica served from executed state without
    /// ordering (the read fast path).
    pub reads_served: u64,
    /// Read-only requests this replica refused (not the lease-holding
    /// primary, lease expired, view change in progress, or the operation was
    /// not provably read-only), redirecting the client to the ordered path.
    pub reads_refused: u64,
    /// What the batching controller actually did (sizes and flush causes).
    pub batch: BatchTelemetry,
    /// Largest number of agreement instances resident in the message log at
    /// any point — the witness that checkpoint-driven truncation keeps the
    /// in-memory log bounded (merge takes the maximum, not the sum).
    pub peak_log_instances: u64,
}

impl ReplicaMetrics {
    /// Records an outgoing message of `kind` with the given wire size.
    pub fn record_sent(&mut self, kind: MessageKind, wire_size: usize) {
        *self.sent.entry(kind).or_default() += 1;
        self.sent_bytes += wire_size as u64;
    }

    /// Records an incoming message of `kind`.
    pub fn record_received(&mut self, kind: MessageKind) {
        *self.received.entry(kind).or_default() += 1;
    }

    /// Notes the current resident size of the message log, keeping the peak.
    pub fn note_log_size(&mut self, len: usize) {
        self.peak_log_instances = self.peak_log_instances.max(len as u64);
    }

    /// Number of messages of `kind` sent so far.
    pub fn sent(&self, kind: MessageKind) -> u64 {
        self.sent.get(&kind).copied().unwrap_or(0)
    }

    /// Number of messages of `kind` received so far.
    pub fn received(&self, kind: MessageKind) -> u64 {
        self.received.get(&kind).copied().unwrap_or(0)
    }

    /// Total messages sent across all kinds.
    pub fn total_sent(&self) -> u64 {
        self.sent.values().sum()
    }

    /// Total messages received across all kinds.
    pub fn total_received(&self) -> u64 {
        self.received.values().sum()
    }

    /// Total bytes sent (according to the wire-size model).
    pub fn total_sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// Messages sent on the agreement data path only (excluding client
    /// traffic and control-plane messages), matching the "number of message
    /// exchanges" column of Table 1.
    pub fn agreement_messages_sent(&self) -> u64 {
        self.sent
            .iter()
            .filter(|(kind, _)| kind.is_agreement())
            .map(|(_, count)| *count)
            .sum()
    }

    /// Folds another replica's counters into this one (used by the runtime
    /// to aggregate cluster-wide totals).
    pub fn merge(&mut self, other: &ReplicaMetrics) {
        for (kind, count) in &other.sent {
            *self.sent.entry(*kind).or_default() += count;
        }
        for (kind, count) in &other.received {
            *self.received.entry(*kind).or_default() += count;
        }
        self.sent_bytes += other.sent_bytes;
        self.committed += other.committed;
        self.executed += other.executed;
        self.view_changes_started += other.view_changes_started;
        self.view_changes_completed += other.view_changes_completed;
        self.mode_switches += other.mode_switches;
        self.stable_checkpoints += other.stable_checkpoints;
        self.rejected_messages += other.rejected_messages;
        self.vote_mismatches += other.vote_mismatches;
        self.reads_served += other.reads_served;
        self.reads_refused += other.reads_refused;
        self.batch.merge(&other.batch);
        self.peak_log_instances = self.peak_log_instances.max(other.peak_log_instances);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = ReplicaMetrics::default();
        m.record_sent(MessageKind::Prepare, 100);
        m.record_sent(MessageKind::Prepare, 100);
        m.record_sent(MessageKind::Reply, 32);
        m.record_received(MessageKind::Accept);
        assert_eq!(m.sent(MessageKind::Prepare), 2);
        assert_eq!(m.sent(MessageKind::Reply), 1);
        assert_eq!(m.sent(MessageKind::Commit), 0);
        assert_eq!(m.received(MessageKind::Accept), 1);
        assert_eq!(m.total_sent(), 3);
        assert_eq!(m.total_received(), 1);
        assert_eq!(m.total_sent_bytes(), 232);
    }

    #[test]
    fn agreement_messages_exclude_client_and_control_traffic() {
        let mut m = ReplicaMetrics::default();
        m.record_sent(MessageKind::Prepare, 10);
        m.record_sent(MessageKind::Accept, 10);
        m.record_sent(MessageKind::Reply, 10);
        m.record_sent(MessageKind::ViewChange, 10);
        m.record_sent(MessageKind::Checkpoint, 10);
        assert_eq!(m.agreement_messages_sent(), 2);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = ReplicaMetrics::default();
        a.record_sent(MessageKind::Commit, 50);
        a.committed = 3;
        a.view_changes_completed = 1;

        let mut b = ReplicaMetrics::default();
        b.record_sent(MessageKind::Commit, 50);
        b.record_received(MessageKind::Prepare);
        b.committed = 2;
        b.rejected_messages = 4;

        a.merge(&b);
        assert_eq!(a.sent(MessageKind::Commit), 2);
        assert_eq!(a.received(MessageKind::Prepare), 1);
        assert_eq!(a.committed, 5);
        assert_eq!(a.rejected_messages, 4);
        assert_eq!(a.view_changes_completed, 1);
        assert_eq!(a.total_sent_bytes(), 100);
    }

    #[test]
    fn batch_telemetry_statistics() {
        let mut t = BatchTelemetry::default();
        assert_eq!(t.batches(), 0);
        assert_eq!(t.mean_size(), 0.0);
        assert_eq!(t.p50_size(), 0);
        assert_eq!(t.max_size(), 0);

        t.record_cut(1, FlushCause::Size);
        t.record_cut(2, FlushCause::Timer);
        t.record_cut(2, FlushCause::Timer);
        t.record_cut(8, FlushCause::Forced);
        assert_eq!(t.batches(), 4);
        assert_eq!(t.cut_by_size, 1);
        assert_eq!(t.cut_by_timer, 2);
        assert_eq!(t.cut_forced, 1);
        assert!((t.mean_size() - 13.0 / 4.0).abs() < 1e-12);
        assert_eq!(t.p50_size(), 2);
        assert_eq!(t.max_size(), 8);
    }

    #[test]
    fn batch_telemetry_single_cut_percentiles_collapse() {
        let mut t = BatchTelemetry::default();
        t.record_cut(5, FlushCause::Timer);
        assert_eq!(t.batches(), 1);
        assert_eq!(t.p50_size(), 5);
        assert_eq!(t.max_size(), 5);
        assert!((t.mean_size() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn batch_telemetry_merge_into_empty_is_identity() {
        let mut empty = BatchTelemetry::default();
        let mut other = BatchTelemetry::default();
        other.record_cut(3, FlushCause::Size);
        empty.merge(&other);
        assert_eq!(empty.batches(), 1);
        assert_eq!(empty.p50_size(), 3);
        // Merging an empty telemetry in changes nothing.
        let before = empty.clone();
        empty.merge(&BatchTelemetry::default());
        assert_eq!(empty.batches(), before.batches());
        assert_eq!(empty.p50_size(), before.p50_size());
        assert_eq!(empty.max_size(), before.max_size());
    }

    #[test]
    fn batch_telemetry_merges_through_replica_metrics() {
        let mut a = ReplicaMetrics::default();
        a.batch.record_cut(4, FlushCause::Size);
        a.batch.stale_timer_fires = 2;
        let mut b = ReplicaMetrics::default();
        b.batch.record_cut(4, FlushCause::Size);
        b.batch.record_cut(1, FlushCause::Timer);
        a.merge(&b);
        assert_eq!(a.batch.batches(), 3);
        assert_eq!(a.batch.cut_by_size, 2);
        assert_eq!(a.batch.cut_by_timer, 1);
        assert_eq!(a.batch.stale_timer_fires, 2);
        assert_eq!(a.batch.max_size(), 4);
        assert_eq!(a.batch.p50_size(), 4);
    }
}
