//! Checkpointing, checkpoint certificates and garbage-collection triggers.
//!
//! Checkpoints serve two purposes in the paper (Section 5.1): they bring slow
//! replicas up to date (state transfer) and they bound the message log
//! (garbage collection). Stability rules differ by mode:
//!
//! * **Lion / Dog** — the trusted primary signs a `CHECKPOINT` and a single
//!   such message *is* the certificate.
//! * **Peacock / baselines** — the primary is untrusted, so a checkpoint
//!   becomes stable only once a quorum of matching `CHECKPOINT` messages from
//!   distinct replicas has been collected (PBFT-style).

use seemore_crypto::Digest;
use seemore_types::{ReplicaId, SeqNum};
use seemore_wire::Checkpoint;
use std::collections::BTreeMap;

/// How a checkpoint becomes stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StabilityRule {
    /// A single checkpoint message signed by a trusted replica suffices
    /// (Lion and Dog modes).
    TrustedSigner,
    /// `quorum` matching checkpoint messages from distinct replicas are
    /// required (Peacock mode and the Byzantine baselines).
    Quorum(
        /// Number of matching messages required.
        usize,
    ),
}

/// Tracks pending and stable checkpoints for one replica.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    period: u64,
    rule: StabilityRule,
    stable_seq: SeqNum,
    stable_digest: Digest,
    stable_proof: Vec<Checkpoint>,
    /// Votes per (seq, digest) awaiting stability.
    pending: BTreeMap<SeqNum, BTreeMap<ReplicaId, Checkpoint>>,
}

impl CheckpointManager {
    /// Creates a manager that checkpoints every `period` executed requests.
    pub fn new(period: u64, rule: StabilityRule) -> Self {
        CheckpointManager {
            period: period.max(1),
            rule,
            stable_seq: SeqNum(0),
            stable_digest: Digest::ZERO,
            stable_proof: Vec::new(),
            pending: BTreeMap::new(),
        }
    }

    /// The configured checkpoint period.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The stability rule in force.
    pub fn rule(&self) -> StabilityRule {
        self.rule
    }

    /// Changes the stability rule (used when the protocol switches modes).
    pub fn set_rule(&mut self, rule: StabilityRule) {
        self.rule = rule;
    }

    /// Whether executing `seq` should trigger a checkpoint.
    pub fn should_checkpoint(&self, seq: SeqNum) -> bool {
        seq.0 > 0 && seq.0.is_multiple_of(self.period) && seq > self.stable_seq
    }

    /// Sequence number of the last stable checkpoint.
    pub fn stable_seq(&self) -> SeqNum {
        self.stable_seq
    }

    /// State digest of the last stable checkpoint.
    pub fn stable_digest(&self) -> Digest {
        self.stable_digest
    }

    /// The certificate (set of signed checkpoint messages) proving the last
    /// stable checkpoint.
    pub fn stable_proof(&self) -> &[Checkpoint] {
        &self.stable_proof
    }

    /// Number of stable checkpoints recorded so far (excluding genesis).
    pub fn is_genesis(&self) -> bool {
        self.stable_seq == SeqNum(0)
    }

    /// Records a checkpoint message (our own or a peer's). `trusted_sender`
    /// reports whether the sender is in the private cloud; under
    /// [`StabilityRule::TrustedSigner`] only trusted senders can stabilize a
    /// checkpoint.
    ///
    /// Returns `true` if this message made a new checkpoint stable.
    pub fn record(&mut self, checkpoint: Checkpoint, trusted_sender: bool) -> bool {
        if checkpoint.seq <= self.stable_seq {
            return false;
        }
        let votes = self.pending.entry(checkpoint.seq).or_default();
        votes.insert(checkpoint.replica, checkpoint.clone());

        let stable = match self.rule {
            StabilityRule::TrustedSigner => trusted_sender,
            StabilityRule::Quorum(quorum) => {
                let matching = votes
                    .values()
                    .filter(|c| c.state_digest == checkpoint.state_digest)
                    .count();
                matching >= quorum
            }
        };
        if stable {
            let proof: Vec<Checkpoint> = votes
                .values()
                .filter(|c| c.state_digest == checkpoint.state_digest)
                .cloned()
                .collect();
            self.make_stable(checkpoint.seq, checkpoint.state_digest, proof);
        }
        stable
    }

    /// Installs a stable checkpoint directly (used when adopting a
    /// checkpoint certificate carried by a `VIEW-CHANGE` / `NEW-VIEW` or by
    /// state transfer).
    pub fn make_stable(&mut self, seq: SeqNum, digest: Digest, proof: Vec<Checkpoint>) -> bool {
        if seq <= self.stable_seq {
            return false;
        }
        self.stable_seq = seq;
        self.stable_digest = digest;
        self.stable_proof = proof;
        // Drop pending votes at or below the new stable point.
        self.pending = self.pending.split_off(&SeqNum(seq.0 + 1));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seemore_crypto::Signature;

    fn cp(seq: u64, replica: u32, digest: &str) -> Checkpoint {
        Checkpoint {
            seq: SeqNum(seq),
            state_digest: Digest::of_bytes(digest.as_bytes()),
            replica: ReplicaId(replica),
            signature: Signature::INVALID,
        }
    }

    #[test]
    fn should_checkpoint_respects_period() {
        let mgr = CheckpointManager::new(10, StabilityRule::TrustedSigner);
        assert!(!mgr.should_checkpoint(SeqNum(0)));
        assert!(!mgr.should_checkpoint(SeqNum(5)));
        assert!(mgr.should_checkpoint(SeqNum(10)));
        assert!(mgr.should_checkpoint(SeqNum(20)));
        assert!(!mgr.should_checkpoint(SeqNum(21)));
        assert_eq!(mgr.period(), 10);
        // Period zero is clamped to one.
        let every = CheckpointManager::new(0, StabilityRule::TrustedSigner);
        assert!(every.should_checkpoint(SeqNum(1)));
    }

    #[test]
    fn trusted_signer_rule_stabilizes_immediately() {
        let mut mgr = CheckpointManager::new(10, StabilityRule::TrustedSigner);
        assert!(mgr.is_genesis());
        // An untrusted sender cannot stabilize.
        assert!(!mgr.record(cp(10, 3, "state"), false));
        assert_eq!(mgr.stable_seq(), SeqNum(0));
        // The trusted primary can.
        assert!(mgr.record(cp(10, 0, "state"), true));
        assert_eq!(mgr.stable_seq(), SeqNum(10));
        assert_eq!(mgr.stable_digest(), Digest::of_bytes(b"state"));
        assert!(!mgr.is_genesis());
        assert!(!mgr.stable_proof().is_empty());
    }

    #[test]
    fn quorum_rule_requires_matching_votes() {
        let mut mgr = CheckpointManager::new(10, StabilityRule::Quorum(3));
        assert!(!mgr.record(cp(10, 2, "state"), false));
        assert!(!mgr.record(cp(10, 3, "state"), false));
        // A vote for a different digest does not help.
        assert!(!mgr.record(cp(10, 4, "other"), false));
        // Third matching vote stabilizes.
        assert!(mgr.record(cp(10, 5, "state"), true));
        assert_eq!(mgr.stable_seq(), SeqNum(10));
        assert_eq!(mgr.stable_proof().len(), 3);
        assert!(mgr
            .stable_proof()
            .iter()
            .all(|c| c.state_digest == Digest::of_bytes(b"state")));
    }

    #[test]
    fn stale_checkpoints_are_ignored() {
        let mut mgr = CheckpointManager::new(10, StabilityRule::TrustedSigner);
        assert!(mgr.record(cp(20, 0, "s20"), true));
        assert!(!mgr.record(cp(10, 0, "s10"), true));
        assert_eq!(mgr.stable_seq(), SeqNum(20));
        assert!(!mgr.make_stable(SeqNum(15), Digest::ZERO, vec![]));
    }

    #[test]
    fn make_stable_clears_pending_votes() {
        let mut mgr = CheckpointManager::new(10, StabilityRule::Quorum(2));
        mgr.record(cp(10, 1, "a"), false);
        mgr.record(cp(20, 1, "b"), false);
        assert!(mgr.make_stable(SeqNum(10), Digest::of_bytes(b"a"), vec![cp(10, 1, "a")]));
        // Votes for seq 20 survive; votes for 10 are gone. Completing the
        // quorum for 20 still works.
        assert!(mgr.record(cp(20, 2, "b"), false));
        assert_eq!(mgr.stable_seq(), SeqNum(20));
    }

    #[test]
    fn rule_can_change_at_mode_switch() {
        let mut mgr = CheckpointManager::new(10, StabilityRule::TrustedSigner);
        assert_eq!(mgr.rule(), StabilityRule::TrustedSigner);
        mgr.set_rule(StabilityRule::Quorum(2));
        assert_eq!(mgr.rule(), StabilityRule::Quorum(2));
        assert!(!mgr.record(cp(10, 0, "s"), true));
        assert!(mgr.record(cp(10, 1, "s"), false));
    }
}
