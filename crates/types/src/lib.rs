//! Core identifiers, configuration and quorum arithmetic for the SeeMoRe
//! reproduction.
//!
//! This crate is dependency-light on purpose: every other crate in the
//! workspace (crypto, wire format, network substrate, the protocol itself,
//! the baselines and the benchmark harness) builds on the vocabulary defined
//! here.
//!
//! The paper's system model (Section 3) distinguishes a **private cloud** of
//! `S` trusted replicas (at most `c` of which may crash) from a **public
//! cloud** of `P` untrusted replicas (at most `m` of which may be Byzantine).
//! [`ClusterConfig`] captures that split, [`quorum`] implements the quorum
//! and network-size arithmetic of Section 3.2, and [`planner`] implements the
//! public-cloud sizing methods of Section 4.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
// Quorum and network-size bounds are written exactly as the paper states
// them (e.g. `n >= 3m + 2c + 1`); rewriting them as `n > 3m + 2c` to please
// the lint would obscure the correspondence with Equation 1.
#![allow(clippy::int_plus_one)]

pub mod config;
pub mod error;
pub mod id;
pub mod mode;
pub mod op;
pub mod planner;
pub mod quorum;
pub mod shard;
pub mod time;

pub use config::{ClusterConfig, FailureBounds, ReplicaRole, Trust};
pub use error::{ConfigError, ProtocolViolation};
pub use id::{ClientId, NodeId, ReplicaId, RequestId, SeqNum, Timestamp, View};
pub use mode::Mode;
pub use op::OpClass;
pub use planner::{PlannerInput, PlannerOutcome, ShardPlacement};
pub use quorum::QuorumSpec;
pub use shard::{GroupId, GroupNodeId, Partitioning, ShardMap};
pub use time::{Duration, Instant};
