//! The three operating modes of SeeMoRe (Section 5).
//!
//! * **Lion** — a trusted primary in the private cloud orders requests and
//!   drives a two-phase agreement over all `3m + 2c + 1` replicas with
//!   quorums of `2m + c + 1`. Linear message complexity.
//! * **Dog** — a trusted primary orders requests but delegates agreement to
//!   `3m + 1` *proxies* in the public cloud with quorums of `2m + 1`. Two
//!   phases, quadratic messages among the proxies. Reduces the load on the
//!   private cloud.
//! * **Peacock** — an untrusted primary in the public cloud runs a PBFT-like
//!   three-phase agreement among `3m + 1` proxies; the private cloud is
//!   passive in agreement but supplies the *transferer* that drives view
//!   changes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Operating mode of the SeeMoRe protocol.
///
/// The paper indexes modes with `pi ∈ {1, 2, 3}`; we keep the same numbering
/// in [`Mode::index`] so that `REPLY` messages can carry it exactly as in the
/// paper's message format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Trusted primary, all replicas participate (2 phases, `O(n)` messages).
    Lion,
    /// Trusted primary, public-cloud proxies run agreement (2 phases,
    /// `O(n²)` messages among `3m + 1` proxies).
    Dog,
    /// Untrusted primary, PBFT-like agreement among `3m + 1` proxies
    /// (3 phases, `O(n²)` messages).
    Peacock,
}

impl Mode {
    /// All modes in ascending paper order.
    pub const ALL: [Mode; 3] = [Mode::Lion, Mode::Dog, Mode::Peacock];

    /// The paper's numeric mode identifier `pi ∈ {1, 2, 3}`.
    pub fn index(self) -> u8 {
        match self {
            Mode::Lion => 1,
            Mode::Dog => 2,
            Mode::Peacock => 3,
        }
    }

    /// Parses the paper's numeric mode identifier.
    pub fn from_index(index: u8) -> Option<Mode> {
        match index {
            1 => Some(Mode::Lion),
            2 => Some(Mode::Dog),
            3 => Some(Mode::Peacock),
            _ => None,
        }
    }

    /// Whether the primary of this mode lives in the trusted private cloud.
    pub fn has_trusted_primary(self) -> bool {
        matches!(self, Mode::Lion | Mode::Dog)
    }

    /// Whether agreement is delegated to the `3m + 1` public-cloud proxies.
    pub fn uses_proxies(self) -> bool {
        matches!(self, Mode::Dog | Mode::Peacock)
    }

    /// Number of communication phases between the primary receiving a
    /// request and the request committing (Table 1).
    pub fn phases(self) -> u32 {
        match self {
            Mode::Lion | Mode::Dog => 2,
            Mode::Peacock => 3,
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Mode::Lion => "Lion",
            Mode::Dog => "Dog",
            Mode::Peacock => "Peacock",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for mode in Mode::ALL {
            assert_eq!(Mode::from_index(mode.index()), Some(mode));
        }
        assert_eq!(Mode::from_index(0), None);
        assert_eq!(Mode::from_index(4), None);
    }

    #[test]
    fn primary_trust_matches_paper() {
        assert!(Mode::Lion.has_trusted_primary());
        assert!(Mode::Dog.has_trusted_primary());
        assert!(!Mode::Peacock.has_trusted_primary());
    }

    #[test]
    fn proxy_usage_matches_paper() {
        assert!(!Mode::Lion.uses_proxies());
        assert!(Mode::Dog.uses_proxies());
        assert!(Mode::Peacock.uses_proxies());
    }

    #[test]
    fn phase_counts_match_table1() {
        assert_eq!(Mode::Lion.phases(), 2);
        assert_eq!(Mode::Dog.phases(), 2);
        assert_eq!(Mode::Peacock.phases(), 3);
    }

    #[test]
    fn display_names() {
        assert_eq!(Mode::Lion.to_string(), "Lion");
        assert_eq!(Mode::Dog.to_string(), "Dog");
        assert_eq!(Mode::Peacock.to_string(), "Peacock");
    }
}
