//! Public-cloud sizing planner (Section 4 of the paper).
//!
//! An enterprise that owns `S` trusted servers, of which up to `c` may crash,
//! needs a total network of `3m + 2c + 1` replicas to run SeeMoRe. This
//! module answers the question the paper poses: *how many servers `P` must be
//! rented from an untrusted public cloud?*
//!
//! Two methods are provided, matching the paper:
//!
//! 1. **Ratio-based** — the public cloud advertises the fraction `alpha` of
//!    its nodes that may be malicious (and optionally the fraction `beta`
//!    that may merely crash). Equations 2 and 3:
//!    `P = ceil((S - (2c + 1)) / (3*alpha + 2*beta - 1))`.
//! 2. **Explicit-bound** — the public cloud guarantees at most `M` concurrent
//!    malicious (and optionally `C` crash) failures in the rented cluster:
//!    `P = (3M + 2C + 2c + 1) - S`.

use crate::config::{ClusterConfig, FailureBounds};
use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// Inputs to the ratio-based planner (Equations 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[allow(clippy::derive_partial_eq_without_eq)]
pub struct PlannerInput {
    /// Number of trusted servers owned by the enterprise (`S`).
    pub private_size: u32,
    /// Bound on crash failures within the private cloud (`c`).
    pub private_crash_bound: u32,
    /// Fraction of public-cloud nodes that may be malicious (`alpha = m / P`).
    pub malicious_ratio: f64,
    /// Fraction of public-cloud nodes that may crash (`beta = c_pub / P`).
    /// Set to zero when the provider reports no crash statistics, in which
    /// case all public faults are treated as malicious (Equation 2).
    pub crash_ratio: f64,
}

impl PlannerInput {
    /// Planner input for a provider that only reports a malicious ratio
    /// (Equation 2).
    pub fn with_malicious_ratio(private_size: u32, private_crash_bound: u32, alpha: f64) -> Self {
        PlannerInput {
            private_size,
            private_crash_bound,
            malicious_ratio: alpha,
            crash_ratio: 0.0,
        }
    }
}

/// The planner's recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlannerOutcome {
    /// The private cloud alone satisfies `S >= 2c + 1`; run a crash
    /// fault-tolerant protocol (e.g. Paxos) without renting anything.
    PrivateCloudSufficient {
        /// Number of private servers that would actually be needed.
        required_private: u32,
    },
    /// There is no usable private cloud (`S = 0` or `S = c`); rent everything
    /// and run a Byzantine fault-tolerant protocol in the public cloud.
    UsePublicCloudOnly {
        /// Servers to rent for a pure BFT deployment tolerating the expected
        /// number of malicious nodes.
        rent: u32,
        /// Byzantine bound implied by the rented size and ratio.
        byzantine_bound: u32,
    },
    /// Rent `rent` public servers and run SeeMoRe over the hybrid network.
    RentFromPublicCloud {
        /// Servers to rent (`P`).
        rent: u32,
        /// Byzantine bound `m` implied by the rented size.
        byzantine_bound: u32,
        /// Resulting total network size `N = S + P`.
        network_size: u32,
    },
}

/// Ratio-based sizing (Equations 2 and 3).
///
/// # Errors
///
/// * [`ConfigError::MaliciousRatioTooHigh`] if `3*alpha + 2*beta >= 1` can
///   never be satisfied (in particular `alpha >= 1/3` with `beta = 0`).
/// * [`ConfigError::InvalidPlannerInput`] if the ratios are not in `[0, 1)`
///   or the crash bound exceeds the private cloud size.
pub fn plan_with_ratios(input: PlannerInput) -> Result<PlannerOutcome, ConfigError> {
    let PlannerInput {
        private_size: s,
        private_crash_bound: c,
        malicious_ratio: alpha,
        crash_ratio: beta,
    } = input;
    if !(0.0..1.0).contains(&alpha) || !(0.0..1.0).contains(&beta) {
        return Err(ConfigError::InvalidPlannerInput(format!(
            "ratios must be in [0, 1): alpha={alpha}, beta={beta}"
        )));
    }
    if c > s {
        return Err(ConfigError::InvalidPlannerInput(format!(
            "crash bound c={c} exceeds private cloud size S={s}"
        )));
    }

    // S >= 2c + 1: the private cloud can run Paxos by itself.
    if s >= 2 * c + 1 {
        return Ok(PlannerOutcome::PrivateCloudSufficient {
            required_private: 2 * c + 1,
        });
    }

    let denominator = 3.0 * alpha + 2.0 * beta - 1.0;
    if denominator >= 0.0 {
        // The provider is too unreliable: renting more servers adds faults at
        // least as fast as it adds capacity.
        return Err(ConfigError::MaliciousRatioTooHigh { alpha });
    }

    // No usable private cloud: rent everything and run plain BFT.
    if s == 0 || s == c {
        // Smallest P such that P >= 3*ceil(alpha*P) + 1.
        let mut p = 4u32;
        loop {
            let m = expected_byzantine(p, alpha);
            if p >= 3 * m + 1 {
                return Ok(PlannerOutcome::UsePublicCloudOnly {
                    rent: p,
                    byzantine_bound: m,
                });
            }
            p += 1;
        }
    }

    // Equation 2 / 3: P = ceil((S - (2c + 1)) / (3*alpha + 2*beta - 1)).
    let numerator = f64::from(s) - f64::from(2 * c + 1);
    let mut p = (numerator / denominator).ceil() as u32;
    // The uniform-distribution assumption can leave the ceiling one node shy
    // once m = ceil(alpha * P) is re-derived as an integer; bump until the
    // constraint N >= 3m + 2c + 1 actually holds.
    loop {
        let m = expected_byzantine(p, alpha);
        let c_pub = (beta * f64::from(p)).ceil() as u32;
        let n = s + p;
        if n >= 3 * m + 2 * (c + c_pub) + 1 && p >= 3 * m + 1 {
            return Ok(PlannerOutcome::RentFromPublicCloud {
                rent: p,
                byzantine_bound: m,
                network_size: n,
            });
        }
        p += 1;
    }
}

/// Explicit-bound sizing: the provider guarantees at most
/// `max_malicious` concurrent malicious and `max_crash` concurrent crash
/// failures among the rented nodes. `P = (3M + 2C + 2c + 1) - S`.
///
/// # Errors
///
/// Returns [`ConfigError::InvalidPlannerInput`] if the private crash bound
/// exceeds the private cloud size.
pub fn plan_with_explicit_bounds(
    private_size: u32,
    private_crash_bound: u32,
    max_malicious: u32,
    max_crash: u32,
) -> Result<PlannerOutcome, ConfigError> {
    if private_crash_bound > private_size {
        return Err(ConfigError::InvalidPlannerInput(format!(
            "crash bound c={private_crash_bound} exceeds private cloud size S={private_size}"
        )));
    }
    if private_size >= 2 * private_crash_bound + 1 {
        return Ok(PlannerOutcome::PrivateCloudSufficient {
            required_private: 2 * private_crash_bound + 1,
        });
    }
    let required_total = 3 * max_malicious + 2 * (max_crash + private_crash_bound) + 1;
    let rent_for_hybrid = required_total.saturating_sub(private_size);
    // The Dog/Peacock modes additionally need 3M + 1 public proxies.
    let rent = rent_for_hybrid.max(3 * max_malicious + 1);
    Ok(PlannerOutcome::RentFromPublicCloud {
        rent,
        byzantine_bound: max_malicious,
        network_size: private_size + rent,
    })
}

/// Builds a [`ClusterConfig`] from a planner recommendation.
///
/// # Errors
///
/// Propagates [`ConfigError`] if the outcome does not describe a hybrid
/// deployment (private-only and public-only outcomes have no hybrid config).
pub fn cluster_from_outcome(
    private_size: u32,
    private_crash_bound: u32,
    outcome: PlannerOutcome,
) -> Result<ClusterConfig, ConfigError> {
    match outcome {
        PlannerOutcome::RentFromPublicCloud {
            rent,
            byzantine_bound,
            ..
        } => ClusterConfig::new(
            private_size,
            rent,
            FailureBounds::new(private_crash_bound, byzantine_bound),
        ),
        PlannerOutcome::PrivateCloudSufficient { .. } => Err(ConfigError::InvalidPlannerInput(
            "private cloud is sufficient; no hybrid cluster is needed".to_string(),
        )),
        PlannerOutcome::UsePublicCloudOnly { .. } => Err(ConfigError::InvalidPlannerInput(
            "no usable private cloud; run a BFT protocol in the public cloud instead".to_string(),
        )),
    }
}

/// One group's placement in a sharded deployment: the planner's sizing
/// recommendation plus, for hybrid outcomes, the concrete cluster shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(clippy::derive_partial_eq_without_eq)]
pub struct ShardPlacement {
    /// The group this placement is for.
    pub group: crate::shard::GroupId,
    /// The sizing inputs the group was planned with.
    pub input: PlannerInput,
    /// The planner's recommendation for this group.
    pub outcome: PlannerOutcome,
    /// The hybrid cluster configuration, when the outcome calls for one
    /// (`None` for private-only or public-only recommendations).
    pub cluster: Option<ClusterConfig>,
}

/// Plans each group of a sharded deployment independently (Section 4 applied
/// per shard): group `i` is sized from `inputs[i]`, so shards with different
/// private capacity or different public-cloud reliability get different
/// rental recommendations — per-group fault budgets keep quorum cost flat as
/// the system grows instead of one global quorum spanning every shard.
///
/// # Errors
///
/// Propagates the first per-group [`ConfigError`]; an empty input slice is
/// rejected as invalid.
pub fn plan_shards(inputs: &[PlannerInput]) -> Result<Vec<ShardPlacement>, ConfigError> {
    if inputs.is_empty() {
        return Err(ConfigError::InvalidPlannerInput(
            "a sharded deployment needs at least one group".to_string(),
        ));
    }
    inputs
        .iter()
        .enumerate()
        .map(|(index, &input)| {
            let outcome = plan_with_ratios(input)?;
            let cluster = match outcome {
                PlannerOutcome::RentFromPublicCloud { .. } => Some(cluster_from_outcome(
                    input.private_size,
                    input.private_crash_bound,
                    outcome,
                )?),
                _ => None,
            };
            Ok(ShardPlacement {
                group: crate::shard::GroupId(index as u32),
                input,
                outcome,
                cluster,
            })
        })
        .collect()
}

/// Expected number of malicious nodes among `p` rented nodes under a uniform
/// malicious ratio `alpha` (the paper's worst-case rounding: any subset of
/// size `p` contains at most `ceil(alpha * p)` malicious nodes).
fn expected_byzantine(p: u32, alpha: f64) -> u32 {
    (alpha * f64::from(p)).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // Section 4: S = 2, c = 1, alpha = 0.3  =>  P = 10.
        let outcome = plan_with_ratios(PlannerInput::with_malicious_ratio(2, 1, 0.3)).unwrap();
        match outcome {
            PlannerOutcome::RentFromPublicCloud {
                rent,
                byzantine_bound,
                network_size,
            } => {
                assert_eq!(rent, 10);
                assert_eq!(byzantine_bound, 3); // ceil(0.3 * 10)
                assert_eq!(network_size, 12); // 3*3 + 2*1 + 1
            }
            other => panic!("expected a rental recommendation, got {other:?}"),
        }
    }

    #[test]
    fn sufficient_private_cloud_needs_no_rental() {
        let outcome = plan_with_ratios(PlannerInput::with_malicious_ratio(5, 2, 0.2)).unwrap();
        assert_eq!(
            outcome,
            PlannerOutcome::PrivateCloudSufficient {
                required_private: 5
            }
        );

        let outcome = plan_with_explicit_bounds(7, 3, 1, 0).unwrap();
        assert_eq!(
            outcome,
            PlannerOutcome::PrivateCloudSufficient {
                required_private: 7
            }
        );
    }

    #[test]
    fn malicious_ratio_one_third_is_rejected() {
        let err =
            plan_with_ratios(PlannerInput::with_malicious_ratio(2, 1, 1.0 / 3.0)).unwrap_err();
        assert!(matches!(err, ConfigError::MaliciousRatioTooHigh { .. }));

        // With a crash ratio the combined denominator can also be infeasible.
        let err = plan_with_ratios(PlannerInput {
            private_size: 2,
            private_crash_bound: 1,
            malicious_ratio: 0.2,
            crash_ratio: 0.25,
        })
        .unwrap_err();
        assert!(matches!(err, ConfigError::MaliciousRatioTooHigh { .. }));
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(plan_with_ratios(PlannerInput::with_malicious_ratio(2, 3, 0.1)).is_err());
        assert!(plan_with_ratios(PlannerInput::with_malicious_ratio(2, 1, 1.5)).is_err());
        assert!(plan_with_ratios(PlannerInput {
            private_size: 2,
            private_crash_bound: 1,
            malicious_ratio: 0.1,
            crash_ratio: -0.2,
        })
        .is_err());
        assert!(plan_with_explicit_bounds(1, 2, 1, 0).is_err());
    }

    #[test]
    fn no_private_cloud_falls_back_to_bft() {
        let outcome = plan_with_ratios(PlannerInput::with_malicious_ratio(0, 0, 0.2)).unwrap();
        match outcome {
            PlannerOutcome::UsePublicCloudOnly {
                rent,
                byzantine_bound,
            } => {
                assert!(rent >= 3 * byzantine_bound + 1);
                assert!(byzantine_bound >= 1 || rent >= 1);
            }
            other => panic!("expected public-cloud-only, got {other:?}"),
        }

        // S = c: every private node may crash, so the private cloud is useless.
        let outcome = plan_with_ratios(PlannerInput::with_malicious_ratio(1, 1, 0.1)).unwrap();
        assert!(matches!(outcome, PlannerOutcome::UsePublicCloudOnly { .. }));
    }

    #[test]
    fn explicit_bound_formula() {
        // P = (3M + 2C + 2c + 1) - S with M=2, C=1, c=1, S=2 -> 11 - 2 = 9...
        // (3*2 + 2*1 + 2*1 + 1) - 2 = 11 - 2 = 9.
        let outcome = plan_with_explicit_bounds(2, 1, 2, 1).unwrap();
        match outcome {
            PlannerOutcome::RentFromPublicCloud {
                rent,
                byzantine_bound,
                network_size,
            } => {
                assert_eq!(rent, 9);
                assert_eq!(byzantine_bound, 2);
                assert_eq!(network_size, 11);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explicit_bound_guarantees_proxy_capacity() {
        // With a tiny private deficit the formula alone could rent fewer than
        // 3M + 1 nodes; the planner must still rent enough for the proxies.
        let outcome = plan_with_explicit_bounds(2, 1, 3, 0).unwrap();
        match outcome {
            PlannerOutcome::RentFromPublicCloud {
                rent,
                byzantine_bound,
                ..
            } => {
                assert!(rent >= 3 * byzantine_bound + 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rental_outcomes_produce_valid_clusters() {
        let outcome = plan_with_ratios(PlannerInput::with_malicious_ratio(2, 1, 0.3)).unwrap();
        let cluster = cluster_from_outcome(2, 1, outcome).unwrap();
        assert_eq!(cluster.total_size(), 12);
        assert!(cluster.quorum(crate::Mode::Lion).is_valid());

        let outcome = plan_with_explicit_bounds(2, 1, 2, 0).unwrap();
        let cluster = cluster_from_outcome(2, 1, outcome).unwrap();
        assert!(cluster.quorum(crate::Mode::Lion).is_valid());
    }

    #[test]
    fn shard_planning_places_each_group_independently() {
        use crate::shard::GroupId;
        // Group 0: small private cloud, reliable provider. Group 1: same
        // private cloud, sketchier provider — it must rent more.
        let inputs = [
            PlannerInput::with_malicious_ratio(2, 1, 0.1),
            PlannerInput::with_malicious_ratio(2, 1, 0.3),
            PlannerInput::with_malicious_ratio(5, 2, 0.2),
        ];
        let placements = plan_shards(&inputs).unwrap();
        assert_eq!(placements.len(), 3);
        assert_eq!(placements[0].group, GroupId(0));
        assert_eq!(placements[2].group, GroupId(2));

        let rent_of = |p: &ShardPlacement| match p.outcome {
            PlannerOutcome::RentFromPublicCloud { rent, .. } => rent,
            _ => panic!("expected a rental outcome"),
        };
        assert!(rent_of(&placements[0]) < rent_of(&placements[1]));
        assert!(placements[0].cluster.is_some());
        assert!(placements[1].cluster.is_some());
        // Group 2's private cloud is self-sufficient: no hybrid cluster.
        assert!(matches!(
            placements[2].outcome,
            PlannerOutcome::PrivateCloudSufficient { .. }
        ));
        assert!(placements[2].cluster.is_none());

        // Per-group clusters satisfy the per-group quorum bounds.
        let cluster = placements[1].cluster.as_ref().unwrap();
        assert!(cluster.quorum(crate::Mode::Lion).is_valid());
    }

    #[test]
    fn shard_planning_rejects_empty_and_invalid_groups() {
        assert!(plan_shards(&[]).is_err());
        // An invalid group poisons the whole plan.
        let inputs = [
            PlannerInput::with_malicious_ratio(2, 1, 0.1),
            PlannerInput::with_malicious_ratio(2, 3, 0.1),
        ];
        assert!(plan_shards(&inputs).is_err());
    }

    #[test]
    fn non_hybrid_outcomes_cannot_build_clusters() {
        assert!(cluster_from_outcome(
            5,
            2,
            PlannerOutcome::PrivateCloudSufficient {
                required_private: 5
            }
        )
        .is_err());
        assert!(cluster_from_outcome(
            0,
            0,
            PlannerOutcome::UsePublicCloudOnly {
                rent: 4,
                byzantine_bound: 1
            }
        )
        .is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whenever the ratio planner recommends renting, the resulting
        /// network satisfies Equation 1 for the implied Byzantine bound and
        /// can host the 3m+1 proxies.
        #[test]
        fn ratio_planner_recommendations_are_sound(
            c in 1u32..6,
            extra in 0u32..1,
            alpha in 0.01f64..0.30,
        ) {
            // Choose S strictly between c and 2c+1 so renting is required.
            let s = (c + 1 + extra).min(2 * c);
            prop_assume!(s > c && s < 2 * c + 1);
            let outcome = plan_with_ratios(
                PlannerInput::with_malicious_ratio(s, c, alpha)
            );
            prop_assume!(outcome.is_ok());
            if let PlannerOutcome::RentFromPublicCloud { rent, byzantine_bound, network_size } =
                outcome.unwrap()
            {
                prop_assert_eq!(network_size, s + rent);
                prop_assert!(network_size >= 3 * byzantine_bound + 2 * c + 1);
                prop_assert!(rent >= 3 * byzantine_bound + 1);
                let cluster = cluster_from_outcome(s, c, PlannerOutcome::RentFromPublicCloud {
                    rent, byzantine_bound, network_size,
                });
                prop_assert!(cluster.is_ok());
            }
        }

        /// The explicit-bound planner always satisfies the generalized
        /// Equation 1 with the provider-supplied bounds.
        #[test]
        fn explicit_planner_recommendations_are_sound(
            c in 1u32..6,
            m in 0u32..6,
            c_pub in 0u32..4,
        ) {
            let s = c + 1; // forces renting whenever c >= 1
            prop_assume!(s < 2 * c + 1);
            let outcome = plan_with_explicit_bounds(s, c, m, c_pub).unwrap();
            if let PlannerOutcome::RentFromPublicCloud { rent, network_size, .. } = outcome {
                prop_assert!(network_size >= 3 * m + 2 * (c + c_pub) + 1);
                prop_assert!(rent >= 3 * m + 1);
            } else {
                prop_assert!(false, "expected a rental outcome");
            }
        }
    }
}
