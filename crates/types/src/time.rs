//! Virtual time used by the protocol cores and the discrete-event simulator.
//!
//! Protocol cores are written "sans-IO": they never read a wall clock.
//! Instead every entry point receives the current [`Instant`] from the
//! substrate driving the core (either the threaded runtime, which maps wall
//! clock time onto these instants, or the discrete-event simulator, which
//! advances a purely virtual clock). Both substrates therefore share the same
//! time vocabulary and the cores behave identically under either.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration in nanoseconds of (possibly virtual) time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration(nanos)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000_000)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000_000)
    }

    /// The duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction of two durations.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor.
    #[allow(clippy::should_implement_trait)] // an inherent, panic-free scalar helper
    pub fn mul(self, factor: u64) -> Duration {
        Duration(self.0 * factor)
    }

    /// Converts to a standard library duration (for the threaded runtime).
    pub fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }

    /// Converts from a standard library duration, saturating at `u64::MAX` ns.
    pub fn from_std(d: std::time::Duration) -> Self {
        Duration(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}us", self.as_micros())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A point in (possibly virtual) time, measured in nanoseconds since the
/// start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Instant(u64);

impl Instant {
    /// The origin of time for a run.
    pub const ZERO: Instant = Instant(0);

    /// Builds an instant from nanoseconds since the origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        Instant(nanos)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds since the origin (fractional).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    pub fn duration_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn checked_add(self, d: Duration) -> Option<Instant> {
        self.0.checked_add(d.as_nanos()).map(Instant)
    }

    /// Saturating subtraction of a duration (clamped at time zero).
    pub fn saturating_sub(self, d: Duration) -> Instant {
        Instant(self.0.saturating_sub(d.as_nanos()))
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.as_nanos())
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1_000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1_000));
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1_000));
    }

    #[test]
    fn duration_accessors() {
        let d = Duration::from_millis(1_500);
        assert_eq!(d.as_millis(), 1_500);
        assert_eq!(d.as_micros(), 1_500_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_millis(2);
        let b = Duration::from_millis(3);
        assert_eq!(a + b, Duration::from_millis(5));
        assert_eq!(b.saturating_sub(a), Duration::from_millis(1));
        assert_eq!(a.saturating_sub(b), Duration::ZERO);
        assert_eq!(a.mul(4), Duration::from_millis(8));
    }

    #[test]
    fn instant_ordering_and_subtraction() {
        let t0 = Instant::ZERO;
        let t1 = t0 + Duration::from_millis(10);
        assert!(t0 < t1);
        assert_eq!(t1 - t0, Duration::from_millis(10));
        assert_eq!(t0 - t1, Duration::ZERO);
        assert_eq!(t1.duration_since(t0).as_millis(), 10);
    }

    #[test]
    fn std_round_trip() {
        let d = Duration::from_micros(1234);
        assert_eq!(Duration::from_std(d.to_std()), d);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Duration::from_nanos(5).to_string(), "5ns");
        assert_eq!(Duration::from_micros(7).to_string(), "7us");
        assert_eq!(Duration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn instant_checked_add() {
        let t = Instant::from_nanos(u64::MAX - 1);
        assert!(t.checked_add(Duration::from_nanos(1)).is_some());
        assert!(t.checked_add(Duration::from_nanos(2)).is_none());
    }
}
