//! Strongly-typed identifiers used throughout the workspace.
//!
//! The paper identifies each replica with an integer in `[0, N-1]` where the
//! trusted replicas of the private cloud occupy `[0, S-1]` and the untrusted
//! replicas of the public cloud occupy `[S, N-1]` (Section 5). We keep that
//! convention but wrap the raw integers in newtypes so that a view number can
//! never be confused with a sequence number or a replica index.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a replica inside the cluster, in `[0, N-1]`.
///
/// Replicas `< S` live in the trusted private cloud; replicas `>= S` live in
/// the untrusted public cloud (see
/// [`ClusterConfig::trust_of`](crate::ClusterConfig::trust_of)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaId(pub u32);

impl ReplicaId {
    /// Returns the raw index as a `usize`, convenient for vector indexing.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for ReplicaId {
    fn from(value: u32) -> Self {
        ReplicaId(value)
    }
}

/// Identifier of a client of the replicated service.
///
/// The paper places no restriction on clients other than that their number is
/// finite; clients sign their requests and tag them with a monotonically
/// increasing [`Timestamp`] to obtain exactly-once semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u64> for ClientId {
    fn from(value: u64) -> Self {
        ClientId(value)
    }
}

/// Any addressable endpoint on the network: a replica or a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// A replica participating in state machine replication.
    Replica(ReplicaId),
    /// A client issuing requests against the replicated service.
    Client(ClientId),
}

impl NodeId {
    /// Returns the replica id if this endpoint is a replica.
    pub fn as_replica(self) -> Option<ReplicaId> {
        match self {
            NodeId::Replica(r) => Some(r),
            NodeId::Client(_) => None,
        }
    }

    /// Returns the client id if this endpoint is a client.
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            NodeId::Client(c) => Some(c),
            NodeId::Replica(_) => None,
        }
    }

    /// True if this endpoint is a replica.
    pub fn is_replica(self) -> bool {
        matches!(self, NodeId::Replica(_))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Replica(r) => write!(f, "{r}"),
            NodeId::Client(c) => write!(f, "{c}"),
        }
    }
}

impl From<ReplicaId> for NodeId {
    fn from(value: ReplicaId) -> Self {
        NodeId::Replica(value)
    }
}

impl From<ClientId> for NodeId {
    fn from(value: ClientId) -> Self {
        NodeId::Client(value)
    }
}

/// A view number.
///
/// Replicas move through a succession of configurations called views; within
/// a view one replica is the primary and the others are backups (Section 5).
/// Views are numbered consecutively starting from zero.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct View(pub u64);

impl View {
    /// The initial view every replica starts in.
    pub const ZERO: View = View(0);

    /// The view that follows this one.
    #[inline]
    pub fn next(self) -> View {
        View(self.0 + 1)
    }

    /// Returns `true` if `other` is strictly newer than this view.
    #[inline]
    pub fn is_older_than(self, other: View) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Sequence number assigned by the primary to totally order requests.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// The sequence number that follows this one.
    #[inline]
    pub fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }

    /// The sequence number that precedes this one, saturating at zero.
    #[inline]
    pub fn prev(self) -> SeqNum {
        SeqNum(self.0.saturating_sub(1))
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Client-assigned, monotonically increasing request timestamp.
///
/// Used both to totally order the requests of a single client and to provide
/// exactly-once execution semantics: a replica never re-executes a request
/// whose timestamp is not newer than the last executed timestamp it has
/// recorded for that client.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The timestamp that follows this one.
    #[inline]
    pub fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

/// Globally unique identity of a client request: the issuing client plus the
/// client-assigned timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId {
    /// The client that issued the request.
    pub client: ClientId,
    /// The client-local timestamp of the request.
    pub timestamp: Timestamp,
}

impl RequestId {
    /// Builds a request id from its parts.
    pub fn new(client: ClientId, timestamp: Timestamp) -> Self {
        RequestId { client, timestamp }
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.client, self.timestamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_id_display_and_conversion() {
        let r = ReplicaId::from(7u32);
        assert_eq!(r.as_usize(), 7);
        assert_eq!(r.to_string(), "r7");
    }

    #[test]
    fn node_id_projections() {
        let r: NodeId = ReplicaId(3).into();
        let c: NodeId = ClientId(9).into();
        assert_eq!(r.as_replica(), Some(ReplicaId(3)));
        assert_eq!(r.as_client(), None);
        assert_eq!(c.as_client(), Some(ClientId(9)));
        assert_eq!(c.as_replica(), None);
        assert!(r.is_replica());
        assert!(!c.is_replica());
    }

    #[test]
    fn view_ordering_and_succession() {
        let v = View::ZERO;
        assert_eq!(v.next(), View(1));
        assert!(v.is_older_than(View(1)));
        assert!(!View(2).is_older_than(View(2)));
    }

    #[test]
    fn seqnum_next_prev() {
        assert_eq!(SeqNum(0).prev(), SeqNum(0));
        assert_eq!(SeqNum(5).next(), SeqNum(6));
        assert_eq!(SeqNum(5).next().prev(), SeqNum(5));
    }

    #[test]
    fn request_id_identity() {
        let a = RequestId::new(ClientId(1), Timestamp(10));
        let b = RequestId::new(ClientId(1), Timestamp(10));
        let c = RequestId::new(ClientId(1), Timestamp(11));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string(), "c1@ts10");
    }

    #[test]
    fn timestamp_monotone() {
        let t = Timestamp::default();
        assert!(t < t.next());
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::Replica(ReplicaId(2)).to_string(), "r2");
        assert_eq!(NodeId::Client(ClientId(4)).to_string(), "c4");
    }
}
