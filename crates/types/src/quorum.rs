//! Quorum arithmetic for crash, Byzantine and hybrid failure models
//! (Section 3.2 of the paper).
//!
//! The paper derives the following minimum sizes:
//!
//! | Model | Quorum | Minimum network |
//! |-------|--------|-----------------|
//! | Crash (Paxos) | `c + 1` | `2c + 1` |
//! | Byzantine (PBFT) | `2m + 1` | `3m + 1` |
//! | Hybrid (SeeMoRe / UpRight) | `2m + c + 1` | `3m + 2c + 1` |
//!
//! In every model the network must be at least `f` larger than the quorum
//! (so that `f` simultaneously unresponsive replicas cannot block progress)
//! and any two quorums must intersect in at least `m + 1` replicas (so that
//! at least one non-faulty replica witnesses both).

use serde::{Deserialize, Serialize};

/// Failure model a quorum system is designed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureModel {
    /// Only benign crash failures (Paxos-style).
    Crash,
    /// Only Byzantine failures (PBFT-style); crash failures are counted as
    /// Byzantine.
    Byzantine,
    /// The paper's hybrid model: `c` crash failures in the private cloud and
    /// `m` Byzantine failures in the public cloud.
    Hybrid,
}

/// A complete description of a quorum system: how many replicas exist, how
/// many may fail in each class, and how large a quorum must be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuorumSpec {
    /// Failure model this spec was derived for.
    pub model: FailureModel,
    /// Bound on crash failures tolerated.
    pub crash_bound: u32,
    /// Bound on Byzantine failures tolerated.
    pub byzantine_bound: u32,
    /// Total number of replicas participating in agreement.
    pub network_size: u32,
    /// Number of replicas that must be heard from before a decision.
    pub quorum_size: u32,
}

impl QuorumSpec {
    /// Minimum crash-fault-tolerant quorum system for `c` crash failures:
    /// network `2c + 1`, quorum `c + 1`.
    pub fn crash(c: u32) -> QuorumSpec {
        QuorumSpec {
            model: FailureModel::Crash,
            crash_bound: c,
            byzantine_bound: 0,
            network_size: 2 * c + 1,
            quorum_size: c + 1,
        }
    }

    /// Minimum Byzantine-fault-tolerant quorum system for `m` Byzantine
    /// failures: network `3m + 1`, quorum `2m + 1`.
    pub fn byzantine(m: u32) -> QuorumSpec {
        QuorumSpec {
            model: FailureModel::Byzantine,
            crash_bound: 0,
            byzantine_bound: m,
            network_size: 3 * m + 1,
            quorum_size: 2 * m + 1,
        }
    }

    /// Minimum hybrid quorum system for `c` crash and `m` Byzantine
    /// failures: network `3m + 2c + 1`, quorum `2m + c + 1` (Equation 1).
    pub fn hybrid(c: u32, m: u32) -> QuorumSpec {
        QuorumSpec {
            model: FailureModel::Hybrid,
            crash_bound: c,
            byzantine_bound: m,
            network_size: 3 * m + 2 * c + 1,
            quorum_size: 2 * m + c + 1,
        }
    }

    /// A quorum system over an explicitly given network size. The quorum is
    /// kept at the model minimum; `network_size` must be at least the model
    /// minimum for the spec to be [`valid`](Self::is_valid).
    pub fn with_network_size(self, network_size: u32) -> QuorumSpec {
        QuorumSpec {
            network_size,
            ..self
        }
    }

    /// Total number of failures of any kind tolerated.
    pub fn total_faults(&self) -> u32 {
        self.crash_bound + self.byzantine_bound
    }

    /// Size of the guaranteed intersection of any two quorums:
    /// `2 * quorum - network`.
    pub fn min_intersection(&self) -> i64 {
        2 * i64::from(self.quorum_size) - i64::from(self.network_size)
    }

    /// Whether the quorum system provides safety and liveness under its
    /// failure model:
    ///
    /// * any two quorums intersect in at least `m + 1` replicas (safety), and
    /// * a quorum can be formed from non-faulty replicas alone, i.e.
    ///   `network - (c + m) >= quorum` (liveness).
    pub fn is_valid(&self) -> bool {
        let intersection_ok = self.min_intersection() >= i64::from(self.byzantine_bound) + 1;
        let liveness_ok = self.network_size >= self.quorum_size + self.total_faults();
        let quorum_fits = self.quorum_size <= self.network_size;
        intersection_ok && liveness_ok && quorum_fits
    }

    /// Number of replies a client must collect before accepting a result.
    ///
    /// In a crash model one reply suffices; with Byzantine replicas the
    /// client needs `m + 1` matching replies so that at least one comes from
    /// a non-faulty replica.
    pub fn client_reply_quorum(&self) -> u32 {
        match self.model {
            FailureModel::Crash => 1,
            FailureModel::Byzantine | FailureModel::Hybrid => self.byzantine_bound + 1,
        }
    }
}

/// Returns the smallest quorum size that still guarantees an intersection of
/// at least `m + 1` replicas between any two quorums over a network of
/// `network_size` replicas.
///
/// Derived from `|Q| + |Q'| - N >= m + 1`, i.e. `|Q| >= (N + m + 1) / 2`
/// rounded up.
pub fn min_quorum_for_intersection(network_size: u32, byzantine_bound: u32) -> u32 {
    let needed = network_size + byzantine_bound + 1;
    needed.div_ceil(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_spec_matches_paxos() {
        let q = QuorumSpec::crash(1);
        assert_eq!(q.network_size, 3);
        assert_eq!(q.quorum_size, 2);
        assert!(q.is_valid());
        assert_eq!(q.client_reply_quorum(), 1);

        let q = QuorumSpec::crash(2);
        assert_eq!(q.network_size, 5);
        assert_eq!(q.quorum_size, 3);
        assert!(q.is_valid());
    }

    #[test]
    fn byzantine_spec_matches_pbft() {
        let q = QuorumSpec::byzantine(1);
        assert_eq!(q.network_size, 4);
        assert_eq!(q.quorum_size, 3);
        assert!(q.is_valid());
        assert_eq!(q.client_reply_quorum(), 2);

        let q = QuorumSpec::byzantine(3);
        assert_eq!(q.network_size, 10);
        assert_eq!(q.quorum_size, 7);
        assert!(q.is_valid());
    }

    #[test]
    fn hybrid_spec_matches_equation_one() {
        // The worked sizes from the evaluation section (Fig. 2 captions).
        let q = QuorumSpec::hybrid(1, 1);
        assert_eq!(q.network_size, 6);
        assert_eq!(q.quorum_size, 4);
        assert!(q.is_valid());

        let q = QuorumSpec::hybrid(2, 2);
        assert_eq!(q.network_size, 11);
        assert_eq!(q.quorum_size, 7);

        let q = QuorumSpec::hybrid(1, 3);
        assert_eq!(q.network_size, 12);
        assert_eq!(q.quorum_size, 8);

        let q = QuorumSpec::hybrid(3, 1);
        assert_eq!(q.network_size, 10);
        assert_eq!(q.quorum_size, 6);
    }

    #[test]
    fn hybrid_intersection_contains_a_correct_replica() {
        for c in 0..5u32 {
            for m in 0..5u32 {
                let q = QuorumSpec::hybrid(c, m);
                assert!(
                    q.min_intersection() >= i64::from(m) + 1,
                    "c={c} m={m}: intersection {} < m+1",
                    q.min_intersection()
                );
                assert!(q.is_valid(), "c={c} m={m} should be valid");
            }
        }
    }

    #[test]
    fn undersized_network_is_invalid() {
        let q = QuorumSpec::hybrid(1, 1).with_network_size(5);
        assert!(!q.is_valid());
    }

    #[test]
    fn oversized_network_keeps_liveness_but_checks_intersection() {
        // Growing the network without growing quorums weakens intersection;
        // is_valid must notice.
        let q = QuorumSpec::byzantine(1).with_network_size(6);
        assert!(!q.is_valid());
    }

    #[test]
    fn min_quorum_for_intersection_matches_closed_forms() {
        // Crash model: m = 0, N = 2c+1 -> quorum c+1.
        for c in 0..10u32 {
            assert_eq!(min_quorum_for_intersection(2 * c + 1, 0), c + 1);
        }
        // Byzantine model: N = 3m+1 -> quorum 2m+1.
        for m in 0..10u32 {
            assert_eq!(min_quorum_for_intersection(3 * m + 1, m), 2 * m + 1);
        }
        // Hybrid model: N = 3m+2c+1 -> quorum 2m+c+1.
        for c in 0..6u32 {
            for m in 0..6u32 {
                assert_eq!(
                    min_quorum_for_intersection(3 * m + 2 * c + 1, m),
                    2 * m + c + 1
                );
            }
        }
    }

    #[test]
    fn total_faults_sums_both_classes() {
        assert_eq!(QuorumSpec::hybrid(2, 3).total_faults(), 5);
        assert_eq!(QuorumSpec::crash(4).total_faults(), 4);
        assert_eq!(QuorumSpec::byzantine(4).total_faults(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For every hybrid configuration the minimum network size derived in
        /// the paper yields quorums whose pairwise intersection contains at
        /// least one non-faulty replica, and progress is possible with all
        /// faulty replicas silent.
        #[test]
        fn hybrid_quorums_always_sound(c in 0u32..64, m in 0u32..64) {
            let q = QuorumSpec::hybrid(c, m);
            prop_assert!(q.is_valid());
            prop_assert!(q.min_intersection() >= i64::from(m) + 1);
            prop_assert!(q.network_size - q.total_faults() >= q.quorum_size);
        }

        /// Shrinking the network below the minimum always breaks validity.
        #[test]
        fn undersized_networks_rejected(c in 0u32..32, m in 0u32..32, shrink in 1u32..4) {
            let minimum = 3 * m + 2 * c + 1;
            prop_assume!(minimum > shrink);
            let q = QuorumSpec::hybrid(c, m).with_network_size(minimum - shrink);
            prop_assert!(!q.is_valid());
        }

        /// The generic intersection bound agrees with the closed-form quorum
        /// sizes used by the three failure models.
        #[test]
        fn intersection_bound_is_tight(c in 0u32..64, m in 0u32..64) {
            let n = 3 * m + 2 * c + 1;
            let q = min_quorum_for_intersection(n, m);
            prop_assert_eq!(q, 2 * m + c + 1);
            // One less than the bound must violate the m+1 intersection.
            if q > 0 {
                let intersection = 2 * i64::from(q - 1) - i64::from(n);
                prop_assert!(intersection < i64::from(m) + 1);
            }
        }
    }
}
