//! Read/write classification of state-machine operations.
//!
//! SeeMoRe's read-only fast path (and the equivalent seams in the CFT and
//! BFT baselines) needs to know, *before* ordering, whether an operation
//! mutates state. A [`OpClass::Write`] must be batched, sequenced and
//! executed through full agreement; a [`OpClass::Read`] may instead be
//! served from a replica's executed state under the mode's freshness rule
//! (trusted-primary lease reads in Lion/Dog, `2m + 1`-matching quorum reads
//! in Peacock). Classification is conservative: anything a layer cannot
//! prove read-only is treated as a write.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether an operation mutates the replicated state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// The operation does not mutate state and may take the read fast path.
    Read,
    /// The operation (potentially) mutates state and must be ordered.
    Write,
}

impl OpClass {
    /// Whether this is the read class.
    pub fn is_read(self) -> bool {
        matches!(self, OpClass::Read)
    }

    /// Whether this is the write class.
    pub fn is_write(self) -> bool {
        matches!(self, OpClass::Write)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpClass::Read => "read",
            OpClass::Write => "write",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_predicates() {
        assert!(OpClass::Read.is_read());
        assert!(!OpClass::Read.is_write());
        assert!(OpClass::Write.is_write());
        assert!(!OpClass::Write.is_read());
    }

    #[test]
    fn display_names() {
        assert_eq!(OpClass::Read.to_string(), "read");
        assert_eq!(OpClass::Write.to_string(), "write");
    }
}
