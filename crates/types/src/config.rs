//! Cluster topology: which replicas are trusted, who is primary, which
//! public-cloud replicas act as proxies, and how large the quorums are in
//! each mode.
//!
//! The paper identifies replicas with integers in `[0, N-1]`; trusted
//! replicas of the private cloud occupy `[0, S-1]` and untrusted replicas of
//! the public cloud occupy `[S, N-1]` (Section 5). Primaries, proxies and
//! transferers are all deterministic functions of the view number and this
//! configuration, so every correct replica and client derives the same roles
//! locally without communication.

use crate::error::ConfigError;
use crate::id::{ReplicaId, View};
use crate::mode::Mode;
use crate::quorum::QuorumSpec;
use serde::{Deserialize, Serialize};

/// Trust class of a replica, determined solely by which cloud hosts it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Trust {
    /// Hosted in the private cloud: may crash but never behaves maliciously.
    Trusted,
    /// Hosted in the public cloud: may behave arbitrarily (Byzantine).
    Untrusted,
}

/// Role a replica plays in a particular `(mode, view)` configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplicaRole {
    /// The replica that orders requests in this view.
    Primary,
    /// A replica that participates in the agreement quorum.
    Active,
    /// A replica that is only informed of committed requests and does not
    /// vote in agreement (private-cloud backups in Dog/Peacock mode,
    /// non-proxy public replicas).
    Passive,
}

/// Failure bounds of the hybrid model: at most `c` crash failures in the
/// private cloud and at most `m` Byzantine failures in the public cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FailureBounds {
    /// Maximum number of crashed replicas tolerated in the private cloud.
    pub crash: u32,
    /// Maximum number of Byzantine replicas tolerated in the public cloud.
    pub byzantine: u32,
}

impl FailureBounds {
    /// Convenience constructor.
    pub fn new(crash: u32, byzantine: u32) -> Self {
        FailureBounds { crash, byzantine }
    }

    /// Total failures of any class, `f = c + m`.
    pub fn total(&self) -> u32 {
        self.crash + self.byzantine
    }
}

/// Static description of a hybrid-cloud cluster.
///
/// `private_size` (`S`) replicas are trusted, `public_size` (`P`) replicas
/// are untrusted, and the failure bounds `(c, m)` must be satisfiable by the
/// respective clouds. The minimum total size is `3m + 2c + 1` (Equation 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterConfig {
    private_size: u32,
    public_size: u32,
    bounds: FailureBounds,
}

impl ClusterConfig {
    /// Builds and validates a cluster configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the failure bounds exceed their cloud
    /// sizes, if the total network is smaller than `3m + 2c + 1`, or if the
    /// public cloud cannot host the `3m + 1` proxies required by the Dog and
    /// Peacock modes.
    pub fn new(
        private_size: u32,
        public_size: u32,
        bounds: FailureBounds,
    ) -> Result<Self, ConfigError> {
        if bounds.crash > private_size {
            return Err(ConfigError::CrashBoundExceedsPrivateCloud {
                private: private_size,
                crash_bound: bounds.crash,
            });
        }
        if bounds.byzantine > public_size {
            return Err(ConfigError::ByzantineBoundExceedsPublicCloud {
                public: public_size,
                byzantine_bound: bounds.byzantine,
            });
        }
        let required = 3 * bounds.byzantine + 2 * bounds.crash + 1;
        let actual = private_size + public_size;
        if actual < required {
            return Err(ConfigError::NetworkTooSmall { actual, required });
        }
        let proxies_required = 3 * bounds.byzantine + 1;
        if public_size < proxies_required {
            return Err(ConfigError::PublicCloudTooSmallForProxies {
                actual: public_size,
                required: proxies_required,
            });
        }
        Ok(ClusterConfig {
            private_size,
            public_size,
            bounds,
        })
    }

    /// The configuration used throughout the paper's evaluation: `2c`
    /// replicas in the private cloud and `3m + 1` in the public cloud, for a
    /// total of exactly `3m + 2c + 1`.
    pub fn minimal(crash: u32, byzantine: u32) -> Result<Self, ConfigError> {
        ClusterConfig::new(
            2 * crash,
            3 * byzantine + 1,
            FailureBounds::new(crash, byzantine),
        )
    }

    /// Number of trusted replicas `S` in the private cloud.
    pub fn private_size(&self) -> u32 {
        self.private_size
    }

    /// Number of untrusted replicas `P` in the public cloud.
    pub fn public_size(&self) -> u32 {
        self.public_size
    }

    /// Total number of replicas `N = S + P`.
    pub fn total_size(&self) -> u32 {
        self.private_size + self.public_size
    }

    /// The failure bounds `(c, m)` the cluster is dimensioned for.
    pub fn bounds(&self) -> FailureBounds {
        self.bounds
    }

    /// Maximum crash failures tolerated in the private cloud (`c`).
    pub fn crash_bound(&self) -> u32 {
        self.bounds.crash
    }

    /// Maximum Byzantine failures tolerated in the public cloud (`m`).
    pub fn byzantine_bound(&self) -> u32 {
        self.bounds.byzantine
    }

    /// Trust class of `replica`: trusted iff its id is below `S`.
    pub fn trust_of(&self, replica: ReplicaId) -> Trust {
        if replica.0 < self.private_size {
            Trust::Trusted
        } else {
            Trust::Untrusted
        }
    }

    /// Whether `replica` is hosted in the trusted private cloud.
    pub fn is_trusted(&self, replica: ReplicaId) -> bool {
        self.trust_of(replica) == Trust::Trusted
    }

    /// Whether `replica` is a valid id for this cluster.
    pub fn contains(&self, replica: ReplicaId) -> bool {
        replica.0 < self.total_size()
    }

    /// Iterator over every replica id in the cluster.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.total_size()).map(ReplicaId)
    }

    /// Iterator over the trusted replicas `[0, S-1]`.
    pub fn private_replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.private_size).map(ReplicaId)
    }

    /// Iterator over the untrusted replicas `[S, N-1]`.
    pub fn public_replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (self.private_size..self.total_size()).map(ReplicaId)
    }

    /// Number of proxies used by the Dog and Peacock modes: `3m + 1`.
    pub fn proxy_count(&self) -> u32 {
        3 * self.bounds.byzantine + 1
    }

    /// The primary of `view` when operating in `mode`.
    ///
    /// * Lion / Dog: `p = v mod S` — always a trusted replica.
    /// * Peacock: `p = (v mod P) + S` — always an untrusted replica, and by
    ///   construction always one of the view's proxies.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoTrustedReplicas`] for Lion/Dog when `S = 0`.
    pub fn primary(&self, mode: Mode, view: View) -> Result<ReplicaId, ConfigError> {
        match mode {
            Mode::Lion | Mode::Dog => {
                if self.private_size == 0 {
                    Err(ConfigError::NoTrustedReplicas { mode })
                } else {
                    Ok(ReplicaId((view.0 % u64::from(self.private_size)) as u32))
                }
            }
            Mode::Peacock => Ok(ReplicaId(
                (view.0 % u64::from(self.public_size)) as u32 + self.private_size,
            )),
        }
    }

    /// The trusted *transferer* that drives view changes in the Peacock mode:
    /// `t = v' mod S` for the new view `v'`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoTrustedReplicas`] when `S = 0`.
    pub fn transferer(&self, new_view: View) -> Result<ReplicaId, ConfigError> {
        if self.private_size == 0 {
            Err(ConfigError::NoTrustedReplicas {
                mode: Mode::Peacock,
            })
        } else {
            Ok(ReplicaId(
                (new_view.0 % u64::from(self.private_size)) as u32,
            ))
        }
    }

    /// Whether `replica` is one of the `3m + 1` proxies of `view`.
    ///
    /// The paper's membership test is `r - (v mod P) ∈ [S, S + 3m]` for
    /// public-cloud replicas; we apply it with wrap-around modulo `P` so that
    /// it remains well-defined when the public cloud is larger than the proxy
    /// set and the rotation window would otherwise run past `N - 1`.
    pub fn is_proxy(&self, replica: ReplicaId, view: View) -> bool {
        if replica.0 < self.private_size || replica.0 >= self.total_size() {
            return false;
        }
        let p = u64::from(self.public_size);
        let offset = u64::from(replica.0 - self.private_size);
        let rotation = view.0 % p;
        let position = (offset + p - rotation) % p;
        position < u64::from(self.proxy_count())
    }

    /// The proxy set of `view`, in ascending replica-id order.
    pub fn proxies(&self, view: View) -> Vec<ReplicaId> {
        self.public_replicas()
            .filter(|r| self.is_proxy(*r, view))
            .collect()
    }

    /// The replicas participating in agreement for `(mode, view)`:
    /// every replica in Lion, the proxies in Dog and Peacock.
    pub fn agreement_set(&self, mode: Mode, view: View) -> Vec<ReplicaId> {
        match mode {
            Mode::Lion => self.replicas().collect(),
            Mode::Dog | Mode::Peacock => self.proxies(view),
        }
    }

    /// Role of `replica` in `(mode, view)`.
    pub fn role_of(&self, replica: ReplicaId, mode: Mode, view: View) -> ReplicaRole {
        if let Ok(primary) = self.primary(mode, view) {
            if primary == replica {
                return ReplicaRole::Primary;
            }
        }
        match mode {
            Mode::Lion => ReplicaRole::Active,
            Mode::Dog | Mode::Peacock => {
                if self.is_proxy(replica, view) {
                    ReplicaRole::Active
                } else {
                    ReplicaRole::Passive
                }
            }
        }
    }

    /// The quorum system governing agreement in `mode` (Table 1):
    ///
    /// * Lion: quorum `2m + c + 1` over the full network `3m + 2c + 1`,
    /// * Dog / Peacock: quorum `2m + 1` over the `3m + 1` proxies.
    pub fn quorum(&self, mode: Mode) -> QuorumSpec {
        match mode {
            Mode::Lion => {
                let base = QuorumSpec::hybrid(self.bounds.crash, self.bounds.byzantine);
                let n = self.total_size();
                // If the deployment is larger than the paper's minimum
                // network, grow the quorum just enough to preserve the
                // `m + 1` intersection guarantee.
                let quorum_size = base
                    .quorum_size
                    .max(crate::quorum::min_quorum_for_intersection(
                        n,
                        self.bounds.byzantine,
                    ));
                QuorumSpec {
                    network_size: n,
                    quorum_size,
                    ..base
                }
            }
            Mode::Dog | Mode::Peacock => {
                QuorumSpec::byzantine(self.bounds.byzantine).with_network_size(self.proxy_count())
            }
        }
    }

    /// Number of `ACCEPT` messages (excluding the primary's own) the Lion
    /// primary must collect before committing: `2m + c` on the paper's
    /// minimum network, one less than the Lion quorum in general.
    pub fn lion_accept_threshold(&self) -> u32 {
        self.quorum(Mode::Lion).quorum_size - 1
    }

    /// Number of matching messages a proxy must collect (including its own)
    /// in the Dog and Peacock modes: `2m + 1`.
    pub fn proxy_quorum(&self) -> u32 {
        2 * self.bounds.byzantine + 1
    }

    /// Number of matching `INFORM` messages a passive replica waits for
    /// before executing, per mode (Dog: `2m + 1`, Peacock: `m + 1`).
    pub fn inform_threshold(&self, mode: Mode) -> u32 {
        match mode {
            Mode::Lion => 1, // Lion has no informs; commit comes from the trusted primary.
            Mode::Dog => 2 * self.bounds.byzantine + 1,
            Mode::Peacock => self.bounds.byzantine + 1,
        }
    }

    /// Number of matching replies a client waits for before accepting a
    /// result, per mode (first transmission).
    ///
    /// * Lion: a single reply signed by the trusted primary.
    /// * Dog: `2m + 1` matching replies from proxies.
    /// * Peacock: `m + 1` matching replies from proxies.
    pub fn reply_threshold(&self, mode: Mode) -> u32 {
        match mode {
            Mode::Lion => 1,
            Mode::Dog => 2 * self.bounds.byzantine + 1,
            Mode::Peacock => self.bounds.byzantine + 1,
        }
    }

    /// Number of matching replies a client waits for after *retransmitting*
    /// a request (Lion: one trusted reply or `m + 1` from the public cloud;
    /// Dog/Peacock: `m + 1`).
    pub fn retransmit_reply_threshold(&self, mode: Mode) -> u32 {
        match mode {
            Mode::Lion | Mode::Dog | Mode::Peacock => self.bounds.byzantine + 1,
        }
    }

    /// Number of `VIEW-CHANGE` messages the new primary (Lion) or the new
    /// primary / transferer (Dog, Peacock) must collect before emitting a
    /// `NEW-VIEW` (Lion: `2m + c`; Dog / Peacock: `2m + 1`).
    pub fn view_change_threshold(&self, mode: Mode) -> u32 {
        match mode {
            Mode::Lion => self.quorum(Mode::Lion).quorum_size - 1,
            Mode::Dog | Mode::Peacock => 2 * self.bounds.byzantine + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(s: u32, p: u32, c: u32, m: u32) -> ClusterConfig {
        ClusterConfig::new(s, p, FailureBounds::new(c, m)).expect("valid config")
    }

    #[test]
    fn minimal_matches_evaluation_sizes() {
        // Fig. 2 captions: SeeMoRe network sizes 6, 11, 12 and 10.
        assert_eq!(ClusterConfig::minimal(1, 1).unwrap().total_size(), 6);
        assert_eq!(ClusterConfig::minimal(2, 2).unwrap().total_size(), 11);
        assert_eq!(ClusterConfig::minimal(1, 3).unwrap().total_size(), 12);
        assert_eq!(ClusterConfig::minimal(3, 1).unwrap().total_size(), 10);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(matches!(
            ClusterConfig::new(1, 4, FailureBounds::new(2, 1)),
            Err(ConfigError::CrashBoundExceedsPrivateCloud { .. })
        ));
        assert!(matches!(
            ClusterConfig::new(2, 1, FailureBounds::new(1, 2)),
            Err(ConfigError::ByzantineBoundExceedsPublicCloud { .. })
        ));
        assert!(matches!(
            ClusterConfig::new(2, 2, FailureBounds::new(1, 1)),
            Err(ConfigError::NetworkTooSmall { .. })
        ));
        // Network big enough overall, but the public cloud cannot host 3m+1
        // proxies.
        assert!(matches!(
            ClusterConfig::new(6, 3, FailureBounds::new(1, 1)),
            Err(ConfigError::PublicCloudTooSmallForProxies { .. })
        ));
    }

    #[test]
    fn trust_split_follows_id_ranges() {
        let cluster = cfg(2, 4, 1, 1);
        assert_eq!(cluster.trust_of(ReplicaId(0)), Trust::Trusted);
        assert_eq!(cluster.trust_of(ReplicaId(1)), Trust::Trusted);
        for r in 2..6 {
            assert_eq!(cluster.trust_of(ReplicaId(r)), Trust::Untrusted);
        }
        assert_eq!(cluster.private_replicas().count(), 2);
        assert_eq!(cluster.public_replicas().count(), 4);
        assert_eq!(cluster.replicas().count(), 6);
        assert!(cluster.contains(ReplicaId(5)));
        assert!(!cluster.contains(ReplicaId(6)));
    }

    #[test]
    fn lion_and_dog_primary_is_trusted_and_rotates() {
        let cluster = cfg(2, 4, 1, 1);
        for mode in [Mode::Lion, Mode::Dog] {
            assert_eq!(cluster.primary(mode, View(0)).unwrap(), ReplicaId(0));
            assert_eq!(cluster.primary(mode, View(1)).unwrap(), ReplicaId(1));
            assert_eq!(cluster.primary(mode, View(2)).unwrap(), ReplicaId(0));
            for v in 0..10 {
                let p = cluster.primary(mode, View(v)).unwrap();
                assert!(cluster.is_trusted(p));
            }
        }
    }

    #[test]
    fn peacock_primary_is_untrusted_and_is_a_proxy() {
        let cluster = cfg(2, 6, 1, 1);
        for v in 0..20 {
            let view = View(v);
            let p = cluster.primary(Mode::Peacock, view).unwrap();
            assert!(!cluster.is_trusted(p));
            assert!(
                cluster.is_proxy(p, view),
                "primary {p} must be a proxy in {view}"
            );
        }
    }

    #[test]
    fn proxy_set_has_exactly_three_m_plus_one_members() {
        let cluster = cfg(2, 6, 1, 1);
        for v in 0..12 {
            let proxies = cluster.proxies(View(v));
            assert_eq!(proxies.len(), cluster.proxy_count() as usize);
            for proxy in &proxies {
                assert!(!cluster.is_trusted(*proxy));
            }
        }
    }

    #[test]
    fn proxy_set_rotates_with_view() {
        let cluster = cfg(2, 6, 1, 1);
        let v0: Vec<_> = cluster.proxies(View(0));
        let v1: Vec<_> = cluster.proxies(View(1));
        assert_ne!(v0, v1, "rotation must change the proxy set when P > 3m+1");
        // When the public cloud is exactly 3m+1, every public replica is a
        // proxy in every view.
        let tight = cfg(2, 4, 1, 1);
        for v in 0..8 {
            assert_eq!(tight.proxies(View(v)).len(), 4);
        }
    }

    #[test]
    fn transferer_is_trusted() {
        let cluster = cfg(3, 4, 1, 1);
        for v in 0..9 {
            let t = cluster.transferer(View(v)).unwrap();
            assert!(cluster.is_trusted(t));
        }
        assert_eq!(cluster.transferer(View(4)).unwrap(), ReplicaId(1));
    }

    #[test]
    fn roles_reflect_mode() {
        let cluster = cfg(2, 4, 1, 1);
        let view = View(0);
        assert_eq!(
            cluster.role_of(ReplicaId(0), Mode::Lion, view),
            ReplicaRole::Primary
        );
        assert_eq!(
            cluster.role_of(ReplicaId(3), Mode::Lion, view),
            ReplicaRole::Active
        );
        // Dog: primary trusted, private backup passive, proxies active.
        assert_eq!(
            cluster.role_of(ReplicaId(0), Mode::Dog, view),
            ReplicaRole::Primary
        );
        assert_eq!(
            cluster.role_of(ReplicaId(1), Mode::Dog, view),
            ReplicaRole::Passive
        );
        assert_eq!(
            cluster.role_of(ReplicaId(2), Mode::Dog, view),
            ReplicaRole::Active
        );
        // Peacock: public primary, private replicas passive.
        assert_eq!(
            cluster.role_of(
                cluster.primary(Mode::Peacock, view).unwrap(),
                Mode::Peacock,
                view
            ),
            ReplicaRole::Primary
        );
        assert_eq!(
            cluster.role_of(ReplicaId(0), Mode::Peacock, view),
            ReplicaRole::Passive
        );
    }

    #[test]
    fn quorum_sizes_match_table1() {
        let cluster = cfg(2, 4, 1, 1);
        let lion = cluster.quorum(Mode::Lion);
        assert_eq!(lion.quorum_size, 4); // 2m + c + 1
        assert_eq!(lion.network_size, 6); // 3m + 2c + 1
        let dog = cluster.quorum(Mode::Dog);
        assert_eq!(dog.quorum_size, 3); // 2m + 1
        assert_eq!(dog.network_size, 4); // 3m + 1
        let peacock = cluster.quorum(Mode::Peacock);
        assert_eq!(peacock.quorum_size, 3);
        assert_eq!(peacock.network_size, 4);
    }

    #[test]
    fn thresholds_match_protocol_description() {
        let cluster = cfg(4, 7, 2, 2);
        assert_eq!(cluster.lion_accept_threshold(), 6); // 2m + c
        assert_eq!(cluster.proxy_quorum(), 5); // 2m + 1
        assert_eq!(cluster.inform_threshold(Mode::Dog), 5);
        assert_eq!(cluster.inform_threshold(Mode::Peacock), 3); // m + 1
        assert_eq!(cluster.reply_threshold(Mode::Lion), 1);
        assert_eq!(cluster.reply_threshold(Mode::Dog), 5);
        assert_eq!(cluster.reply_threshold(Mode::Peacock), 3);
        assert_eq!(cluster.retransmit_reply_threshold(Mode::Lion), 3);
        assert_eq!(cluster.view_change_threshold(Mode::Lion), 6);
        assert_eq!(cluster.view_change_threshold(Mode::Dog), 5);
        assert_eq!(cluster.view_change_threshold(Mode::Peacock), 5);
    }

    #[test]
    fn agreement_set_contents() {
        let cluster = cfg(2, 4, 1, 1);
        assert_eq!(cluster.agreement_set(Mode::Lion, View(0)).len(), 6);
        let dog_set = cluster.agreement_set(Mode::Dog, View(0));
        assert_eq!(dog_set.len(), 4);
        assert!(dog_set.iter().all(|r| !cluster.is_trusted(*r)));
    }

    #[test]
    fn no_trusted_replicas_is_rejected_for_trusted_primary_modes() {
        let cluster = ClusterConfig::new(0, 7, FailureBounds::new(0, 2)).unwrap();
        assert!(matches!(
            cluster.primary(Mode::Lion, View(0)),
            Err(ConfigError::NoTrustedReplicas { .. })
        ));
        assert!(cluster.primary(Mode::Peacock, View(0)).is_ok());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_cluster() -> impl Strategy<Value = ClusterConfig> {
        (0u32..4, 0u32..4, 0u32..4, 0u32..4).prop_filter_map(
            "valid cluster",
            |(c, m, extra_s, extra_p)| {
                ClusterConfig::new(
                    2 * c + extra_s,
                    3 * m + 1 + extra_p,
                    FailureBounds::new(c, m),
                )
                .ok()
            },
        )
    }

    proptest! {
        /// The primary of every view is trusted in Lion/Dog and untrusted in
        /// Peacock, and the Peacock primary is always a member of its view's
        /// proxy set.
        #[test]
        fn primary_placement_invariant(cluster in arb_cluster(), v in 0u64..1000) {
            let view = View(v);
            if cluster.private_size() > 0 {
                let lion = cluster.primary(Mode::Lion, view).unwrap();
                prop_assert!(cluster.is_trusted(lion));
            }
            let peacock = cluster.primary(Mode::Peacock, view).unwrap();
            prop_assert!(!cluster.is_trusted(peacock));
            prop_assert!(cluster.is_proxy(peacock, view));
        }

        /// Every view has exactly `3m + 1` proxies and they are all public.
        #[test]
        fn proxy_set_size_invariant(cluster in arb_cluster(), v in 0u64..1000) {
            let proxies = cluster.proxies(View(v));
            prop_assert_eq!(proxies.len() as u32, cluster.proxy_count());
            for p in proxies {
                prop_assert!(!cluster.is_trusted(p));
            }
        }

        /// Quorum systems derived from a valid cluster are themselves valid.
        #[test]
        fn derived_quorums_are_valid(cluster in arb_cluster()) {
            for mode in Mode::ALL {
                prop_assert!(cluster.quorum(mode).is_valid(),
                    "mode {mode} quorum invalid for {cluster:?}");
            }
        }
    }
}
