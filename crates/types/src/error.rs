//! Error types shared across the workspace.

use crate::id::{NodeId, ReplicaId, SeqNum, View};
use crate::mode::Mode;
use std::fmt;

/// Errors raised while validating a [`ClusterConfig`](crate::ClusterConfig)
/// or planner input.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The private cloud cannot contain more crash-faulty replicas than it
    /// has replicas.
    CrashBoundExceedsPrivateCloud {
        /// Configured private cloud size `S`.
        private: u32,
        /// Configured crash bound `c`.
        crash_bound: u32,
    },
    /// The public cloud cannot contain more Byzantine replicas than it has
    /// replicas.
    ByzantineBoundExceedsPublicCloud {
        /// Configured public cloud size `P`.
        public: u32,
        /// Configured Byzantine bound `m`.
        byzantine_bound: u32,
    },
    /// The total network is smaller than the minimum `3m + 2c + 1` required
    /// by Equation 1 of the paper.
    NetworkTooSmall {
        /// Actual network size `N = S + P`.
        actual: u32,
        /// Minimum network size `3m + 2c + 1`.
        required: u32,
    },
    /// The public cloud is smaller than the `3m + 1` replicas needed to run
    /// the Dog or Peacock modes.
    PublicCloudTooSmallForProxies {
        /// Actual public cloud size `P`.
        actual: u32,
        /// Required proxy-set size `3m + 1`.
        required: u32,
    },
    /// A mode that requires a trusted primary was requested but the private
    /// cloud is empty.
    NoTrustedReplicas {
        /// The mode that was requested.
        mode: Mode,
    },
    /// The fraction of Byzantine replicas in the public cloud makes the
    /// sizing equation unsatisfiable (`alpha >= 1/3`, Section 4).
    MaliciousRatioTooHigh {
        /// The offending ratio.
        alpha: f64,
    },
    /// Planner inputs were outside their documented domain.
    InvalidPlannerInput(
        /// Human-readable description of the violated precondition.
        String,
    ),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::CrashBoundExceedsPrivateCloud {
                private,
                crash_bound,
            } => write!(
                f,
                "crash bound c={crash_bound} exceeds private cloud size S={private}"
            ),
            ConfigError::ByzantineBoundExceedsPublicCloud {
                public,
                byzantine_bound,
            } => write!(
                f,
                "byzantine bound m={byzantine_bound} exceeds public cloud size P={public}"
            ),
            ConfigError::NetworkTooSmall { actual, required } => write!(
                f,
                "network size N={actual} is below the minimum 3m+2c+1={required}"
            ),
            ConfigError::PublicCloudTooSmallForProxies { actual, required } => write!(
                f,
                "public cloud size P={actual} is below the 3m+1={required} proxies required"
            ),
            ConfigError::NoTrustedReplicas { mode } => {
                write!(f, "mode {mode} requires a trusted primary but S=0")
            }
            ConfigError::MaliciousRatioTooHigh { alpha } => write!(
                f,
                "malicious ratio alpha={alpha} >= 1/3; the public cloud cannot satisfy BFT sizing"
            ),
            ConfigError::InvalidPlannerInput(msg) => write!(f, "invalid planner input: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Protocol-level violations detected while validating an incoming message.
///
/// These are not fatal for the receiving replica: a correct replica simply
/// discards the offending message (and, in tests, the violation is asserted
/// on). They are surfaced as a typed enum so that the fault-injection tests
/// can distinguish "ignored because malformed" from "ignored because stale".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolViolation {
    /// A signature failed to verify.
    BadSignature {
        /// Claimed signer of the message.
        claimed_signer: NodeId,
    },
    /// A digest embedded in a message does not match the request it covers.
    DigestMismatch {
        /// Sequence number of the offending entry, when known.
        seq: Option<SeqNum>,
    },
    /// The message refers to a view this replica is not in.
    WrongView {
        /// View carried by the message.
        got: View,
        /// View the replica is currently in.
        expected: View,
    },
    /// The message came from a node that is not allowed to send it in the
    /// current mode/view (e.g. a prepare from a non-primary).
    UnexpectedSender {
        /// The offending sender.
        sender: ReplicaId,
        /// Short description of the role that was expected instead.
        expected_role: &'static str,
    },
    /// A primary attempted to assign two different requests to the same
    /// sequence number within one view (equivocation).
    Equivocation {
        /// The sequence number that was assigned twice.
        seq: SeqNum,
        /// The view in which the equivocation happened.
        view: View,
    },
    /// The message's sequence number falls outside the acceptable window
    /// (e.g. already garbage-collected by a stable checkpoint).
    OutsideWindow {
        /// The offending sequence number.
        seq: SeqNum,
        /// Low end of the acceptable window.
        low: SeqNum,
        /// High end of the acceptable window.
        high: SeqNum,
    },
    /// The client request carried a stale timestamp (already executed).
    StaleTimestamp,
    /// The message is syntactically valid but not meaningful for the
    /// replica's current mode.
    WrongMode {
        /// The mode the replica is operating in.
        current: Mode,
    },
}

impl fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolViolation::BadSignature { claimed_signer } => {
                write!(f, "invalid signature claimed to be from {claimed_signer}")
            }
            ProtocolViolation::DigestMismatch { seq } => match seq {
                Some(n) => write!(f, "digest mismatch at {n}"),
                None => write!(f, "digest mismatch"),
            },
            ProtocolViolation::WrongView { got, expected } => {
                write!(f, "message for {got} but replica is in {expected}")
            }
            ProtocolViolation::UnexpectedSender {
                sender,
                expected_role,
            } => {
                write!(f, "unexpected sender {sender}; expected {expected_role}")
            }
            ProtocolViolation::Equivocation { seq, view } => {
                write!(f, "equivocation detected at {seq} in {view}")
            }
            ProtocolViolation::OutsideWindow { seq, low, high } => {
                write!(f, "{seq} outside window [{low}, {high}]")
            }
            ProtocolViolation::StaleTimestamp => write!(f, "stale client timestamp"),
            ProtocolViolation::WrongMode { current } => {
                write!(f, "message not valid in mode {current}")
            }
        }
    }
}

impl std::error::Error for ProtocolViolation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ClientId;

    #[test]
    fn config_error_messages_mention_parameters() {
        let e = ConfigError::NetworkTooSmall {
            actual: 5,
            required: 6,
        };
        assert!(e.to_string().contains("N=5"));
        assert!(e.to_string().contains("3m+2c+1=6"));

        let e = ConfigError::MaliciousRatioTooHigh { alpha: 0.4 };
        assert!(e.to_string().contains("0.4"));
    }

    #[test]
    fn violation_messages_render() {
        let v = ProtocolViolation::WrongView {
            got: View(3),
            expected: View(2),
        };
        assert!(v.to_string().contains("v3"));
        assert!(v.to_string().contains("v2"));

        let v = ProtocolViolation::BadSignature {
            claimed_signer: NodeId::Client(ClientId(1)),
        };
        assert!(v.to_string().contains("c1"));

        let v = ProtocolViolation::OutsideWindow {
            seq: SeqNum(100),
            low: SeqNum(1),
            high: SeqNum(50),
        };
        assert!(v.to_string().contains("n100"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&ConfigError::NoTrustedReplicas { mode: Mode::Lion });
        assert_err(&ProtocolViolation::StaleTimestamp);
    }
}
