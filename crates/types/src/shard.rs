//! Sharded (multi-group) topology vocabulary.
//!
//! A single SeeMoRe group caps out at one primary's CPU and one agreement
//! pipeline. To scale beyond that, the keyspace is partitioned across `N`
//! **independent groups**, each a complete SeeMoRe deployment with its own
//! mode, primary, view and fault budget — the paper's per-deployment
//! Lion/Dog/Peacock choice, made per shard. This module defines the
//! vocabulary the wire, client and runtime layers share:
//!
//! * [`GroupId`] — index of a group, in `[0, N-1]`.
//! * [`GroupNodeId`] — a group-scoped endpoint: the global identity of a
//!   replica or client **within a sharded topology** is `(GroupId, NodeId)`;
//!   the protocol cores keep using the plain [`NodeId`]
//!   because each core lives entirely inside one group.
//! * [`ShardMap`] — a versioned mapping from operation keys to groups.
//!   Hash-partitioned to start ([`Partitioning::Hash`]), with a range scheme
//!   ([`Partitioning::Range`]) for ordered keyspaces. Clients cache a
//!   `ShardMap` and refresh it when a replica answers with a signed redirect
//!   carrying a newer version.

use crate::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an agreement group (shard), in `[0, N-1]`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GroupId(pub u32);

impl GroupId {
    /// Returns the raw index as a `usize`, convenient for vector indexing.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<u32> for GroupId {
    fn from(value: u32) -> Self {
        GroupId(value)
    }
}

/// A group-scoped endpoint: which group a node belongs to plus its identity
/// inside that group.
///
/// Replica and client ids are only unique *within* a group; a sharded
/// topology addresses nodes by this pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupNodeId {
    /// The group the node belongs to.
    pub group: GroupId,
    /// The node's identity inside that group.
    pub node: NodeId,
}

impl GroupNodeId {
    /// Builds a group-scoped endpoint from its parts.
    pub fn new(group: GroupId, node: NodeId) -> Self {
        GroupNodeId { group, node }
    }
}

impl fmt::Display for GroupNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.group, self.node)
    }
}

/// How the keyspace is split across groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Partitioning {
    /// Keys are hashed (FNV-1a, 64-bit) and assigned modulo the group count.
    /// Uniform by construction; the default.
    Hash {
        /// Number of groups the hash space is split across (at least 1).
        groups: u32,
    },
    /// Keys are compared lexicographically against sorted split points;
    /// group `i` owns keys in `[bounds[i-1], bounds[i])` (group 0 owns
    /// everything below `bounds[0]`, the last group everything at or above
    /// the last bound). Preserves key ordering for range scans.
    Range {
        /// Sorted split points; `bounds.len() + 1` groups.
        bounds: Vec<Vec<u8>>,
    },
}

/// A versioned mapping from operation keys to agreement groups.
///
/// The version totally orders map revisions: a replica that receives a
/// request for a key it does not own answers with a signed redirect carrying
/// its (authoritative) map, and a client adopts any map whose version is
/// strictly newer than the one it cached.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    /// Revision counter; higher versions supersede lower ones.
    pub version: u64,
    /// The partitioning scheme in force at this version.
    pub partitioning: Partitioning,
}

impl ShardMap {
    /// A version-1 hash partitioning over `groups` groups (the standard
    /// starting map). `groups` is clamped to at least 1.
    pub fn uniform(groups: u32) -> ShardMap {
        ShardMap {
            version: 1,
            partitioning: Partitioning::Hash {
                groups: groups.max(1),
            },
        }
    }

    /// Number of groups this map routes across (always at least 1).
    pub fn groups(&self) -> u32 {
        match &self.partitioning {
            Partitioning::Hash { groups } => (*groups).max(1),
            Partitioning::Range { bounds } => bounds.len() as u32 + 1,
        }
    }

    /// The group that owns `key`.
    pub fn group_of(&self, key: &[u8]) -> GroupId {
        match &self.partitioning {
            Partitioning::Hash { groups } => {
                let groups = (*groups).max(1);
                GroupId((fnv1a(key) % u64::from(groups)) as u32)
            }
            Partitioning::Range { bounds } => {
                let idx = bounds.partition_point(|bound| bound.as_slice() <= key);
                GroupId(idx as u32)
            }
        }
    }

    /// Whether `other` supersedes this map.
    pub fn is_older_than(&self, other: &ShardMap) -> bool {
        self.version < other.version
    }
}

impl Default for ShardMap {
    fn default() -> Self {
        ShardMap::uniform(1)
    }
}

/// 64-bit FNV-1a. Stable across platforms and cheap enough to sit on the
/// client's per-request routing path; routing only needs an even spread, not
/// collision resistance (ownership is re-checked by the group's replicas).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientId, ReplicaId};

    #[test]
    fn group_id_display_and_conversion() {
        let g = GroupId::from(3u32);
        assert_eq!(g.as_usize(), 3);
        assert_eq!(g.to_string(), "g3");
    }

    #[test]
    fn group_node_id_display() {
        let replica = GroupNodeId::new(GroupId(1), NodeId::Replica(ReplicaId(2)));
        let client = GroupNodeId::new(GroupId(0), NodeId::Client(ClientId(7)));
        assert_eq!(replica.to_string(), "g1/r2");
        assert_eq!(client.to_string(), "g0/c7");
    }

    #[test]
    fn hash_map_routes_deterministically_and_in_range() {
        let map = ShardMap::uniform(4);
        assert_eq!(map.groups(), 4);
        for i in 0..1000u32 {
            let key = format!("key-{i}");
            let g = map.group_of(key.as_bytes());
            assert!(g.0 < 4);
            assert_eq!(g, map.group_of(key.as_bytes()));
        }
    }

    #[test]
    fn hash_map_spreads_keys_reasonably() {
        let map = ShardMap::uniform(4);
        let mut counts = [0u32; 4];
        for i in 0..4000u32 {
            counts[map.group_of(format!("key-{i}").as_bytes()).as_usize()] += 1;
        }
        // Each group should own a non-trivial share of a uniform keyspace.
        for &count in &counts {
            assert!(count > 500, "hash spread too skewed: {counts:?}");
        }
    }

    #[test]
    fn single_group_map_routes_everything_to_group_zero() {
        let map = ShardMap::uniform(1);
        assert_eq!(map.groups(), 1);
        assert_eq!(map.group_of(b""), GroupId(0));
        assert_eq!(map.group_of(b"anything"), GroupId(0));
        // Degenerate inputs clamp rather than divide by zero.
        let zero = ShardMap::uniform(0);
        assert_eq!(zero.groups(), 1);
        assert_eq!(zero.group_of(b"k"), GroupId(0));
    }

    #[test]
    fn range_map_respects_bounds() {
        let map = ShardMap {
            version: 2,
            partitioning: Partitioning::Range {
                bounds: vec![b"g".to_vec(), b"p".to_vec()],
            },
        };
        assert_eq!(map.groups(), 3);
        assert_eq!(map.group_of(b"apple"), GroupId(0));
        assert_eq!(map.group_of(b"g"), GroupId(1)); // inclusive lower bound
        assert_eq!(map.group_of(b"melon"), GroupId(1));
        assert_eq!(map.group_of(b"p"), GroupId(2));
        assert_eq!(map.group_of(b"zebra"), GroupId(2));
    }

    #[test]
    fn versions_totally_order_maps() {
        let old = ShardMap::uniform(2);
        let new = ShardMap {
            version: 5,
            partitioning: Partitioning::Hash { groups: 4 },
        };
        assert!(old.is_older_than(&new));
        assert!(!new.is_older_than(&old));
        assert!(!old.is_older_than(&old));
        assert_eq!(ShardMap::default(), ShardMap::uniform(1));
    }
}
