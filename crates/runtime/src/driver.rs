//! Plumbing shared by the concurrent cluster runtimes.
//!
//! [`ThreadedCluster`](crate::threaded::ThreadedCluster) (in-memory
//! channels) and [`SocketCluster`](crate::socket::SocketCluster) (loopback
//! TCP) differ only in how bytes move between nodes. Everything else — the
//! replica thread's event loop with its timer wheel, the
//! [`ReplicaCommand`] control protocol (deliver / crash / shutdown), and the
//! closed-loop client driver with its retransmission fallback — lives here
//! once, parameterized over `send`/`recv` closures, so the two runtimes
//! cannot drift apart behaviourally.

use crossbeam_channel::{Receiver, RecvTimeoutError};
use seemore_core::actions::{Action, Timer};
use seemore_core::client::{ClientOutcome, ClientProtocol};
use seemore_core::protocol::ReplicaProtocol;
use seemore_types::{Duration, Instant, Mode, NodeId, OpClass};
use seemore_wire::Message;
use std::collections::{BTreeMap, HashMap};
use std::time::Instant as StdInstant;

/// Control commands sent to a replica thread.
#[allow(clippy::large_enum_variant)] // Deliver dominates and is the common case
pub(crate) enum ReplicaCommand {
    /// A protocol message from `from` to process.
    Deliver {
        /// The sending node.
        from: NodeId,
        /// The message.
        message: Message,
    },
    /// Fail-stop the replica (it keeps its thread but produces no actions).
    Crash,
    /// Replace the crashed core with one rebuilt from its durable store and
    /// run its `on_start` (the restart half of a crash-recover schedule).
    /// Timers armed by the previous incarnation are discarded — a restarted
    /// process has no memory of them.
    Recover(Box<dyn ReplicaProtocol>),
    /// Ask the replica to initiate a dynamic mode switch (SeeMoRe only;
    /// other cores ignore it). This is how `Scenario::with_mode_switch`
    /// reaches the concurrent runtimes, which have no simulator event queue
    /// to schedule the announcement through.
    ModeSwitch {
        /// The mode to switch to.
        mode: Mode,
    },
    /// Stop the thread and hand the core back for inspection.
    Shutdown,
}

/// Converts elapsed wall-clock time into the protocol's virtual instants.
pub(crate) fn to_instant(start: StdInstant) -> Instant {
    Instant::from_nanos(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX))
}

/// How a replica thread moves its outgoing messages: the seam between the
/// shared event loop and the two byte-moving substrates.
///
/// `broadcast` receives the whole destination set of an
/// [`Action::Broadcast`] in one call, which is what lets the socket runtime
/// serialize the message once and fan the shared frame out
/// (`Transport::broadcast`); the default implementation delivers one clone
/// per destination for substrates without a shared-bytes fast path.
pub(crate) trait ReplicaSink {
    /// Delivers `message` to a single destination.
    fn send(&mut self, to: NodeId, message: Message);

    /// Delivers one `message` to every node in `to`.
    fn broadcast(&mut self, to: Vec<NodeId>, message: Message) {
        seemore_core::actions::fan_out(to, message, |peer, message| self.send(peer, message));
    }
}

/// The replica thread body: waits for commands with a deadline derived from
/// the earliest armed timer, fires due timers, and carries protocol actions
/// out through `sink`. Returns the core on shutdown so callers can inspect
/// execution histories and metrics.
///
/// `inbox`, when present, is a second queue carrying raw `(sender,
/// message)` traffic — the socket runtime points this directly at its
/// transport's decoded-message queue, so delivery skips the per-message
/// pump-thread hop (one context switch fewer per message on the hot path).
/// Control commands stay on `commands` and are drained with `try_recv`
/// every iteration; they are rare (crash / mode switch / shutdown), so the
/// worst case is one poll per message plus one per wait timeout.
pub(crate) fn run_replica_loop(
    mut replica: Box<dyn ReplicaProtocol>,
    commands: &Receiver<ReplicaCommand>,
    inbox: Option<&Receiver<(NodeId, Message)>>,
    start: StdInstant,
    mut sink: impl ReplicaSink,
) -> Box<dyn ReplicaProtocol> {
    /// Messages handled per wakeup before re-checking timers and control
    /// commands: enough to amortize the loop bookkeeping under load without
    /// starving timers.
    const DRAIN_BATCH: usize = 32;

    let mut timers: BTreeMap<Instant, Vec<Timer>> = BTreeMap::new();
    let mut armed: HashMap<Timer, Instant> = HashMap::new();
    let mut actions = replica.on_start(to_instant(start));
    loop {
        // Carry out the actions accumulated so far.
        for action in actions.drain(..) {
            match action {
                Action::Send { to, message } => sink.send(to, message),
                Action::Broadcast { to, message } => sink.broadcast(to, message),
                Action::SetTimer { timer, after } => {
                    let deadline = to_instant(start) + after;
                    armed.insert(timer, deadline);
                    timers.entry(deadline).or_default().push(timer);
                }
                Action::CancelTimer { timer } => {
                    armed.remove(&timer);
                }
                Action::Executed { .. } | Action::Violation(_) => {}
            }
        }
        // Control commands never block: drain whatever is pending.
        let mut shutdown = false;
        while let Ok(command) = commands.try_recv() {
            match command {
                ReplicaCommand::Deliver { from, message } => {
                    let now = to_instant(start);
                    actions.extend(replica.on_message(from, message, now));
                }
                ReplicaCommand::Crash => replica.crash(),
                ReplicaCommand::Recover(core) => {
                    replica = core;
                    timers.clear();
                    armed.clear();
                    let now = to_instant(start);
                    actions.extend(replica.on_start(now));
                }
                ReplicaCommand::ModeSwitch { mode } => {
                    let now = to_instant(start);
                    actions.extend(replica.request_mode_switch(mode, now));
                }
                ReplicaCommand::Shutdown => shutdown = true,
            }
        }
        if shutdown {
            return replica;
        }
        if !actions.is_empty() {
            continue;
        }
        // Wait until the next timer deadline (or traffic).
        let now = to_instant(start);
        let next_deadline = timers.keys().next().copied();
        let wait = match next_deadline {
            Some(deadline) if deadline > now => (deadline - now).to_std(),
            Some(_) => std::time::Duration::from_millis(0),
            None => std::time::Duration::from_millis(50),
        };
        // Block on the message source: the direct inbox when wired, the
        // command channel otherwise. After a successful receive, greedily
        // drain a bounded batch so the per-wakeup bookkeeping (instant
        // reads, timer scans) is amortized across messages.
        match inbox {
            Some(inbox) => match inbox.recv_timeout(wait) {
                Ok((from, message)) => {
                    let now = to_instant(start);
                    actions = replica.on_message(from, message, now);
                    for _ in 1..DRAIN_BATCH {
                        match inbox.try_recv() {
                            Ok((from, message)) => {
                                actions.extend(replica.on_message(from, message, now));
                            }
                            Err(_) => break,
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return replica,
            },
            None => match commands.recv_timeout(wait) {
                Ok(ReplicaCommand::Deliver { from, message }) => {
                    let now = to_instant(start);
                    actions = replica.on_message(from, message, now);
                }
                Ok(ReplicaCommand::Crash) => replica.crash(),
                Ok(ReplicaCommand::Recover(core)) => {
                    replica = core;
                    timers.clear();
                    armed.clear();
                    let now = to_instant(start);
                    actions = replica.on_start(now);
                }
                Ok(ReplicaCommand::ModeSwitch { mode }) => {
                    let now = to_instant(start);
                    actions = replica.request_mode_switch(mode, now);
                }
                Ok(ReplicaCommand::Shutdown) => return replica,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return replica,
            },
        }
        // Fire due timers.
        let now = to_instant(start);
        let due: Vec<Instant> = timers.range(..=now).map(|(t, _)| *t).collect();
        for deadline in due {
            for timer in timers.remove(&deadline).unwrap_or_default() {
                if armed.get(&timer) == Some(&deadline) {
                    armed.remove(&timer);
                    actions.extend(replica.on_timer(timer, now));
                }
            }
        }
    }
}

/// [`run_replica_loop`] without a direct inbox — the threaded runtime's
/// entry point, where all traffic arrives as [`ReplicaCommand::Deliver`].
pub(crate) fn run_replica(
    replica: Box<dyn ReplicaProtocol>,
    commands: &Receiver<ReplicaCommand>,
    start: StdInstant,
    sink: impl ReplicaSink,
) -> Box<dyn ReplicaProtocol> {
    run_replica_loop(replica, commands, None, start, sink)
}

/// How [`drive_client`] paces one closed-loop client.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DrivePlan {
    /// Number of operations to submit, one after another.
    pub requests: usize,
    /// Patience per request before retransmitting.
    pub timeout: Duration,
    /// The cluster's wall-clock epoch protocol instants are measured from.
    pub start: StdInstant,
    /// If set and passed while a request is still pending, the driver gives
    /// the request up and returns — the bound the scenario runner needs so a
    /// failure schedule that exceeds the deployment's fault tolerance cannot
    /// hang a wall-clock run forever.
    pub abandon_at: Option<StdInstant>,
}

/// Drives a closed-loop client on the calling thread: submits
/// `plan.requests` operations one after another, pumping replies through
/// the client core until each completes, retransmitting (and extending the
/// deadline) when the cluster goes quiet — protocols with a crashed primary
/// need the client's broadcast path.
///
/// `recv` waits up to the given duration for the next `(sender, message)`
/// pair addressed to this client; `send` carries the client's outgoing
/// messages; `make_op` is called with the request index to produce each
/// operation payload together with its read/write classification (reads
/// route through the client's fast path).
pub(crate) fn drive_client<C: ClientProtocol>(
    client: &mut C,
    plan: DrivePlan,
    mut recv: impl FnMut(std::time::Duration) -> Result<(NodeId, Message), RecvTimeoutError>,
    mut send: impl FnMut(NodeId, Message),
    mut make_op: impl FnMut(usize) -> (Vec<u8>, OpClass),
) -> Vec<ClientOutcome> {
    let start = plan.start;
    let mut outcomes = Vec::new();
    for index in 0..plan.requests {
        let now = to_instant(start);
        let (operation, class) = make_op(index);
        let actions = client.submit_op(operation, class, now);
        perform_client_actions(actions, &mut send);
        let mut deadline = StdInstant::now() + plan.timeout.to_std();
        while client.has_pending() {
            if plan.abandon_at.is_some_and(|at| StdInstant::now() >= at) {
                outcomes.extend(client.take_completed());
                return outcomes;
            }
            let remaining = deadline.saturating_duration_since(StdInstant::now());
            if remaining.is_zero() {
                // Retransmit and extend the deadline, so the loop goes back
                // to draining the inbox between retransmissions; protocols
                // with a crashed primary need the broadcast path, and the
                // replies it eventually produces must still be read.
                let actions = client.on_retransmit_timer(to_instant(start));
                perform_client_actions(actions, &mut send);
                deadline = StdInstant::now() + plan.timeout.to_std();
                continue;
            }
            match recv(remaining.min(std::time::Duration::from_millis(20))) {
                Ok((from, message)) => {
                    let now = to_instant(start);
                    let actions = client.on_message(from, message, now);
                    perform_client_actions(actions, &mut send);
                    // A quorum protocol's replies arrive as a burst (every
                    // replica answers); drain what is already queued in the
                    // same wakeup instead of paying one park/unpark cycle
                    // per reply.
                    for _ in 0..16 {
                        match recv(std::time::Duration::ZERO) {
                            Ok((from, message)) => {
                                let actions = client.on_message(from, message, now);
                                perform_client_actions(actions, &mut send);
                            }
                            Err(RecvTimeoutError::Timeout) => break,
                            Err(RecvTimeoutError::Disconnected) => {
                                outcomes.extend(client.take_completed());
                                return outcomes;
                            }
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return outcomes,
            }
        }
        outcomes.extend(client.take_completed());
    }
    outcomes
}

fn perform_client_actions(actions: Vec<Action>, send: &mut impl FnMut(NodeId, Message)) {
    for action in actions {
        match action {
            Action::Send { to, message } => send(to, message),
            Action::Broadcast { to, message } => {
                seemore_core::actions::fan_out(to, message, &mut *send);
            }
            _ => {}
        }
    }
}
