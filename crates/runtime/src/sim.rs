//! A deterministic discrete-event simulator for sans-IO protocol cores.
//!
//! The simulator owns a set of replica cores and client cores, an event
//! queue ordered by virtual time, and the network/CPU models from
//! `seemore-net`. Each node processes one message at a time: a message that
//! arrives while its destination is busy queues behind the in-progress work,
//! which is what makes throughput saturate as load increases — the effect
//! the paper's throughput/latency curves measure.
//!
//! Determinism: all randomness (latency jitter, link faults, workload
//! operations) comes from a single seeded RNG, and ties in virtual time are
//! broken by insertion order, so a given seed always reproduces the same
//! run.
//!
//! This is one of three execution substrates (see the crate docs): use the
//! simulator for reproducible figures and parameter sweeps in virtual time,
//! [`crate::threaded`] for real concurrency without IO, and
//! [`crate::socket`] when real codec and socket costs should be part of the
//! measurement.
//!
//! # Batching
//!
//! The unit of ordering is a batch of client requests (see
//! `seemore_core::batching`). The simulator needs no batching logic of its
//! own: the policy — static knobs or the adaptive AIMD controller — lives
//! in the replica cores, configured through `ProtocolConfig::batch` (or
//! `Scenario::with_batching` / `Scenario::with_adaptive_batching`), and its
//! latency trigger is the cores' generation-tagged `Timer::BatchFlush`,
//! which flows through the same `SetTimer` / timer-generation machinery as
//! every other protocol timer (the per-identity generations here and the
//! in-timer generation tag are independent defences: either alone suppresses
//! a stale flush). Because a cap-1 core never arms the flush timer or
//! buffers a request, runs with batching disabled are event-for-event
//! identical to the pre-batching simulator, and a fixed seed still
//! reproduces them exactly. The sizes the controller actually chose are
//! aggregated into `RunReport::batching` by [`Simulation::report`].

use crate::workload::Workload;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use seemore_core::actions::{Action, Timer};
use seemore_core::client::{ClientOutcome, ClientProtocol};
use seemore_core::protocol::ReplicaProtocol;
use seemore_net::{CpuModel, LatencyModel, LinkDecision, LinkFaults, Placement};
use seemore_types::{ClientId, Duration, Instant, Mode, NodeId, OpClass, ReplicaId};
use seemore_wire::{Message, WireSize};
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// Static configuration of a simulation.
#[derive(Debug, Clone, Default)]
pub struct SimConfig {
    /// Link latency model.
    pub latency: LatencyModel,
    /// Per-message processing cost model.
    pub cpu: CpuModel,
    /// Link fault injection.
    pub faults: LinkFaults,
    /// Endpoint placement (which cloud each replica lives in).
    pub placement: Placement,
    /// RNG seed; a given seed reproduces the same run exactly.
    pub seed: u64,
}

#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // Deliver dominates and is the common case
enum EventKind {
    Deliver {
        from: NodeId,
        to: NodeId,
        message: Message,
    },
    ReplicaTimer {
        replica: ReplicaId,
        timer: Timer,
        generation: u64,
    },
    ClientTimer {
        client: ClientId,
        generation: u64,
    },
    ClientSubmit {
        client: ClientId,
    },
    Crash {
        replica: ReplicaId,
    },
    Recover {
        replica: ReplicaId,
    },
    ModeSwitch {
        replica: ReplicaId,
        mode: Mode,
    },
}

struct Event {
    at: Instant,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// The discrete-event simulator.
pub struct Simulation {
    config: SimConfig,
    rng: SmallRng,
    now: Instant,
    next_seq: u64,
    events: BinaryHeap<Event>,
    replicas: BTreeMap<ReplicaId, Box<dyn ReplicaProtocol>>,
    /// Builders invoked by a scheduled [`EventKind::Recover`]: each returns
    /// a fresh core rebuilt from the replica's durable store, replacing the
    /// crashed one (the simulated analogue of a process restart).
    recover_factories: BTreeMap<ReplicaId, Box<dyn Fn() -> Box<dyn ReplicaProtocol> + Send>>,
    clients: BTreeMap<ClientId, Box<dyn ClientProtocol>>,
    workloads: BTreeMap<ClientId, Workload>,
    /// Whether each client keeps submitting a new request after completing
    /// the previous one (closed loop).
    closed_loop: bool,
    /// Whether read-classified operations take the client's fast path
    /// (true, the default) or are downgraded to the ordered path (used by
    /// the fast-path-off ablation arm).
    read_fast_path: bool,
    replica_timer_gen: HashMap<(ReplicaId, Timer), u64>,
    client_timer_gen: HashMap<ClientId, u64>,
    busy_until: HashMap<NodeId, Instant>,
    completions: Vec<ClientOutcome>,
    messages_delivered: u64,
    bytes_delivered: u64,
    submit_stop: Instant,
}

impl Simulation {
    /// Creates an empty simulation.
    pub fn new(config: SimConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        Simulation {
            config,
            rng,
            now: Instant::ZERO,
            next_seq: 0,
            events: BinaryHeap::new(),
            replicas: BTreeMap::new(),
            recover_factories: BTreeMap::new(),
            clients: BTreeMap::new(),
            workloads: BTreeMap::new(),
            closed_loop: true,
            read_fast_path: true,
            replica_timer_gen: HashMap::new(),
            client_timer_gen: HashMap::new(),
            busy_until: HashMap::new(),
            completions: Vec::new(),
            messages_delivered: 0,
            bytes_delivered: 0,
            submit_stop: Instant::from_nanos(u64::MAX),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Completed client requests so far.
    pub fn completions(&self) -> &[ClientOutcome] {
        &self.completions
    }

    /// Messages delivered so far.
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// Bytes delivered so far (wire-size model).
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// Access to a replica (for assertions in tests and examples).
    pub fn replica(&self, id: ReplicaId) -> &dyn ReplicaProtocol {
        self.replicas.get(&id).expect("unknown replica").as_ref()
    }

    /// Replica ids registered in the simulation.
    pub fn replica_ids(&self) -> Vec<ReplicaId> {
        self.replicas.keys().copied().collect()
    }

    /// Access to a client.
    pub fn client(&self, id: ClientId) -> &dyn ClientProtocol {
        self.clients.get(&id).expect("unknown client").as_ref()
    }

    /// Mutable access to the link fault model (to create partitions mid-run).
    pub fn faults_mut(&mut self) -> &mut LinkFaults {
        &mut self.config.faults
    }

    /// Disables the closed loop: clients submit only what the test schedules.
    pub fn set_closed_loop(&mut self, enabled: bool) {
        self.closed_loop = enabled;
    }

    /// Enables or disables the read fast path: when disabled, reads are
    /// downgraded to the ordered path at submission (every other aspect of
    /// the run — RNG draws, operation bytes — is identical, which is what
    /// makes fast-vs-ordered ablations apples-to-apples).
    pub fn set_read_fast_path(&mut self, enabled: bool) {
        self.read_fast_path = enabled;
    }

    /// Stops issuing new requests after `at` (in-flight requests still
    /// complete). Used to wind a run down cleanly.
    pub fn stop_submissions_at(&mut self, at: Instant) {
        self.submit_stop = at;
    }

    /// Registers a replica core.
    pub fn add_replica(&mut self, replica: Box<dyn ReplicaProtocol>) {
        self.replicas.insert(replica.id(), replica);
    }

    /// Registers a client core with its workload; the client submits its
    /// first request at `first_submit`.
    pub fn add_client<C: ClientProtocol + 'static>(
        &mut self,
        client: C,
        workload: Workload,
        first_submit: Instant,
    ) {
        let id = client.id();
        self.clients.insert(id, Box::new(client));
        self.workloads.insert(id, workload);
        self.push_event(first_submit, EventKind::ClientSubmit { client: id });
    }

    /// Schedules a crash (fail-stop) of `replica` at `at`.
    pub fn schedule_crash(&mut self, at: Instant, replica: ReplicaId) {
        self.push_event(at, EventKind::Crash { replica });
    }

    /// Registers the builder a scheduled recovery of `replica` uses to
    /// rebuild its core from the durable store.
    pub fn set_recover_factory(
        &mut self,
        replica: ReplicaId,
        factory: Box<dyn Fn() -> Box<dyn ReplicaProtocol> + Send>,
    ) {
        self.recover_factories.insert(replica, factory);
    }

    /// Schedules a restart of `replica` at `at`: its core is replaced by a
    /// fresh one from the registered factory (see
    /// [`set_recover_factory`](Self::set_recover_factory)) and `on_start`
    /// runs, announcing the rejoin. Timers armed by the previous incarnation
    /// are invalidated — a restarted process has no memory of them.
    pub fn schedule_recover(&mut self, at: Instant, replica: ReplicaId) {
        self.push_event(at, EventKind::Recover { replica });
    }

    /// Schedules a mode-switch announcement on `replica` at `at`.
    pub fn schedule_mode_switch(&mut self, at: Instant, replica: ReplicaId, mode: Mode) {
        self.push_event(at, EventKind::ModeSwitch { replica, mode });
    }

    fn push_event(&mut self, at: Instant, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Event { at, seq, kind });
    }

    /// Runs the simulation until virtual time `deadline` (inclusive of
    /// events scheduled exactly at the deadline).
    pub fn run_until(&mut self, deadline: Instant) {
        while let Some(event) = self.events.peek() {
            if event.at > deadline {
                break;
            }
            let event = self.events.pop().expect("peeked");
            self.now = event.at;
            self.handle(event.kind);
        }
        self.now = self.now.max(deadline);
    }

    /// Runs until the event queue drains completely (useful for small tests;
    /// closed-loop workloads never drain, so cap submissions first).
    pub fn run_to_idle(&mut self, max_events: u64) {
        let mut handled = 0u64;
        while let Some(event) = self.events.pop() {
            handled += 1;
            assert!(
                handled <= max_events,
                "simulation did not quiesce after {max_events} events"
            );
            self.now = event.at;
            self.handle(event.kind);
        }
    }

    /// Whether a timer identity is armed at most once for the life of a run
    /// (generation-tagged identities like `BatchFlush`). Re-armable
    /// identities must keep their generation entry so a stale queued event
    /// cannot collide with a fresh arming; single-shot identities can have
    /// it reclaimed on fire or cancel.
    fn timer_is_single_shot(timer: &Timer) -> bool {
        matches!(timer, Timer::BatchFlush { .. })
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::Deliver { from, to, message } => self.deliver(from, to, message),
            EventKind::ReplicaTimer {
                replica,
                timer,
                generation,
            } => {
                let current = self
                    .replica_timer_gen
                    .get(&(replica, timer))
                    .copied()
                    .unwrap_or(0);
                if current != generation {
                    return; // cancelled or re-armed
                }
                if Self::timer_is_single_shot(&timer) {
                    // A generation-tagged identity is armed exactly once;
                    // reclaim its map entry so the generation map does not
                    // grow with every flush timer ever armed.
                    self.replica_timer_gen.remove(&(replica, timer));
                }
                let now = self.now;
                let actions = match self.replicas.get_mut(&replica) {
                    Some(core) => core.on_timer(timer, now),
                    None => Vec::new(),
                };
                self.apply_actions(NodeId::Replica(replica), actions);
            }
            EventKind::ClientTimer { client, generation } => {
                let current = self.client_timer_gen.get(&client).copied().unwrap_or(0);
                if current != generation {
                    return;
                }
                let now = self.now;
                let actions = match self.clients.get_mut(&client) {
                    Some(core) => core.on_retransmit_timer(now),
                    None => Vec::new(),
                };
                self.apply_actions(NodeId::Client(client), actions);
            }
            EventKind::ClientSubmit { client } => self.client_submit(client),
            EventKind::Crash { replica } => {
                if let Some(core) = self.replicas.get_mut(&replica) {
                    core.crash();
                }
            }
            EventKind::Recover { replica } => {
                let Some(factory) = self.recover_factories.get(&replica) else {
                    return;
                };
                let mut core = factory();
                assert_eq!(core.id(), replica, "recover factory built the wrong core");
                // Invalidate every timer the dead incarnation armed: bumping
                // the generation makes pending events stale without colliding
                // with arms the new core performs.
                for ((r, _), generation) in self.replica_timer_gen.iter_mut() {
                    if *r == replica {
                        *generation += 1;
                    }
                }
                let now = self.now;
                let actions = core.on_start(now);
                self.replicas.insert(replica, core);
                self.apply_actions(NodeId::Replica(replica), actions);
            }
            EventKind::ModeSwitch { replica, mode } => {
                let now = self.now;
                let actions = match self.replicas.get_mut(&replica) {
                    Some(core) => core.request_mode_switch(mode, now),
                    None => Vec::new(),
                };
                self.apply_actions(NodeId::Replica(replica), actions);
            }
        }
    }

    fn client_submit(&mut self, client: ClientId) {
        if self.now > self.submit_stop {
            return;
        }
        let Some(workload) = self.workloads.get(&client) else {
            return;
        };
        let (op, class) = workload.next_classified(&mut self.rng);
        let class = if self.read_fast_path {
            class
        } else {
            OpClass::Write
        };
        let now = self.now;
        let Some(core) = self.clients.get_mut(&client) else {
            return;
        };
        if core.has_pending() {
            return;
        }
        let actions = core.submit_op(op, class, now);
        self.apply_actions(NodeId::Client(client), actions);
    }

    fn deliver(&mut self, from: NodeId, to: NodeId, message: Message) {
        self.messages_delivered += 1;
        self.bytes_delivered += message.wire_size() as u64;

        // The destination processes messages one at a time: processing starts
        // when both the message has arrived and the node is free.
        let cost = self.config.cpu.cost(&message);
        let start = self
            .now
            .max(self.busy_until.get(&to).copied().unwrap_or(Instant::ZERO));
        let done = start + cost;
        self.busy_until.insert(to, done);

        match to {
            NodeId::Replica(id) => {
                let Some(core) = self.replicas.get_mut(&id) else {
                    return;
                };
                let actions = core.on_message(from, message, done);
                self.apply_actions(to, actions);
            }
            NodeId::Client(id) => {
                let Some(core) = self.clients.get_mut(&id) else {
                    return;
                };
                let actions = core.on_message(from, message, done);
                // Collect completions and keep the closed loop going.
                let finished = core.take_completed();
                let had_completion = !finished.is_empty();
                self.completions.extend(finished);
                self.apply_actions(to, actions);
                if had_completion && self.closed_loop && done <= self.submit_stop {
                    self.push_event(done, EventKind::ClientSubmit { client: id });
                }
            }
        }
    }

    fn apply_actions(&mut self, from: NodeId, actions: Vec<Action>) {
        // A broadcast clones one signed message to many recipients; the sender
        // signs once and then only serializes per copy. Track which messages
        // (by kind and size) have already paid their signature cost in this
        // batch so later copies are charged serialization only.
        let mut signed_already: Vec<(seemore_wire::MessageKind, usize)> = Vec::new();
        for action in actions {
            match action {
                Action::Send { to, message } => {
                    let key = (message.kind(), message.wire_size());
                    let first_copy = !signed_already.contains(&key);
                    if first_copy {
                        signed_already.push(key);
                    }
                    self.send(from, to, message, first_copy);
                }
                Action::Broadcast { to, message } => {
                    // One signed message to many destinations: the first
                    // copy pays the signature cost, the rest pay
                    // serialization only — the CPU-model counterpart of the
                    // socket runtime's encode-once broadcast.
                    let key = (message.kind(), message.wire_size());
                    let mut first_copy = !signed_already.contains(&key);
                    if first_copy {
                        signed_already.push(key);
                    }
                    seemore_core::actions::fan_out(to, message, |peer, message| {
                        self.send(from, peer, message, first_copy);
                        first_copy = false;
                    });
                }
                Action::SetTimer { timer, after } => match from {
                    NodeId::Replica(id) => {
                        let generation = self.replica_timer_gen.entry((id, timer)).or_insert(0);
                        *generation += 1;
                        let generation = *generation;
                        self.push_event(
                            self.now + after,
                            EventKind::ReplicaTimer {
                                replica: id,
                                timer,
                                generation,
                            },
                        );
                    }
                    NodeId::Client(id) => {
                        let generation = self.client_timer_gen.entry(id).or_insert(0);
                        *generation += 1;
                        let generation = *generation;
                        self.push_event(
                            self.now + after,
                            EventKind::ClientTimer {
                                client: id,
                                generation,
                            },
                        );
                    }
                },
                Action::CancelTimer { timer } => match from {
                    NodeId::Replica(id) => {
                        if Self::timer_is_single_shot(&timer) {
                            // Removing the entry (value 1, the single arming)
                            // makes the pending event's generation check read
                            // 0 and skip, and the identity is never re-armed
                            // — so the map stays bounded instead of keeping a
                            // dead entry per cancelled flush timer.
                            self.replica_timer_gen.remove(&(id, timer));
                        } else {
                            *self.replica_timer_gen.entry((id, timer)).or_insert(0) += 1;
                        }
                    }
                    NodeId::Client(id) => {
                        *self.client_timer_gen.entry(id).or_insert(0) += 1;
                    }
                },
                Action::Executed { .. } | Action::Violation(_) => {}
            }
        }
    }

    fn send(&mut self, from: NodeId, to: NodeId, message: Message, first_copy: bool) {
        // Sending also occupies the sender: signing (first copy only) plus
        // serialization for every copy.
        let cost = if first_copy {
            self.config.cpu.cost(&message)
        } else {
            self.config.cpu.serialization_cost(&message)
        };
        let departure = self
            .now
            .max(self.busy_until.get(&from).copied().unwrap_or(Instant::ZERO))
            + cost;
        self.busy_until.insert(from, departure);

        match self.config.faults.decide(from, to, &mut self.rng) {
            LinkDecision::Drop => {}
            LinkDecision::Deliver {
                copies,
                extra_delay,
            } => {
                for _ in 0..copies {
                    let delay = self.config.latency.delay(
                        &self.config.placement,
                        from,
                        to,
                        message.wire_size(),
                        &mut self.rng,
                    );
                    let arrival = departure + delay + extra_delay;
                    self.push_event(
                        arrival,
                        EventKind::Deliver {
                            from,
                            to,
                            message: message.clone(),
                        },
                    );
                }
            }
        }
    }

    /// Merged metrics from every replica.
    pub fn merged_replica_metrics(&self) -> seemore_core::metrics::ReplicaMetrics {
        let mut merged = seemore_core::metrics::ReplicaMetrics::default();
        for replica in self.replicas.values() {
            merged.merge(replica.metrics());
        }
        merged
    }

    /// Total client retransmissions.
    pub fn total_retransmissions(&self) -> u64 {
        self.clients.values().map(|c| c.retransmissions()).sum()
    }

    /// Builds a [`crate::RunReport`] for the window `[measure_from, now]`.
    pub fn report(&self, measure_from: Instant, bucket: Duration) -> crate::RunReport {
        let mut report =
            crate::RunReport::from_outcomes(&self.completions, measure_from, self.now, bucket);
        let metrics = self.merged_replica_metrics();
        report.messages_delivered = self.messages_delivered;
        report.bytes_delivered = self.bytes_delivered;
        report.view_changes = metrics.view_changes_completed;
        report.mode_switches = metrics.mode_switches;
        report.retransmissions = self.total_retransmissions();
        report.batching = crate::report::BatchReport::from_telemetry(&metrics.batch);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seemore_app::NoopApp;
    use seemore_core::client::ClientCore;
    use seemore_core::config::ProtocolConfig;
    use seemore_core::replica::SeeMoReReplica;
    use seemore_crypto::KeyStore;
    use seemore_types::ClusterConfig;

    fn build_sim(mode: Mode, clients: u64) -> (Simulation, ClusterConfig) {
        let cluster = ClusterConfig::minimal(1, 1).unwrap();
        let keystore = KeyStore::generate(42, cluster.total_size(), clients);
        let config = SimConfig {
            latency: LatencyModel::same_region(),
            cpu: CpuModel::default(),
            faults: LinkFaults::none(),
            placement: Placement::hybrid(cluster),
            seed: 7,
        };
        let mut sim = Simulation::new(config);
        for replica in cluster.replicas() {
            sim.add_replica(Box::new(SeeMoReReplica::new(
                replica,
                cluster,
                ProtocolConfig::default(),
                keystore.clone(),
                mode,
                Box::new(NoopApp::new(0)),
            )));
        }
        for client in 0..clients {
            sim.add_client(
                ClientCore::new(
                    ClientId(client),
                    cluster,
                    keystore.clone(),
                    mode,
                    Duration::from_millis(50),
                ),
                Workload::micro_0_0(),
                Instant::from_nanos(client * 1_000),
            );
        }
        (sim, cluster)
    }

    #[test]
    fn closed_loop_clients_complete_many_requests() {
        let (mut sim, cluster) = build_sim(Mode::Lion, 2);
        sim.run_until(Instant::from_nanos(50_000_000)); // 50 ms of virtual time
        assert!(
            sim.completions().len() > 20,
            "expected steady progress, got {}",
            sim.completions().len()
        );
        // All replicas stayed in view 0 (no spurious view changes).
        for replica in cluster.replicas() {
            assert_eq!(sim.replica(replica).view(), seemore_types::View(0));
        }
        assert!(sim.messages_delivered() > 100);
        assert!(sim.bytes_delivered() > 0);
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let (mut a, _) = build_sim(Mode::Dog, 2);
        let (mut b, _) = build_sim(Mode::Dog, 2);
        a.run_until(Instant::from_nanos(20_000_000));
        b.run_until(Instant::from_nanos(20_000_000));
        assert_eq!(a.completions().len(), b.completions().len());
        assert_eq!(a.messages_delivered(), b.messages_delivered());
        assert_eq!(a.bytes_delivered(), b.bytes_delivered());
    }

    #[test]
    fn crash_of_the_primary_triggers_a_view_change_and_progress_resumes() {
        let (mut sim, cluster) = build_sim(Mode::Lion, 2);
        // Crash the view-0 primary after 10 ms.
        let primary = cluster.primary(Mode::Lion, seemore_types::View(0)).unwrap();
        sim.schedule_crash(Instant::from_nanos(10_000_000), primary);
        sim.run_until(Instant::from_nanos(2_000_000_000)); // 2 s
        let report = sim.report(Instant::ZERO, Duration::from_millis(10));
        assert!(
            report.view_changes > 0,
            "a view change should have completed"
        );
        // Requests completed both before and after the crash.
        let after_crash = sim
            .completions()
            .iter()
            .filter(|o| o.completed_at > Instant::from_nanos(1_000_000_000))
            .count();
        assert!(after_crash > 0, "no progress after the view change");
    }

    #[test]
    fn report_reflects_throughput_and_latency() {
        let (mut sim, _) = build_sim(Mode::Peacock, 4);
        sim.run_until(Instant::from_nanos(50_000_000));
        let report = sim.report(Instant::from_nanos(10_000_000), Duration::from_millis(5));
        assert!(report.completed > 0);
        assert!(report.throughput_kreqs > 0.0);
        assert!(report.avg_latency_ms > 0.0);
        assert!(report.p50_latency_ms <= report.p99_latency_ms);
        assert!(!report.timeline.is_empty());
    }

    #[test]
    fn flush_timer_generations_do_not_leak_map_entries() {
        // Every armed BatchFlush carries a fresh generation, i.e. a fresh
        // key in the simulator's timer-generation map. Those keys are
        // single-shot and must be reclaimed on fire/cancel, or a long
        // batched run grows the map by one dead entry per buffered batch.
        use seemore_core::config::{BatchPolicy, ProtocolConfig};

        let cluster = ClusterConfig::minimal(1, 1).unwrap();
        let keystore = KeyStore::generate(17, cluster.total_size(), 4);
        let config = SimConfig {
            latency: LatencyModel::same_region(),
            cpu: CpuModel::default(),
            faults: LinkFaults::none(),
            placement: Placement::hybrid(cluster),
            seed: 3,
        };
        let mut sim = Simulation::new(config);
        let pconfig = ProtocolConfig::default()
            .with_batch_policy(BatchPolicy::adaptive(16, Duration::from_micros(200)));
        for replica in cluster.replicas() {
            sim.add_replica(Box::new(SeeMoReReplica::new(
                replica,
                cluster,
                pconfig,
                keystore.clone(),
                Mode::Lion,
                Box::new(NoopApp::new(0)),
            )));
        }
        for client in 0..4 {
            sim.add_client(
                ClientCore::new(
                    ClientId(client),
                    cluster,
                    keystore.clone(),
                    Mode::Lion,
                    Duration::from_millis(50),
                ),
                Workload::micro_0_0(),
                Instant::from_nanos(client * 1_000),
            );
        }
        sim.run_until(Instant::from_nanos(100_000_000));
        let report = sim.report(Instant::ZERO, Duration::from_millis(10));
        assert!(report.batching.batches > 50, "batching was exercised");
        let live_flush_entries = sim
            .replica_timer_gen
            .keys()
            .filter(|(_, timer)| matches!(timer, Timer::BatchFlush { .. }))
            .count();
        assert!(
            live_flush_entries <= cluster.total_size() as usize,
            "{live_flush_entries} flush-timer generation entries survive \
             (at most one armed timer per replica should)"
        );
    }

    #[test]
    fn lossy_network_still_makes_progress() {
        let cluster = ClusterConfig::minimal(1, 1).unwrap();
        let keystore = KeyStore::generate(43, cluster.total_size(), 1);
        let config = SimConfig {
            latency: LatencyModel::same_region(),
            cpu: CpuModel::default(),
            faults: LinkFaults::chaotic(0.05, 0.05, 0.05),
            placement: Placement::hybrid(cluster),
            seed: 11,
        };
        let mut sim = Simulation::new(config);
        for replica in cluster.replicas() {
            sim.add_replica(Box::new(SeeMoReReplica::new(
                replica,
                cluster,
                ProtocolConfig::default(),
                keystore.clone(),
                Mode::Lion,
                Box::new(NoopApp::new(0)),
            )));
        }
        sim.add_client(
            ClientCore::new(
                ClientId(0),
                cluster,
                keystore,
                Mode::Lion,
                Duration::from_millis(20),
            ),
            Workload::micro_0_0(),
            Instant::ZERO,
        );
        sim.run_until(Instant::from_nanos(500_000_000));
        assert!(
            !sim.completions().is_empty(),
            "drops/duplicates/reordering must not prevent progress"
        );
    }
}
