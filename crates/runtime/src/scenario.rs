//! One-call experiment builders.
//!
//! A [`Scenario`] describes one point of the paper's evaluation — which
//! protocol, which failure bounds, how many clients, which payload sizes,
//! and any failure to inject — and [`Scenario::run`] assembles the cluster,
//! drives it and returns a [`RunReport`]. The benchmark harness sweeps
//! scenarios to regenerate every figure.
//!
//! By default scenarios run on the deterministic discrete-event simulator;
//! [`Scenario::with_runtime`] selects one of the concurrent substrates
//! instead — [`ThreadedCluster`] (in-memory channels) or [`SocketCluster`]
//! (real loopback TCP through the wire codec). On the concurrent runtimes
//! `duration`/`warmup` are wall-clock, closed-loop clients run on their own
//! threads, and the simulator-only knobs (latency, CPU and link-fault
//! models, Byzantine payload corruption timing, mode-switch schedules) are
//! ignored; primary crashes are honoured on every runtime.

use crate::driver::to_instant;
use crate::report::RunReport;
use crate::shard::ShardOverride;
use crate::sim::{SimConfig, Simulation};
use crate::socket::SocketCluster;
use crate::threaded::ThreadedCluster;
use crate::workload::Workload;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use seemore_app::{KvStore, NoopApp, StateMachine};
use seemore_baselines::{s_upright, BaselineClient, BaselineConfig, BftReplica, CftReplica};
use seemore_core::byzantine::{ByzantineBehavior, ByzantineReplica};
use seemore_core::client::{ClientCore, ClientOutcome, ClientProtocol};
use seemore_core::config::{BatchPolicy, ProtocolConfig};
use seemore_core::protocol::ReplicaProtocol;
use seemore_core::replica::SeeMoReReplica;
use seemore_crypto::KeyStore;
use seemore_net::{CpuModel, LatencyModel, LinkFaults, Placement};
use seemore_store::{Durability, FileStore, MemStore, StoreConfig};
use seemore_telemetry::RingRecorder;
use seemore_types::{ClientId, ClusterConfig, Duration, Instant, Mode, OpClass, ReplicaId};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant as StdInstant;

/// Which protocol a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// SeeMoRe in the Lion mode.
    SeeMoReLion,
    /// SeeMoRe in the Dog mode.
    SeeMoReDog,
    /// SeeMoRe in the Peacock mode.
    SeeMoRePeacock,
    /// The crash fault-tolerant baseline (Paxos), sized for `f = c + m`.
    Cft,
    /// The Byzantine fault-tolerant baseline (PBFT), sized for `f = c + m`.
    Bft,
    /// The S-UpRight hybrid baseline (PBFT agreement over `3m + 2c + 1`).
    SUpright,
}

impl ProtocolKind {
    /// Every protocol line plotted in the paper's figures, in plot order.
    pub const ALL: [ProtocolKind; 6] = [
        ProtocolKind::Bft,
        ProtocolKind::SUpright,
        ProtocolKind::SeeMoRePeacock,
        ProtocolKind::SeeMoReDog,
        ProtocolKind::SeeMoReLion,
        ProtocolKind::Cft,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::SeeMoReLion => "Lion",
            ProtocolKind::SeeMoReDog => "Dog",
            ProtocolKind::SeeMoRePeacock => "Peacock",
            ProtocolKind::Cft => "CFT",
            ProtocolKind::Bft => "BFT",
            ProtocolKind::SUpright => "S-UpRight",
        }
    }

    /// The SeeMoRe mode, if this is a SeeMoRe line.
    pub fn seemore_mode(self) -> Option<Mode> {
        match self {
            ProtocolKind::SeeMoReLion => Some(Mode::Lion),
            ProtocolKind::SeeMoReDog => Some(Mode::Dog),
            ProtocolKind::SeeMoRePeacock => Some(Mode::Peacock),
            _ => None,
        }
    }

    /// Total number of replicas this protocol deploys for `(c, m)`.
    pub fn network_size(self, c: u32, m: u32) -> u32 {
        match self {
            ProtocolKind::SeeMoReLion
            | ProtocolKind::SeeMoReDog
            | ProtocolKind::SeeMoRePeacock
            | ProtocolKind::SUpright => 3 * m + 2 * c + 1,
            ProtocolKind::Cft => 2 * (c + m) + 1,
            ProtocolKind::Bft => 3 * (c + m) + 1,
        }
    }
}

/// Which durable store backs every replica (see [`seemore_store`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum DurabilityKind {
    /// No persistence (the default): every core holds the allocation-free
    /// `NullStore` and runs bit-identical to a build without the seam.
    #[default]
    None,
    /// The in-memory store with the real byte-level framing — what
    /// [`Scenario::with_crash_recover`] enables, and what simulated and
    /// in-process restarts recover from.
    Memory,
    /// Real files under `<dir>/replica-<id>/` with real `fsync` (the
    /// store's default batched policy).
    File(PathBuf),
}

/// One crash-and-rejoin entry of a [`Scenario::with_crash_recover`]
/// schedule: kill the replica at `crash_at`, then restart it at
/// `recover_at` from whatever its durable store holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashRecover {
    /// Which replica to restart; `None` targets the view-0 primary.
    pub replica: Option<ReplicaId>,
    /// When to kill it.
    pub crash_at: Instant,
    /// When to bring it back from its durable store.
    pub recover_at: Instant,
}

impl CrashRecover {
    /// Crash-and-recover the view-0 primary.
    pub fn primary(crash_at: Instant, recover_at: Instant) -> Self {
        CrashRecover {
            replica: None,
            crash_at,
            recover_at,
        }
    }

    /// Crash-and-recover a specific replica.
    pub fn replica(replica: ReplicaId, crash_at: Instant, recover_at: Instant) -> Self {
        CrashRecover {
            replica: Some(replica),
            crash_at,
            recover_at,
        }
    }
}

/// Which execution substrate a scenario runs on (see the crate docs for
/// guidance on choosing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeKind {
    /// The deterministic discrete-event simulator (virtual time; the
    /// default, and what regenerates the paper's figures).
    #[default]
    Simulated,
    /// Thread-per-replica over in-memory channels (wall-clock time, no
    /// serialization).
    Threaded,
    /// Thread-per-replica over real loopback TCP through the wire codec
    /// (wall-clock time; reported bytes really crossed sockets), carried by
    /// the thread-per-peer mesh — the transport baseline.
    Socket,
    /// Like [`Socket`](Self::Socket), but carried by the reactor transport:
    /// a fixed pool of epoll event loops drives every connection, and (with
    /// [`Scenario::with_client_mux`]) clients multiplex over shared
    /// per-replica connections instead of private listeners.
    Reactor,
}

impl RuntimeKind {
    /// Display name for reports and benches.
    pub fn name(self) -> &'static str {
        match self {
            RuntimeKind::Simulated => "simulated",
            RuntimeKind::Threaded => "threaded",
            RuntimeKind::Socket => "socket",
            RuntimeKind::Reactor => "reactor",
        }
    }
}

/// A fully specified experiment.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Crash-fault bound `c`.
    pub crash_faults: u32,
    /// Byzantine-fault bound `m`.
    pub byzantine_faults: u32,
    /// Number of closed-loop clients.
    pub clients: u32,
    /// Request payload size in bytes.
    pub request_size: usize,
    /// Reply payload size in bytes.
    pub reply_size: usize,
    /// Total simulated run length.
    pub duration: Duration,
    /// Warm-up excluded from the measured window.
    pub warmup: Duration,
    /// Timeline bucket width (Figure 4).
    pub timeline_bucket: Duration,
    /// RNG seed.
    pub seed: u64,
    /// Link latency model.
    pub latency: LatencyModel,
    /// CPU cost model.
    pub cpu: CpuModel,
    /// Link fault injection.
    pub faults: LinkFaults,
    /// Checkpoint period (requests between checkpoints).
    pub checkpoint_period: u64,
    /// The request-batching policy every primary runs: either the static
    /// `max_batch` / `max_delay` knobs or the adaptive AIMD controller
    /// (see [`seemore_core::batching`]). Applies to SeeMoRe in every mode
    /// and to all baselines, so comparisons stay apples-to-apples.
    pub batch: BatchPolicy,
    /// Protocol timeouts.
    pub request_timeout: Duration,
    /// If set, crash the view-0 primary at this instant (Figure 4).
    pub crash_primary_at: Option<Instant>,
    /// Which durable store backs every replica ([`DurabilityKind::None`] by
    /// default; [`Scenario::with_crash_recover`] auto-enables `Memory`).
    pub durability: DurabilityKind,
    /// Crash-and-rejoin schedule: each entry kills a replica and later
    /// restarts it from its durable store, on every runtime.
    pub crash_recover: Vec<CrashRecover>,
    /// If set, announce a switch to this mode at the given instant
    /// (SeeMoRe only).
    pub mode_switch: Option<(Instant, Mode)>,
    /// The per-client operation generator. `None` (the default) runs the
    /// paper's micro-benchmark at [`request_size`](Self::request_size)
    /// against the no-op application; `Some(Workload::Kv { .. })` runs
    /// key-value operations (with its `read_fraction`) against the
    /// replicated KV store, on every runtime.
    pub workload: Option<Workload>,
    /// Whether read-classified operations take the mode-aware fast path
    /// (true, the default) or are downgraded to the ordered path (the
    /// ordered-everything baseline arm of the read ablation).
    pub read_fast_path: bool,
    /// Whether socket-runtime broadcasts use the transport's encode-once
    /// shared-frame fast path (true, the default). Disabling re-encodes the
    /// message per destination — the ablation's "PR 2 behaviour" arm. No
    /// effect on the other runtimes (they never serialize).
    pub encode_once: bool,
    /// On the reactor runtime, multiplex every client over the hub's shared
    /// per-replica connections instead of one listener per client (false,
    /// the default). No effect on the other runtimes.
    pub client_mux: bool,
    /// Whether replicas memoize verified signatures (true, the default; see
    /// [`ProtocolConfig::verify_memo`]). Applies on every runtime.
    pub verify_memo: bool,
    /// Number of public-cloud replicas wrapped with this Byzantine
    /// behaviour (must stay ≤ `m` for guarantees to hold).
    pub byzantine_replicas: u32,
    /// The behaviour applied to those replicas.
    pub byzantine_behavior: ByzantineBehavior,
    /// Which execution substrate to run on.
    pub runtime: RuntimeKind,
    /// Whether every replica and client records a structured protocol trace
    /// (false, the default). With tracing on, the returned [`RunReport`]
    /// carries the per-phase latency breakdown, per-replica health rollups
    /// and the raw event trace; with it off, cores run the provably
    /// zero-cost [`seemore_telemetry::NullRecorder`].
    pub tracing: bool,
    /// Number of independent agreement groups (shards) fronted by the shard
    /// router. `1` (the default) runs the classic single-group deployment
    /// through code paths bit-identical to an unsharded build; `n > 1`
    /// partitions the keyspace with [`seemore_types::ShardMap::uniform`] and
    /// runs one full cluster per group (see [`crate::shard`]).
    pub shards: u32,
    /// Per-shard overrides of the protocol, crash schedule and mode-switch
    /// schedule, addressed by group (sharded runs only).
    pub shard_overrides: Vec<ShardOverride>,
    /// Test knob for the redirect path (sharded concurrent runs only): seed
    /// every client's shard router with a stale single-group map, so each
    /// client's first operation is misrouted, refused with a signed
    /// redirect, re-routed with the adopted authoritative map and
    /// resubmitted to the owner group.
    pub stale_client_map: bool,
}

impl Scenario {
    /// A scenario with the defaults used throughout the evaluation:
    /// 0/0 payloads, same-region latency, 16 clients, 400 ms of simulated
    /// time with a 100 ms warm-up.
    pub fn new(protocol: ProtocolKind, c: u32, m: u32) -> Self {
        Scenario {
            protocol,
            crash_faults: c,
            byzantine_faults: m,
            clients: 16,
            request_size: 0,
            reply_size: 0,
            duration: Duration::from_millis(400),
            warmup: Duration::from_millis(100),
            timeline_bucket: Duration::from_millis(5),
            seed: 0xC0FFEE,
            latency: LatencyModel::same_region(),
            cpu: CpuModel::default(),
            faults: LinkFaults::none(),
            checkpoint_period: 1_000,
            batch: BatchPolicy::fixed(1, Duration::from_micros(100)),
            request_timeout: Duration::from_millis(20),
            crash_primary_at: None,
            durability: DurabilityKind::None,
            crash_recover: Vec::new(),
            mode_switch: None,
            workload: None,
            read_fast_path: true,
            encode_once: true,
            client_mux: false,
            verify_memo: true,
            byzantine_replicas: 0,
            byzantine_behavior: ByzantineBehavior::Honest,
            runtime: RuntimeKind::Simulated,
            tracing: false,
            shards: 1,
            shard_overrides: Vec::new(),
            stale_client_map: false,
        }
    }

    /// Fronts `shards` independent agreement groups with the shard router
    /// (1, the default, is the classic single-group deployment). Each group
    /// runs its own full cluster — replicas, primary, view changes and
    /// checkpoints are all group-local — over its slice of the keyspace.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Adds a per-shard override (protocol, crash schedule, mode switch) for
    /// one group of a sharded run.
    pub fn with_shard_override(mut self, shard_override: ShardOverride) -> Self {
        self.shard_overrides.push(shard_override);
        self
    }

    /// Crashes the view-0 primary of `group` at `at` (sharded runs; the
    /// other groups are untouched).
    pub fn with_shard_crash(self, group: seemore_types::GroupId, at: Instant) -> Self {
        self.with_shard_override(ShardOverride::for_group(group).crash_primary_at(at))
    }

    /// Announces a mode switch on `group` at `at` (sharded SeeMoRe runs; the
    /// other groups are untouched).
    pub fn with_shard_mode_switch(
        self,
        group: seemore_types::GroupId,
        at: Instant,
        mode: Mode,
    ) -> Self {
        self.with_shard_override(ShardOverride::for_group(group).mode_switch(at, mode))
    }

    /// Enables the stale-client-map knob (see [`Scenario::stale_client_map`]).
    pub fn with_stale_client_map(mut self, enabled: bool) -> Self {
        self.stale_client_map = enabled;
        self
    }

    /// Enables or disables structured protocol tracing (disabled by
    /// default). See [`Scenario::tracing`].
    pub fn with_tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Selects the execution substrate (simulator, threaded, or sockets).
    pub fn with_runtime(mut self, runtime: RuntimeKind) -> Self {
        self.runtime = runtime;
        self
    }

    /// Sets the number of closed-loop clients.
    pub fn with_clients(mut self, clients: u32) -> Self {
        self.clients = clients;
        self
    }

    /// Sets the request/reply payload sizes in bytes (the paper's `x/y`
    /// micro-benchmarks use 0 or 4096).
    pub fn with_payload(mut self, request: usize, reply: usize) -> Self {
        self.request_size = request;
        self.reply_size = reply;
        self
    }

    /// Sets the simulated duration and warm-up.
    pub fn with_duration(mut self, duration: Duration, warmup: Duration) -> Self {
        self.duration = duration;
        self.warmup = warmup;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Crashes the view-0 primary at `at` (the Figure 4 experiment).
    pub fn with_primary_crash(mut self, at: Instant) -> Self {
        self.crash_primary_at = Some(at);
        self
    }

    /// Selects the durable store backing every replica (see
    /// [`DurabilityKind`]). `None`, the default, keeps cores on the
    /// allocation-free null store.
    pub fn with_durability(mut self, durability: DurabilityKind) -> Self {
        self.durability = durability;
        self
    }

    /// Adds a crash-and-rejoin entry: the scheduled replica is killed at
    /// `schedule.crash_at` and restarted at `schedule.recover_at` from its
    /// durable store (last persisted checkpoint plus the WAL suffix), after
    /// which it announces the restart and rejoins via state transfer.
    /// Honoured on every runtime — a deterministic restart on the
    /// simulator, a real core teardown and reload on the concurrent ones.
    /// Enables [`DurabilityKind::Memory`] if no store was selected yet.
    pub fn with_crash_recover(mut self, schedule: CrashRecover) -> Self {
        if self.durability == DurabilityKind::None {
            self.durability = DurabilityKind::Memory;
        }
        self.crash_recover.push(schedule);
        self
    }

    /// Announces a mode switch at `at` (SeeMoRe only).
    pub fn with_mode_switch(mut self, at: Instant, mode: Mode) -> Self {
        self.mode_switch = Some((at, mode));
        self
    }

    /// Uses an explicit workload generator (e.g. [`Workload::kv`] with a
    /// read fraction) instead of the default micro-benchmark. KV workloads
    /// run against the replicated [`KvStore`]; micro workloads against the
    /// no-op application.
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Enables or disables the read-only fast path (enabled by default).
    /// With the fast path off, reads are downgraded to the ordered path at
    /// submission; the RNG draws and operation bytes are identical, so the
    /// two arms differ only in how reads travel.
    pub fn with_read_fast_path(mut self, enabled: bool) -> Self {
        self.read_fast_path = enabled;
        self
    }

    /// Enables or disables the socket runtime's encode-once broadcast
    /// (enabled by default; the hot-path ablation's toggle).
    pub fn with_encode_once(mut self, enabled: bool) -> Self {
        self.encode_once = enabled;
        self
    }

    /// Enables or disables client multiplexing on the reactor runtime
    /// (disabled by default): with it, every client shares the hub's one
    /// connection per replica instead of owning a listener and a mesh of
    /// private sockets.
    pub fn with_client_mux(mut self, enabled: bool) -> Self {
        self.client_mux = enabled;
        self
    }

    /// Enables or disables the verified-signature memo on every replica
    /// (enabled by default; the hot-path ablation's toggle).
    pub fn with_verify_memo(mut self, enabled: bool) -> Self {
        self.verify_memo = enabled;
        self
    }

    /// The effective workload generator for this scenario.
    pub fn workload(&self) -> Workload {
        self.workload.clone().unwrap_or(Workload::Micro {
            request_size: self.request_size,
        })
    }

    /// The application instance every replica runs: the replicated KV store
    /// under a KV workload, the paper's no-op micro-benchmark app otherwise.
    fn make_app(&self) -> Box<dyn StateMachine> {
        let mut workload = self.workload();
        while let Workload::Sharded { inner, .. } = workload {
            workload = *inner;
        }
        match workload {
            Workload::Kv { .. } => Box::new(KvStore::new()),
            Workload::Micro { .. } => Box::new(NoopApp::new(self.reply_size)),
            Workload::Sharded { .. } => unreachable!("unwrapped above"),
        }
    }

    /// Like [`make_app`](Self::make_app), but as an owned callable a
    /// recover factory can keep: every restart needs a fresh application
    /// instance for the recovered snapshot to land in.
    fn app_factory(&self) -> Arc<dyn Fn() -> Box<dyn StateMachine> + Send + Sync> {
        let mut workload = self.workload();
        while let Workload::Sharded { inner, .. } = workload {
            workload = *inner;
        }
        match workload {
            Workload::Kv { .. } => Arc::new(|| Box::new(KvStore::new())),
            Workload::Micro { .. } => {
                let reply_size = self.reply_size;
                Arc::new(move || Box::new(NoopApp::new(reply_size)))
            }
            Workload::Sharded { .. } => unreachable!("unwrapped above"),
        }
    }

    /// The durable store for one replica, or `None` when durability is off.
    fn make_store(&self, replica: ReplicaId) -> Option<Arc<dyn Durability>> {
        match &self.durability {
            DurabilityKind::None => None,
            DurabilityKind::Memory => Some(Arc::new(MemStore::new(StoreConfig::default()))),
            DurabilityKind::File(dir) => {
                let path = dir.join(format!("replica-{}", replica.0));
                let store =
                    FileStore::open(&path, StoreConfig::default()).expect("open durable store dir");
                Some(Arc::new(store))
            }
        }
    }

    /// Uses a custom latency model (e.g. geo-separated clouds).
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Uses a custom CPU model (e.g. free crypto for ablations).
    pub fn with_cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// Injects link faults.
    pub fn with_link_faults(mut self, faults: LinkFaults) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the checkpoint period.
    pub fn with_checkpoint_period(mut self, period: u64) -> Self {
        self.checkpoint_period = period;
        self
    }

    /// Sets a *static* request-batching policy: batches of up to
    /// `max_batch` requests, with a partial batch flushed after
    /// `batch_delay`. Applies to SeeMoRe in every mode and to all
    /// baselines, so comparisons stay apples-to-apples. `with_batching(1, _)`
    /// reproduces unbatched agreement exactly.
    pub fn with_batching(mut self, max_batch: usize, batch_delay: Duration) -> Self {
        self.batch = BatchPolicy::fixed(max_batch, batch_delay);
        self
    }

    /// Sets the *adaptive* request-batching policy: the effective batch cap
    /// grows toward `ceiling` under load and decays toward 1 when idle,
    /// with flush delays bounded by `max_delay`. The chosen sizes are
    /// reported in [`RunReport::batching`].
    pub fn with_adaptive_batching(mut self, ceiling: usize, max_delay: Duration) -> Self {
        self.batch = BatchPolicy::adaptive(ceiling, max_delay);
        self
    }

    /// Sets an arbitrary batching policy.
    pub fn with_batch_policy(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Wraps `count` public-cloud replicas with the given Byzantine
    /// behaviour (SeeMoRe and BFT-style baselines).
    pub fn with_byzantine(mut self, count: u32, behavior: ByzantineBehavior) -> Self {
        self.byzantine_replicas = count;
        self.byzantine_behavior = behavior;
        self
    }

    pub(crate) fn protocol_config(&self) -> ProtocolConfig {
        ProtocolConfig {
            checkpoint_period: self.checkpoint_period,
            high_water_mark: self.checkpoint_period.saturating_mul(4).max(64),
            request_timeout: self.request_timeout,
            view_change_timeout: self.request_timeout.mul(2),
            client_timeout: self.request_timeout.mul(2),
            batch: self.batch,
            verify_memo: self.verify_memo,
        }
    }

    /// Builds the cluster, runs it on the selected runtime and returns the
    /// report.
    pub fn run(&self) -> RunReport {
        if self.shards > 1 {
            return crate::shard::run_sharded(self);
        }
        match self.runtime {
            RuntimeKind::Simulated => {
                let (mut sim, primary, trace) = self.build_traced();
                if let Some(at) = self.crash_primary_at {
                    sim.schedule_crash(at, primary);
                }
                sim.run_until(Instant::ZERO + self.duration);
                let mut report = sim.report(Instant::ZERO + self.warmup, self.timeline_bucket);
                trace.attach(&mut report, self.timeline_bucket);
                report
            }
            kind => self.run_concurrent(kind),
        }
    }

    /// Builds the simulation without running it (used by tests and examples
    /// that want to inspect intermediate state). Returns the simulation and
    /// the id of the view-0 primary.
    pub fn build(&self) -> (Simulation, ReplicaId) {
        let (sim, primary, _) = self.build_traced();
        (sim, primary)
    }

    /// [`Scenario::build`] plus the live trace-ring handles, so a caller that
    /// runs the simulation itself can still drain the trace afterwards.
    fn build_traced(&self) -> (Simulation, ReplicaId, TraceHandles) {
        let cores = self.build_cores();
        let config = SimConfig {
            latency: self.latency,
            cpu: self.cpu,
            faults: self.faults.clone(),
            placement: cores.placement,
            seed: self.seed,
        };
        let mut sim = Simulation::new(config);
        sim.set_read_fast_path(self.read_fast_path);
        for replica in cores.replicas {
            sim.add_replica(replica);
        }
        for (index, client) in cores.clients.into_iter().enumerate() {
            sim.add_client(
                client,
                self.workload(),
                Instant::from_nanos(index as u64 * 5_000),
            );
        }
        if let (Some((at, target_mode)), Some(announcer)) =
            (self.mode_switch, cores.mode_switch_announcer)
        {
            sim.schedule_mode_switch(at, announcer, target_mode);
        }
        for entry in &self.crash_recover {
            let replica = entry.replica.unwrap_or(cores.primary);
            let Some(factory) = cores.recover_factories.get(&replica) else {
                continue;
            };
            let factory = factory.clone();
            sim.set_recover_factory(replica, Box::new(move || factory()));
            sim.schedule_crash(entry.crash_at, replica);
            sim.schedule_recover(entry.recover_at, replica);
        }
        (sim, cores.primary, cores.trace)
    }

    /// Assembles the replica and client cores for this scenario,
    /// independently of the runtime that will drive them.
    pub(crate) fn build_cores(&self) -> CoreSet {
        let c = self.crash_faults;
        let m = self.byzantine_faults;
        let pconfig = self.protocol_config();
        let client_timeout = pconfig.client_timeout;
        let mut trace = TraceHandles::default();
        let mut recover_factories: BTreeMap<ReplicaId, RecoverFactory> = BTreeMap::new();

        match self.protocol.seemore_mode() {
            Some(mode) => {
                let cluster = ClusterConfig::minimal(c, m).expect("valid SeeMoRe cluster");
                let keystore =
                    KeyStore::generate(self.seed, cluster.total_size(), u64::from(self.clients));
                // The last `byzantine_replicas` public replicas misbehave.
                let byzantine_cutoff = cluster.total_size().saturating_sub(self.byzantine_replicas);
                let mut replicas: Vec<Box<dyn ReplicaProtocol>> = Vec::new();
                for replica in cluster.replicas() {
                    let mut core = SeeMoReReplica::new(
                        replica,
                        cluster,
                        pconfig,
                        keystore.clone(),
                        mode,
                        self.make_app(),
                    );
                    let recorder = trace.for_replica(self.tracing, replica);
                    if let Some(recorder) = recorder.clone() {
                        core.set_recorder(recorder);
                    }
                    if let Some(store) = self.make_store(replica) {
                        core.set_store(store.clone());
                        let app = self.app_factory();
                        let keystore = keystore.clone();
                        // A restarted replica always comes back honest: the
                        // Byzantine wrapper models live misbehaviour, not a
                        // corrupted store.
                        recover_factories.insert(
                            replica,
                            Arc::new(move || {
                                let mut core = SeeMoReReplica::recover(
                                    replica,
                                    cluster,
                                    pconfig,
                                    keystore.clone(),
                                    mode,
                                    app(),
                                    store.clone(),
                                );
                                if let Some(recorder) = recorder.clone() {
                                    core.set_recorder(recorder);
                                }
                                Box::new(core) as Box<dyn ReplicaProtocol>
                            }),
                        );
                    }
                    if replica.0 >= byzantine_cutoff && !cluster.is_trusted(replica) {
                        replicas.push(Box::new(ByzantineReplica::new(
                            core,
                            self.byzantine_behavior,
                        )));
                    } else {
                        replicas.push(Box::new(core));
                    }
                }
                let clients = (0..u64::from(self.clients))
                    .map(|client| {
                        let mut core = ClientCore::new(
                            ClientId(client),
                            cluster,
                            keystore.clone(),
                            mode,
                            client_timeout,
                        );
                        if let Some(recorder) = trace.for_client(self.tracing) {
                            core.set_recorder(recorder);
                        }
                        Box::new(core) as Box<dyn ClientProtocol>
                    })
                    .collect();
                let mode_switch_announcer = self.mode_switch.and_then(|(_, target_mode)| {
                    seemore_core::replica::mode_switch_announcer(
                        &cluster,
                        seemore_types::View(1),
                        target_mode,
                    )
                });
                CoreSet {
                    replicas,
                    clients,
                    placement: Placement::hybrid(cluster),
                    primary: cluster
                        .primary(mode, seemore_types::View(0))
                        .expect("view-0 primary"),
                    mode_switch_announcer,
                    trace,
                    keystore,
                    recover_factories,
                }
            }
            None => {
                let config = match self.protocol {
                    ProtocolKind::Cft => BaselineConfig::cft(c + m),
                    ProtocolKind::Bft => BaselineConfig::bft(c + m),
                    ProtocolKind::SUpright => s_upright(c, m),
                    _ => unreachable!("SeeMoRe handled above"),
                };
                let keystore =
                    KeyStore::generate(self.seed, config.network_size, u64::from(self.clients));
                let byzantine_cutoff = config.network_size.saturating_sub(self.byzantine_replicas);
                let mut replicas: Vec<Box<dyn ReplicaProtocol>> = Vec::new();
                for replica in config.replicas() {
                    match self.protocol {
                        ProtocolKind::Cft => {
                            let mut core =
                                CftReplica::new(replica, config, pconfig, self.make_app());
                            let recorder = trace.for_replica(self.tracing, replica);
                            if let Some(recorder) = recorder.clone() {
                                core.set_recorder(recorder);
                            }
                            if let Some(store) = self.make_store(replica) {
                                core.set_store(store.clone());
                                let app = self.app_factory();
                                recover_factories.insert(
                                    replica,
                                    Arc::new(move || {
                                        let mut core = CftReplica::recover(
                                            replica,
                                            config,
                                            pconfig,
                                            app(),
                                            store.clone(),
                                        );
                                        if let Some(recorder) = recorder.clone() {
                                            core.set_recorder(recorder);
                                        }
                                        Box::new(core) as Box<dyn ReplicaProtocol>
                                    }),
                                );
                            }
                            replicas.push(Box::new(core));
                        }
                        _ => {
                            let mut core = BftReplica::new(
                                replica,
                                config,
                                pconfig,
                                keystore.clone(),
                                self.make_app(),
                            );
                            let recorder = trace.for_replica(self.tracing, replica);
                            if let Some(recorder) = recorder.clone() {
                                core.set_recorder(recorder);
                            }
                            if let Some(store) = self.make_store(replica) {
                                core.set_store(store.clone());
                                let app = self.app_factory();
                                let keystore = keystore.clone();
                                recover_factories.insert(
                                    replica,
                                    Arc::new(move || {
                                        let mut core = BftReplica::recover(
                                            replica,
                                            config,
                                            pconfig,
                                            keystore.clone(),
                                            app(),
                                            store.clone(),
                                        );
                                        if let Some(recorder) = recorder.clone() {
                                            core.set_recorder(recorder);
                                        }
                                        Box::new(core) as Box<dyn ReplicaProtocol>
                                    }),
                                );
                            }
                            if replica.0 >= byzantine_cutoff && replica.0 != 0 {
                                replicas.push(Box::new(ByzantineReplica::new(
                                    core,
                                    self.byzantine_behavior,
                                )));
                            } else {
                                replicas.push(Box::new(core));
                            }
                        }
                    }
                }
                let clients = (0..u64::from(self.clients))
                    .map(|client| {
                        let mut core = BaselineClient::new(
                            ClientId(client),
                            config,
                            keystore.clone(),
                            client_timeout,
                        );
                        if let Some(recorder) = trace.for_client(self.tracing) {
                            core.set_recorder(recorder);
                        }
                        Box::new(core) as Box<dyn ClientProtocol>
                    })
                    .collect();
                CoreSet {
                    replicas,
                    clients,
                    placement: Placement::flat(),
                    primary: config.primary(seemore_types::View(0)),
                    mode_switch_announcer: None,
                    trace,
                    keystore,
                    recover_factories,
                }
            }
        }
    }

    /// Runs the scenario on a concurrent runtime (threaded or sockets):
    /// closed-loop clients on their own OS threads against real replica
    /// threads, for `duration` of wall-clock time.
    pub(crate) fn run_concurrent(&self, kind: RuntimeKind) -> RunReport {
        let mut cores = self.build_cores();
        let recover_factories = std::mem::take(&mut cores.recover_factories);
        let client_ids: Vec<ClientId> = cores.clients.iter().map(|c| c.id()).collect();
        let primary = cores.primary;
        let patience = self.protocol_config().client_timeout;
        let cluster = match kind {
            RuntimeKind::Threaded => {
                AnyCluster::Threaded(ThreadedCluster::spawn(cores.replicas, &client_ids))
            }
            RuntimeKind::Socket | RuntimeKind::Reactor => AnyCluster::Socket(
                SocketCluster::spawn_with(
                    cores.replicas,
                    &client_ids,
                    crate::socket::SocketOptions {
                        encode_once: self.encode_once,
                        transport: match kind {
                            RuntimeKind::Reactor => crate::socket::SocketTransport::Reactor,
                            _ => crate::socket::SocketTransport::ThreadPerPeer,
                        },
                        client_mux: self.client_mux,
                    },
                )
                .expect("bind loopback TCP sockets"),
            ),
            RuntimeKind::Simulated => unreachable!("handled by Scenario::run"),
        };
        // Measure against the cluster's own clock epoch — the one outcome
        // timestamps, timers and the crash schedule are all stamped with —
        // so socket-mesh setup time is not charged to the measurement
        // window.
        let start = cluster.epoch();

        let run_for = self.duration.to_std();
        let (clients, outcomes) = std::thread::scope(|scope| {
            // Like the simulator (which never fires events past `run_until`),
            // a crash scheduled beyond the run window is simply dropped; the
            // sleep is bounded by the window so the scope cannot outlive it.
            if let Some(at) = self.crash_primary_at {
                let delay = Duration::from_nanos(at.as_nanos()).to_std();
                if delay < run_for {
                    let cluster = &cluster;
                    scope.spawn(move || {
                        let elapsed = start.elapsed();
                        if delay > elapsed {
                            std::thread::sleep(delay - elapsed);
                        }
                        cluster.crash(primary);
                    });
                }
            }
            // Crash-recover entries get one scheduler thread each: it kills
            // the replica at `crash_at`, then (still inside the window)
            // rebuilds a core from the shared durable store and hands it to
            // the cluster, which swaps it in on the replica's own thread.
            for entry in &self.crash_recover {
                let replica = entry.replica.unwrap_or(primary);
                let Some(factory) = recover_factories.get(&replica).cloned() else {
                    continue;
                };
                let crash_delay = Duration::from_nanos(entry.crash_at.as_nanos()).to_std();
                let recover_delay = Duration::from_nanos(entry.recover_at.as_nanos()).to_std();
                if crash_delay >= run_for {
                    continue;
                }
                let cluster = &cluster;
                scope.spawn(move || {
                    let elapsed = start.elapsed();
                    if crash_delay > elapsed {
                        std::thread::sleep(crash_delay - elapsed);
                    }
                    cluster.crash(replica);
                    if recover_delay < run_for {
                        let elapsed = start.elapsed();
                        if recover_delay > elapsed {
                            std::thread::sleep(recover_delay - elapsed);
                        }
                        cluster.recover(replica, factory());
                    }
                });
            }
            // Mode switches are delivered as a driver command to the
            // announcing replica, mirroring the simulator's scheduled
            // announcement (a switch scheduled beyond the window is dropped,
            // like a crash).
            if let (Some((at, target_mode)), Some(announcer)) =
                (self.mode_switch, cores.mode_switch_announcer)
            {
                let delay = Duration::from_nanos(at.as_nanos()).to_std();
                if delay < run_for {
                    let cluster = &cluster;
                    scope.spawn(move || {
                        let elapsed = start.elapsed();
                        if delay > elapsed {
                            std::thread::sleep(delay - elapsed);
                        }
                        cluster.request_mode_switch(announcer, target_mode);
                    });
                }
            }
            // Clients give a pending request up once the window closes, so
            // even a failure schedule beyond the deployment's fault
            // tolerance leaves the run bounded.
            let abandon_at = start + run_for;
            let handles: Vec<_> = cores
                .clients
                .into_iter()
                .enumerate()
                .map(|(index, client)| {
                    let cluster = &cluster;
                    let workload = self.workload();
                    let read_fast_path = self.read_fast_path;
                    let seed = self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    scope.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(seed);
                        let mut client = client;
                        let mut outcomes = Vec::new();
                        while start.elapsed() < run_for {
                            let (back, completed) =
                                cluster.run_client(client, 1, patience, abandon_at, |_| {
                                    let (op, class) = workload.next_classified(&mut rng);
                                    if read_fast_path {
                                        (op, class)
                                    } else {
                                        (op, OpClass::Write)
                                    }
                                });
                            client = back;
                            outcomes.extend(completed);
                        }
                        (client, outcomes)
                    })
                })
                .collect();
            let mut clients = Vec::new();
            let mut outcomes = Vec::new();
            for handle in handles {
                let (client, completed) = handle.join().expect("client thread");
                clients.push(client);
                outcomes.extend(completed);
            }
            (clients, outcomes)
        });

        let run_end = to_instant(start);
        let (messages, bytes) = cluster.traffic();
        let transport = match &cluster {
            AnyCluster::Socket(sockets) => {
                Some(crate::report::TransportReport::from_stats(&sockets.stats()))
            }
            AnyCluster::Threaded(_) => None,
        };
        let replicas = cluster.shutdown();
        let mut metrics = seemore_core::metrics::ReplicaMetrics::default();
        for replica in &replicas {
            metrics.merge(replica.metrics());
        }
        let mut report = RunReport::from_outcomes(
            &outcomes,
            Instant::ZERO + self.warmup,
            run_end,
            self.timeline_bucket,
        );
        report.messages_delivered = messages;
        report.bytes_delivered = bytes;
        report.view_changes = metrics.view_changes_completed;
        report.mode_switches = metrics.mode_switches;
        report.retransmissions = clients.iter().map(|c| c.retransmissions()).sum();
        report.batching = crate::report::BatchReport::from_telemetry(&metrics.batch);
        report.transport = transport;
        // Replica threads are joined by `shutdown` and client threads by the
        // scope above, so the rings hold every event the run produced.
        cores.trace.attach(&mut report, self.timeline_bucket);
        report
    }
}

/// Builds a replacement core for a crashed replica from its durable store
/// (shared by the simulator's restart events and the concurrent runtimes'
/// recover commands, so one schedule entry can fire more than once).
pub(crate) type RecoverFactory = Arc<dyn Fn() -> Box<dyn ReplicaProtocol> + Send + Sync>;

/// Replica and client cores plus the metadata runtimes need to place and
/// drive them.
pub(crate) struct CoreSet {
    pub(crate) replicas: Vec<Box<dyn ReplicaProtocol>>,
    pub(crate) clients: Vec<Box<dyn ClientProtocol>>,
    pub(crate) placement: Placement,
    pub(crate) primary: ReplicaId,
    pub(crate) mode_switch_announcer: Option<ReplicaId>,
    pub(crate) trace: TraceHandles,
    pub(crate) keystore: KeyStore,
    pub(crate) recover_factories: BTreeMap<ReplicaId, RecoverFactory>,
}

/// Trace-ring capacity per replica: at roughly six events per committed
/// request this covers ~10k requests before the ring starts overwriting its
/// oldest events.
const REPLICA_TRACE_CAPACITY: usize = 1 << 16;
/// Trace-ring capacity per client (two events per completed request).
const CLIENT_TRACE_CAPACITY: usize = 1 << 14;

/// Live handles to every traced core's event ring, kept by the scenario so
/// the report can drain them once the run is over. Empty when tracing is
/// disabled, in which case [`TraceHandles::attach`] is a no-op and the
/// report's trace fields stay empty.
#[derive(Default)]
pub(crate) struct TraceHandles {
    recorders: Vec<Arc<RingRecorder>>,
    replicas: Vec<ReplicaId>,
}

impl TraceHandles {
    /// Allocates (and remembers) a recorder for `replica`, or `None` when
    /// tracing is off.
    fn for_replica(&mut self, tracing: bool, replica: ReplicaId) -> Option<Arc<RingRecorder>> {
        if !tracing {
            return None;
        }
        self.replicas.push(replica);
        let recorder = Arc::new(RingRecorder::new(REPLICA_TRACE_CAPACITY));
        self.recorders.push(recorder.clone());
        Some(recorder)
    }

    /// Allocates (and remembers) a recorder for a client, or `None` when
    /// tracing is off.
    fn for_client(&mut self, tracing: bool) -> Option<Arc<RingRecorder>> {
        if !tracing {
            return None;
        }
        let recorder = Arc::new(RingRecorder::new(CLIENT_TRACE_CAPACITY));
        self.recorders.push(recorder.clone());
        Some(recorder)
    }

    /// Drains every ring into one trace and attaches it to the report.
    pub(crate) fn attach(self, report: &mut RunReport, health_bucket: Duration) {
        if self.recorders.is_empty() {
            return;
        }
        let mut events = Vec::new();
        for recorder in &self.recorders {
            events.extend(recorder.drain());
        }
        report.attach_trace(events, &self.replicas, health_bucket);
    }
}

/// The two concurrent cluster runtimes behind one face, so the scenario
/// runner is written once.
pub(crate) enum AnyCluster {
    Threaded(ThreadedCluster),
    Socket(SocketCluster),
}

impl AnyCluster {
    pub(crate) fn crash(&self, replica: ReplicaId) {
        match self {
            AnyCluster::Threaded(c) => c.crash(replica),
            AnyCluster::Socket(c) => c.crash(replica),
        }
    }

    pub(crate) fn recover(&self, replica: ReplicaId, core: Box<dyn ReplicaProtocol>) {
        match self {
            AnyCluster::Threaded(c) => c.recover(replica, core),
            AnyCluster::Socket(c) => c.recover(replica, core),
        }
    }

    pub(crate) fn request_mode_switch(&self, replica: ReplicaId, mode: Mode) {
        match self {
            AnyCluster::Threaded(c) => c.request_mode_switch(replica, mode),
            AnyCluster::Socket(c) => c.request_mode_switch(replica, mode),
        }
    }

    pub(crate) fn epoch(&self) -> StdInstant {
        match self {
            AnyCluster::Threaded(c) => c.epoch(),
            AnyCluster::Socket(c) => c.epoch(),
        }
    }

    pub(crate) fn run_client<C: ClientProtocol>(
        &self,
        client: C,
        requests: usize,
        timeout: Duration,
        abandon_at: StdInstant,
        make_op: impl FnMut(usize) -> (Vec<u8>, OpClass),
    ) -> (C, Vec<ClientOutcome>) {
        match self {
            AnyCluster::Threaded(c) => {
                c.run_client_until(client, requests, timeout, Some(abandon_at), make_op)
            }
            AnyCluster::Socket(c) => {
                c.run_client_until(client, requests, timeout, Some(abandon_at), make_op)
            }
        }
    }

    pub(crate) fn traffic(&self) -> (u64, u64) {
        match self {
            AnyCluster::Threaded(c) => c.traffic(),
            AnyCluster::Socket(c) => c.traffic(),
        }
    }

    pub(crate) fn shutdown(self) -> Vec<Box<dyn ReplicaProtocol>> {
        match self {
            AnyCluster::Threaded(c) => c.shutdown(),
            AnyCluster::Socket(c) => c.shutdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seemore_types::GroupId;

    #[test]
    fn protocol_kind_metadata() {
        assert_eq!(ProtocolKind::ALL.len(), 6);
        assert_eq!(ProtocolKind::SeeMoReLion.name(), "Lion");
        assert_eq!(ProtocolKind::Cft.name(), "CFT");
        assert_eq!(ProtocolKind::SeeMoReDog.seemore_mode(), Some(Mode::Dog));
        assert_eq!(ProtocolKind::Bft.seemore_mode(), None);
        // Fig. 2(a) caption sizes.
        assert_eq!(ProtocolKind::SeeMoReLion.network_size(1, 1), 6);
        assert_eq!(ProtocolKind::SUpright.network_size(1, 1), 6);
        assert_eq!(ProtocolKind::Cft.network_size(1, 1), 5);
        assert_eq!(ProtocolKind::Bft.network_size(1, 1), 7);
    }

    #[test]
    fn every_protocol_makes_progress_in_a_short_run() {
        for protocol in ProtocolKind::ALL {
            let report = Scenario::new(protocol, 1, 1)
                .with_clients(4)
                .with_duration(Duration::from_millis(60), Duration::from_millis(10))
                .run();
            assert!(
                report.completed > 0,
                "{} completed no requests",
                protocol.name()
            );
            assert!(report.throughput_kreqs > 0.0);
            assert!(report.avg_latency_ms > 0.0);
        }
    }

    #[test]
    fn lion_outperforms_bft_at_equal_fault_tolerance() {
        let lion = Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
            .with_clients(16)
            .with_duration(Duration::from_millis(150), Duration::from_millis(30))
            .run();
        let bft = Scenario::new(ProtocolKind::Bft, 1, 1)
            .with_clients(16)
            .with_duration(Duration::from_millis(150), Duration::from_millis(30))
            .run();
        assert!(
            lion.throughput_kreqs > bft.throughput_kreqs,
            "lion {:.2} kreq/s should beat BFT {:.2} kreq/s",
            lion.throughput_kreqs,
            bft.throughput_kreqs
        );
    }

    #[test]
    fn primary_crash_scenario_records_view_changes() {
        let report = Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
            .with_clients(4)
            .with_duration(Duration::from_millis(300), Duration::from_millis(10))
            .with_primary_crash(Instant::from_nanos(50_000_000))
            .run();
        assert!(report.view_changes > 0);
        // The timeline shows completions after the crash point.
        let after: u64 = report
            .timeline
            .iter()
            .filter(|b| b.start_ms > 100.0)
            .map(|b| b.completed)
            .sum();
        assert!(after > 0, "throughput should recover after the view change");
    }

    #[test]
    fn byzantine_public_replica_does_not_stop_seemore() {
        let report = Scenario::new(ProtocolKind::SeeMoReDog, 1, 1)
            .with_clients(4)
            .with_duration(Duration::from_millis(100), Duration::from_millis(20))
            .with_byzantine(1, ByzantineBehavior::ConflictingVotes)
            .run();
        assert!(report.completed > 0);
    }

    #[test]
    fn concurrent_runtimes_produce_reports_with_traffic() {
        for kind in [
            RuntimeKind::Threaded,
            RuntimeKind::Socket,
            RuntimeKind::Reactor,
        ] {
            let report = Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
                .with_clients(2)
                .with_duration(Duration::from_millis(150), Duration::from_millis(10))
                .with_runtime(kind)
                .with_client_mux(kind == RuntimeKind::Reactor)
                .run();
            assert!(report.completed > 0, "{}: no progress", kind.name());
            assert!(report.messages_delivered > 0, "{}", kind.name());
            assert!(
                report.bytes_delivered > 0,
                "{}: no bytes on the wire",
                kind.name()
            );
        }
    }

    #[test]
    fn concurrent_runtime_survives_a_primary_crash() {
        // Regression: the client driver must keep draining replies between
        // retransmissions, or every client thread livelocks once the
        // crashed primary makes a request outlive its first deadline.
        let report = Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
            .with_clients(2)
            .with_duration(Duration::from_millis(400), Duration::from_millis(10))
            .with_primary_crash(Instant::from_nanos(80_000_000))
            .with_runtime(RuntimeKind::Threaded)
            .run();
        assert!(report.completed > 0);
        assert!(
            report.view_changes > 0,
            "the crash must have forced a view change"
        );
    }

    #[test]
    fn concurrent_runtime_is_bounded_even_beyond_fault_tolerance() {
        // A single-replica CFT deployment whose only replica crashes can
        // never complete another request; the wall-clock run must still
        // return when its window closes instead of retransmitting forever.
        let report = Scenario::new(ProtocolKind::Cft, 0, 0)
            .with_clients(1)
            .with_duration(Duration::from_millis(200), Duration::from_millis(10))
            .with_primary_crash(Instant::from_nanos(20_000_000))
            .with_runtime(RuntimeKind::Threaded)
            .run();
        // Returning at all is the regression being tested; the report is a
        // bonus sanity check.
        assert!(report.measured_duration > Duration::ZERO);
    }

    #[test]
    fn mode_switch_completes_on_the_threaded_runtime() {
        // Regression: `with_mode_switch` used to be wired only through the
        // simulator's event queue, so the concurrent runtimes silently
        // ignored it; it is now delivered as a driver command.
        let report = Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
            .with_clients(2)
            .with_duration(Duration::from_millis(400), Duration::from_millis(10))
            .with_mode_switch(Instant::from_nanos(100_000_000), Mode::Peacock)
            .with_runtime(RuntimeKind::Threaded)
            .run();
        assert!(
            report.mode_switches > 0,
            "the scheduled mode switch must be delivered on the threaded runtime"
        );
        assert!(report.completed > 0);
    }

    #[test]
    fn kv_workload_flows_through_the_simulator_and_splits_classes() {
        // Regression: `Scenario::build` used to hardcode `Workload::micro`,
        // so simulated runs ignored the configured workload entirely.
        let report = Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
            .with_clients(8)
            .with_duration(Duration::from_millis(120), Duration::from_millis(20))
            .with_workload(crate::workload::Workload::kv(64, 32, 0.5))
            .run();
        assert!(report.completed > 0);
        assert!(report.reads.completed > 0, "reads must be generated");
        assert!(report.writes.completed > 0, "writes must be generated");
        assert_eq!(
            report.reads.completed + report.writes.completed,
            report.completed
        );
    }

    #[test]
    fn read_fraction_zero_reproduces_the_ordered_path_bit_for_bit() {
        let base = |fast: bool| {
            Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
                .with_clients(4)
                .with_duration(Duration::from_millis(100), Duration::from_millis(20))
                .with_workload(crate::workload::Workload::kv(32, 16, 0.0))
                .with_read_fast_path(fast)
                .run()
        };
        let fast_on = base(true);
        let fast_off = base(false);
        // With no reads generated, the fast-path flag changes nothing: the
        // runs are event-for-event identical.
        assert_eq!(fast_on.completed, fast_off.completed);
        assert_eq!(fast_on.messages_delivered, fast_off.messages_delivered);
        assert_eq!(fast_on.bytes_delivered, fast_off.bytes_delivered);
        assert_eq!(fast_on.reads.completed, 0);
        assert_eq!(fast_off.reads.completed, 0);
    }

    #[test]
    fn read_heavy_lion_outperforms_the_ordered_everything_path() {
        let run = |fast: bool| {
            Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
                .with_clients(16)
                .with_duration(Duration::from_millis(200), Duration::from_millis(40))
                .with_workload(crate::workload::Workload::kv(64, 32, 0.9))
                .with_read_fast_path(fast)
                .run()
        };
        let fast = run(true);
        let ordered = run(false);
        assert!(fast.reads.completed > 0);
        assert!(
            fast.throughput_kreqs > ordered.throughput_kreqs,
            "fast reads {:.2} kreq/s must beat ordered-everything {:.2} kreq/s",
            fast.throughput_kreqs,
            ordered.throughput_kreqs
        );
        // Fast-path reads skip agreement entirely, so they are also cheaper
        // per operation than the writes in the same run.
        assert!(
            fast.reads.avg_latency_ms < fast.writes.avg_latency_ms,
            "reads {:.3} ms vs writes {:.3} ms",
            fast.reads.avg_latency_ms,
            fast.writes.avg_latency_ms
        );
    }

    #[test]
    fn tracing_fills_phases_health_and_trace_on_every_runtime() {
        for kind in [
            RuntimeKind::Simulated,
            RuntimeKind::Threaded,
            RuntimeKind::Socket,
        ] {
            let report = Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
                .with_clients(2)
                .with_duration(Duration::from_millis(100), Duration::from_millis(10))
                .with_runtime(kind)
                .with_tracing(true)
                .run();
            assert!(report.completed > 0, "{}: no progress", kind.name());
            assert!(!report.trace.is_empty(), "{}: empty trace", kind.name());
            assert!(
                report.phases.requests() > 0,
                "{}: no phase spans derived",
                kind.name()
            );
            let lion = report
                .phases
                .cell(Mode::Lion, OpClass::Write)
                .expect("lion write cell");
            assert!(lion.requests > 0);
            // Six replicas for (c, m) = (1, 1), each with a health rollup.
            assert_eq!(report.health.len(), 6, "{}", kind.name());
            // Write percentiles extend to p99.9 and stay ordered.
            assert!(report.writes.p99_latency_ms <= report.writes.p999_latency_ms);
        }
    }

    #[test]
    fn tracing_does_not_change_the_simulated_history() {
        // The disabled recorder is a no-op and the enabled one only copies
        // values out; neither may perturb the protocol. On the deterministic
        // simulator the two runs must be event-for-event identical.
        let run = |tracing: bool| {
            Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
                .with_clients(4)
                .with_duration(Duration::from_millis(120), Duration::from_millis(20))
                .with_workload(crate::workload::Workload::kv(64, 32, 0.5))
                .with_tracing(tracing)
                .run()
        };
        let traced = run(true);
        let plain = run(false);
        assert_eq!(traced.completed, plain.completed);
        assert_eq!(traced.messages_delivered, plain.messages_delivered);
        assert_eq!(traced.bytes_delivered, plain.bytes_delivered);
        assert_eq!(traced.reads.completed, plain.reads.completed);
        assert_eq!(traced.writes.completed, plain.writes.completed);
        assert_eq!(traced.timeline.len(), plain.timeline.len());
        for (a, b) in traced.timeline.iter().zip(&plain.timeline) {
            assert_eq!(a.completed, b.completed);
        }
        assert!(!traced.trace.is_empty());
        assert!(plain.trace.is_empty());
    }

    #[test]
    fn socket_trace_round_trips_through_jsonl() {
        let report = Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
            .with_clients(2)
            .with_duration(Duration::from_millis(100), Duration::from_millis(10))
            .with_runtime(RuntimeKind::Socket)
            .with_tracing(true)
            .run();
        assert!(!report.trace.is_empty());
        let text = seemore_telemetry::jsonl::trace_to_string(&report.trace);
        let parsed = seemore_telemetry::jsonl::parse_trace(&text).expect("trace parses back");
        assert_eq!(parsed, report.trace);
        // Socket runs also surface mesh reconnect totals in the report.
        let transport = report.transport.expect("socket runs report transport");
        assert!(transport.reconnects > 0, "initial dials count as connects");
    }

    #[test]
    fn mode_switch_scenario_switches_modes() {
        let scenario = Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
            .with_clients(2)
            .with_duration(Duration::from_millis(200), Duration::from_millis(10))
            .with_mode_switch(Instant::from_nanos(50_000_000), Mode::Peacock);
        let (mut sim, _) = scenario.build();
        sim.run_until(Instant::ZERO + scenario.duration);
        let report = sim.report(Instant::ZERO + scenario.warmup, scenario.timeline_bucket);
        assert!(
            report.mode_switches > 0,
            "mode switch should have been installed"
        );
        // All replicas ended up in the Peacock mode.
        for replica in sim.replica_ids() {
            assert_eq!(sim.replica(replica).mode(), Mode::Peacock);
        }
        assert!(report.completed > 0);
    }

    #[test]
    fn with_shards_one_is_the_identity() {
        // A single-group "sharded" run never takes the sharded path at all:
        // no guards, no router, the historical code runs bit for bit.
        let run = |sharded: bool| {
            let mut scenario = Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
                .with_clients(4)
                .with_duration(Duration::from_millis(120), Duration::from_millis(20))
                .with_workload(crate::workload::Workload::kv(64, 32, 0.5));
            if sharded {
                scenario = scenario.with_shards(1);
            }
            scenario.run()
        };
        let plain = run(false);
        let sharded = run(true);
        assert_eq!(plain.completed, sharded.completed);
        assert_eq!(plain.messages_delivered, sharded.messages_delivered);
        assert_eq!(plain.bytes_delivered, sharded.bytes_delivered);
        assert_eq!(plain.reads.completed, sharded.reads.completed);
        assert!(sharded.shards.is_empty(), "one group has no sub-reports");
    }

    #[test]
    fn simulated_sharded_runs_merge_per_group_reports() {
        let report = Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
            .with_clients(6)
            .with_duration(Duration::from_millis(120), Duration::from_millis(20))
            .with_workload(crate::workload::Workload::kv(256, 32, 0.5))
            .with_shards(3)
            .run();
        assert_eq!(report.shards.len(), 3);
        let mut total = 0;
        for (i, shard) in report.shards.iter().enumerate() {
            assert_eq!(shard.group, GroupId(i as u32));
            assert!(shard.report.completed > 0, "group {i} made no progress");
            total += shard.report.completed;
        }
        assert_eq!(report.completed, total, "aggregate must be the exact sum");
        assert_eq!(
            report.completed,
            report.reads.completed + report.writes.completed
        );
        // Three separate groups also generate more aggregate traffic than
        // any single group.
        assert!(report.messages_delivered > report.shards[0].report.messages_delivered);
    }

    #[test]
    fn sharded_threaded_run_commits_on_every_group() {
        let report = Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
            .with_clients(4)
            .with_duration(Duration::from_millis(250), Duration::from_millis(20))
            .with_workload(crate::workload::Workload::kv(256, 32, 0.0))
            .with_runtime(RuntimeKind::Threaded)
            .with_shards(2)
            .run();
        assert_eq!(report.shards.len(), 2);
        for shard in &report.shards {
            assert!(
                shard.report.completed > 0,
                "group {} made no progress",
                shard.group
            );
        }
        let total: u64 = report.shards.iter().map(|s| s.report.completed).sum();
        assert_eq!(report.completed, total);
        assert!(report.messages_delivered > 0);
    }

    #[test]
    fn stale_client_maps_are_corrected_by_signed_redirects() {
        // Clients start on a version-1 map that routes *everything* to group
        // 0; the authority map (version 2) hash-partitions across both
        // groups. The only way group 1 can ever commit anything is a guard
        // refusing a misrouted key with a signed redirect and the router
        // adopting the newer map — so progress on group 1 proves the whole
        // redirect loop end to end.
        let report = Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
            .with_clients(4)
            .with_duration(Duration::from_millis(300), Duration::from_millis(20))
            .with_workload(crate::workload::Workload::kv(256, 32, 0.0))
            .with_runtime(RuntimeKind::Threaded)
            .with_shards(2)
            .with_stale_client_map(true)
            .run();
        assert_eq!(report.shards.len(), 2);
        assert!(
            report.shards[1].report.completed > 0,
            "group 1 is unreachable without a followed redirect"
        );
        assert!(report.shards[0].report.completed > 0);
    }
}
