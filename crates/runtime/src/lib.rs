//! Execution substrates and measurement harness for the SeeMoRe
//! reproduction.
//!
//! # The three runtimes
//!
//! The same sans-IO protocol cores run on three substrates; pick by what you
//! want to learn:
//!
//! * [`sim`] — a **deterministic discrete-event simulator** driving the
//!   cores over the latency, CPU and fault models from `seemore-net`.
//!   Virtual time, perfectly reproducible for a fixed seed, thousands of
//!   simulated seconds per wall second. Use it to regenerate the paper's
//!   figures, sweep parameters, and shake out protocol bugs with the
//!   property tests.
//! * [`threaded`] — a **thread-per-replica runtime over in-memory
//!   channels**. Real OS concurrency and real clocks, but messages stay
//!   Rust values routed between crossbeam channels. Use it to exercise the
//!   public API under true parallelism without paying for serialization —
//!   and as the reference the socket runtime is differentially tested
//!   against.
//! * [`socket`] — a **socket-backed runtime over loopback TCP**. Same
//!   thread model as `threaded` (the event loop is literally shared, see
//!   `driver`), but every message is encoded by the real wire codec,
//!   crosses a `std::net` TCP connection, and is reassembled by a streaming
//!   frame reader. Use it when the question involves real IO: codec cost,
//!   framing, socket back-pressure, bytes-on-wire — this is the deployable
//!   shape of the system.
//!
//! # Which socket transport when
//!
//! The socket runtime itself runs on either of `seemore-net`'s two real
//! transports, selected by [`SocketTransport`] (or, through scenarios, by
//! [`RuntimeKind::Socket`] vs [`RuntimeKind::Reactor`]):
//!
//! * **Reactor** ([`RuntimeKind::Reactor`]) — a fixed pool of epoll event
//!   loops drives every connection; thread count stays flat as replicas and
//!   clients grow, and [`Scenario::with_client_mux`] additionally collapses
//!   all clients onto one shared connection per replica. Use it for client
//!   scaling questions (hundreds to thousands of concurrent clients) and as
//!   the deployable default.
//! * **Thread-per-peer** ([`RuntimeKind::Socket`]) — two blocking threads
//!   per connection. The measured baseline of the transport ablation and
//!   the easiest substrate to debug, but thread count grows with the
//!   cluster: prefer it only for small deployments or when stepping through
//!   a connection's blocking I/O beats event-loop indirection.
//!
//! Both are driven to identical per-slot histories by the loopback
//! end-to-end suite (`tests/socket_e2e.rs`), so switching transports is a
//! performance decision, not a correctness one.
//!
//! Supporting modules:
//!
//! * [`workload`] — the 0/0, 0/4 and 4/0 micro-benchmarks of the evaluation
//!   plus a key-value workload for the examples.
//! * [`report`] — throughput / latency / timeline statistics extracted from
//!   a run.
//! * [`scenario`] — one-call builders that assemble a cluster (SeeMoRe in
//!   any mode, or one of the baselines), attach clients and failure
//!   schedules, run it on any of the three runtimes
//!   ([`Scenario::with_runtime`]) and return a [`report::RunReport`].
//!
//! # Telemetry
//!
//! Every protocol core (SeeMoRe in all three modes, the CFT/BFT/S-UpRight
//! baselines, and both client cores) is instrumented with the structured
//! tracer from `seemore-telemetry`. [`Scenario::with_tracing`] turns it on:
//! each core gets its own lock-free-to-allocate bounded ring
//! ([`seemore_telemetry::RingRecorder`]), and after the run the scenario
//! drains every ring, time-sorts the merged trace, and attaches three
//! derived views to the [`report::RunReport`]:
//!
//! * [`RunReport::phases`](report::RunReport::phases) — a per-mode,
//!   per-op-class commit-latency breakdown over the five request phases
//!   (client→primary, batch wait, agreement, execution, reply), each leg a
//!   log-bucketed histogram out to p99.9.
//! * [`RunReport::health`](report::RunReport::health) — one
//!   [`seemore_telemetry::ReplicaHealth`] rollup per replica: suspicions
//!   fired, reads refused, vote mismatches, signature-verification
//!   failures, and view-change durations, bucketed on the same timeline as
//!   the throughput view. Socket runs additionally report mesh-wide
//!   connection rebuilds in
//!   [`TransportReport::reconnects`](report::TransportReport::reconnects).
//! * [`RunReport::trace`](report::RunReport::trace) — the raw, time-sorted
//!   event stream, exportable to JSONL via [`seemore_telemetry::jsonl`] and
//!   re-importable with the same module's parser.
//!
//! With tracing off (the default) the cores carry a
//! [`seemore_telemetry::NullRecorder`] whose `record` is a provable no-op —
//! the disabled path allocates nothing and costs one inlined branch per
//! event site (asserted by the zero-allocation test in `seemore-telemetry`
//! and the `trace_overhead` microbenchmark). Latency percentiles in
//! [`ClassStats`] — split by operation class and
//! extended to p99.9 — come from the same histogram type, so report memory
//! stays constant no matter how many requests a run completes.
//!
//! `examples/telemetry.rs` prints the phase-breakdown table and dumps a
//! JSONL trace for a short socket run.
//!
//! # Sharding
//!
//! [`Scenario::with_shards`] scales a deployment *out* instead of up: the
//! keyspace is hash-partitioned by a [`seemore_types::ShardMap`] across `n`
//! independent SeeMoRe groups, each a complete cluster running the
//! unmodified single-group protocol with its own primary, view changes and
//! key material. Agreement never crosses a group boundary, so aggregate
//! throughput scales with the number of groups while per-group latency
//! stays flat.
//!
//! On the concurrent runtimes ([`shard::ShardedCluster`]) each replica is
//! wrapped in a [`seemore_core::ShardGuard`] that refuses operations on
//! keys its group does not own *before* consensus, answering with a signed
//! redirect that carries the authoritative map. Clients route through a
//! [`seemore_core::ShardRouter`] holding a cached map; on a verified
//! redirect the router adopts the newer map and the operation is resubmitted
//! to the owner — one extra round trip on a stale map, never a wrong-group
//! execution. `Scenario::with_stale_client_map` deliberately seeds clients
//! with an outdated map to exercise exactly that path. Per-group failure
//! schedules are expressed with [`shard::ShardOverride`]
//! ([`Scenario::with_shard_crash`], [`Scenario::with_shard_mode_switch`]),
//! and the run's [`report::RunReport`] carries one
//! [`report::ShardReport`] per group next to the exactly-merged aggregate.
//! `with_shards(1)` is the identity: single-group runs take the historical
//! path bit for bit.
//!
//! `examples/sharding.rs` runs the same workload against one and four Lion
//! groups and prints the per-group and aggregate reports.
//!
//! # Durability
//!
//! By default replica state lives only in memory: a crashed replica is gone,
//! and the paper's fault bounds (`c`, `m`) are what keep the cluster live.
//! [`Scenario::with_durability`] attaches a store from `seemore-store` to
//! every core — [`scenario::DurabilityKind::Memory`] for the byte-exact
//! in-memory WAL (what tests and the simulator use) or
//! [`scenario::DurabilityKind::File`] for real files with real `fsync`. With
//! a store attached every core appends each safety-critical vote to a
//! CRC-framed write-ahead log *before* the message leaves the replica (a
//! restarted replica can never contradict its earlier self — no un-voting),
//! persists a snapshot at each stable checkpoint, and compacts the WAL
//! below it, so recovery work stays proportional to one checkpoint period.
//!
//! [`Scenario::with_crash_recover`] turns that durable state into a full
//! crash-recover-rejoin schedule, honoured on every runtime: the simulator
//! restarts the core deterministically at the scheduled virtual instant,
//! while the threaded and socket runtimes really tear the core down and
//! swap in one rebuilt from the store on the replica's own thread
//! ([`ThreadedCluster::recover`] / [`SocketCluster::recover`]). The
//! restarted replica replays its WAL suffix onto the recovered checkpoint,
//! broadcasts a `RECOVERY` announcement, fetches the committed suffix it
//! missed via the existing state-transfer messages (requiring `f + 1`
//! matching responses where peers may lie), and only then resumes voting —
//! buffering, not dropping, protocol traffic that arrives mid-rejoin.
//! Recovery shows up in telemetry as `RecoveryStarted` /
//! `CheckpointPersisted` / `RecoveryCompleted` events and in
//! [`seemore_telemetry::ReplicaHealth`] as recovery counts/durations and
//! WAL-replay lengths. `examples/recovery.rs` crashes and rejoins a replica
//! mid-run and prints the rejoin latency.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod driver;
pub mod report;
pub mod scenario;
pub mod shard;
pub mod sim;
pub mod socket;
pub mod threaded;
pub mod workload;

pub use report::{
    BatchReport, ClassStats, RunReport, ShardReport, TimelineBucket, TransportReport,
};
pub use scenario::{CrashRecover, DurabilityKind, ProtocolKind, RuntimeKind, Scenario};
pub use shard::{ShardOverride, ShardedCluster};
pub use sim::{SimConfig, Simulation};
pub use socket::{SocketCluster, SocketOptions, SocketTransport};
pub use threaded::ThreadedCluster;
pub use workload::Workload;
