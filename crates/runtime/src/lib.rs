//! Execution substrates and measurement harness for the SeeMoRe
//! reproduction.
//!
//! * [`sim`] — a deterministic discrete-event simulator that drives any
//!   collection of sans-IO replica and client cores over the latency, CPU
//!   and fault models from `seemore-net`. This is what regenerates the
//!   paper's figures.
//! * [`workload`] — the 0/0, 0/4 and 4/0 micro-benchmarks of the evaluation
//!   plus a key-value workload for the examples.
//! * [`report`] — throughput / latency / timeline statistics extracted from
//!   a run.
//! * [`scenario`] — one-call builders that assemble a cluster (SeeMoRe in
//!   any mode, or one of the baselines), attach clients and failure
//!   schedules, run the simulation and return a [`report::RunReport`].
//! * [`threaded`] — a thread-per-replica runtime over in-memory channels,
//!   used by the examples to show the protocol running outside the
//!   simulator.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod report;
pub mod scenario;
pub mod sim;
pub mod threaded;
pub mod workload;

pub use report::{RunReport, TimelineBucket};
pub use scenario::{ProtocolKind, Scenario};
pub use sim::{SimConfig, Simulation};
pub use workload::Workload;
