//! Execution substrates and measurement harness for the SeeMoRe
//! reproduction.
//!
//! # The three runtimes
//!
//! The same sans-IO protocol cores run on three substrates; pick by what you
//! want to learn:
//!
//! * [`sim`] — a **deterministic discrete-event simulator** driving the
//!   cores over the latency, CPU and fault models from `seemore-net`.
//!   Virtual time, perfectly reproducible for a fixed seed, thousands of
//!   simulated seconds per wall second. Use it to regenerate the paper's
//!   figures, sweep parameters, and shake out protocol bugs with the
//!   property tests.
//! * [`threaded`] — a **thread-per-replica runtime over in-memory
//!   channels**. Real OS concurrency and real clocks, but messages stay
//!   Rust values routed between crossbeam channels. Use it to exercise the
//!   public API under true parallelism without paying for serialization —
//!   and as the reference the socket runtime is differentially tested
//!   against.
//! * [`socket`] — a **socket-backed runtime over loopback TCP**. Same
//!   thread model as `threaded` (the event loop is literally shared, see
//!   `driver`), but every message is encoded by the real wire codec,
//!   crosses a `std::net` TCP connection of a `TcpMesh`, and is reassembled
//!   by a streaming frame reader. Use it when the question involves real
//!   IO: codec cost, framing, socket back-pressure, bytes-on-wire — this is
//!   the deployable shape of the system.
//!
//! Supporting modules:
//!
//! * [`workload`] — the 0/0, 0/4 and 4/0 micro-benchmarks of the evaluation
//!   plus a key-value workload for the examples.
//! * [`report`] — throughput / latency / timeline statistics extracted from
//!   a run.
//! * [`scenario`] — one-call builders that assemble a cluster (SeeMoRe in
//!   any mode, or one of the baselines), attach clients and failure
//!   schedules, run it on any of the three runtimes
//!   ([`Scenario::with_runtime`]) and return a [`report::RunReport`].

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod driver;
pub mod report;
pub mod scenario;
pub mod sim;
pub mod socket;
pub mod threaded;
pub mod workload;

pub use report::{BatchReport, ClassStats, RunReport, TimelineBucket, TransportReport};
pub use scenario::{ProtocolKind, RuntimeKind, Scenario};
pub use sim::{SimConfig, Simulation};
pub use socket::{SocketCluster, SocketOptions};
pub use threaded::ThreadedCluster;
pub use workload::Workload;
