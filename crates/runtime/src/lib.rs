//! Execution substrates and measurement harness for the SeeMoRe
//! reproduction.
//!
//! # The three runtimes
//!
//! The same sans-IO protocol cores run on three substrates; pick by what you
//! want to learn:
//!
//! * [`sim`] — a **deterministic discrete-event simulator** driving the
//!   cores over the latency, CPU and fault models from `seemore-net`.
//!   Virtual time, perfectly reproducible for a fixed seed, thousands of
//!   simulated seconds per wall second. Use it to regenerate the paper's
//!   figures, sweep parameters, and shake out protocol bugs with the
//!   property tests.
//! * [`threaded`] — a **thread-per-replica runtime over in-memory
//!   channels**. Real OS concurrency and real clocks, but messages stay
//!   Rust values routed between crossbeam channels. Use it to exercise the
//!   public API under true parallelism without paying for serialization —
//!   and as the reference the socket runtime is differentially tested
//!   against.
//! * [`socket`] — a **socket-backed runtime over loopback TCP**. Same
//!   thread model as `threaded` (the event loop is literally shared, see
//!   `driver`), but every message is encoded by the real wire codec,
//!   crosses a `std::net` TCP connection, and is reassembled by a streaming
//!   frame reader. Use it when the question involves real IO: codec cost,
//!   framing, socket back-pressure, bytes-on-wire — this is the deployable
//!   shape of the system.
//!
//! # Which socket transport when
//!
//! The socket runtime itself runs on either of `seemore-net`'s two real
//! transports, selected by [`SocketTransport`] (or, through scenarios, by
//! [`RuntimeKind::Socket`] vs [`RuntimeKind::Reactor`]):
//!
//! * **Reactor** ([`RuntimeKind::Reactor`]) — a fixed pool of epoll event
//!   loops drives every connection; thread count stays flat as replicas and
//!   clients grow, and [`Scenario::with_client_mux`] additionally collapses
//!   all clients onto one shared connection per replica. Use it for client
//!   scaling questions (hundreds to thousands of concurrent clients) and as
//!   the deployable default.
//! * **Thread-per-peer** ([`RuntimeKind::Socket`]) — two blocking threads
//!   per connection. The measured baseline of the transport ablation and
//!   the easiest substrate to debug, but thread count grows with the
//!   cluster: prefer it only for small deployments or when stepping through
//!   a connection's blocking I/O beats event-loop indirection.
//!
//! Both are driven to identical per-slot histories by the loopback
//! end-to-end suite (`tests/socket_e2e.rs`), so switching transports is a
//! performance decision, not a correctness one.
//!
//! Supporting modules:
//!
//! * [`workload`] — the 0/0, 0/4 and 4/0 micro-benchmarks of the evaluation
//!   plus a key-value workload for the examples.
//! * [`report`] — throughput / latency / timeline statistics extracted from
//!   a run.
//! * [`scenario`] — one-call builders that assemble a cluster (SeeMoRe in
//!   any mode, or one of the baselines), attach clients and failure
//!   schedules, run it on any of the three runtimes
//!   ([`Scenario::with_runtime`]) and return a [`report::RunReport`].

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod driver;
pub mod report;
pub mod scenario;
pub mod sim;
pub mod socket;
pub mod threaded;
pub mod workload;

pub use report::{BatchReport, ClassStats, RunReport, TimelineBucket, TransportReport};
pub use scenario::{ProtocolKind, RuntimeKind, Scenario};
pub use sim::{SimConfig, Simulation};
pub use socket::{SocketCluster, SocketOptions, SocketTransport};
pub use threaded::ThreadedCluster;
pub use workload::Workload;
