//! A thread-per-replica runtime over real loopback TCP sockets.
//!
//! [`SocketCluster`] mirrors [`ThreadedCluster`](crate::threaded::ThreadedCluster)'s
//! API — same spawn / crash / `run_client` / shutdown surface, same sans-IO
//! [`ReplicaProtocol`] and [`ClientProtocol`] cores — but every message is
//! encoded through the wire codec (`seemore_wire::codec`), crosses an actual
//! `std::net` TCP connection of a [`TcpMesh`], and is decoded by a streaming
//! frame reader on the receiving side. It is the closest this workspace gets
//! to the paper's deployed system: the bytes it reports really were written
//! to and read from sockets.
//!
//! The replica event loop and the closed-loop client driver are shared with
//! the threaded runtime through `crate::driver`; this module only adds the
//! TCP endpoints. Each replica thread consumes decoded traffic directly
//! from its transport queue (control commands ride a separate, polled
//! channel), so a delivered message pays no intermediate thread hop. See
//! the crate docs for guidance on choosing between the simulator, the
//! threaded runtime and this one.

use crate::driver::{self, ReplicaCommand};
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use seemore_core::client::{ClientOutcome, ClientProtocol};
use seemore_core::protocol::ReplicaProtocol;
use seemore_net::tcp::{TcpMesh, Transport, TransportError, TransportStats};
use seemore_net::{HubPort, ReactorMesh};
use seemore_types::{ClientId, Duration, Mode, NodeId, OpClass, ReplicaId};
use seemore_wire::Message;
use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant as StdInstant;

/// Which socket substrate carries the cluster's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SocketTransport {
    /// The reactor mesh ([`ReactorMesh`]): a fixed pool of event-loop
    /// threads drives every connection through nonblocking sockets and
    /// epoll. The default — thread count stays flat as peers and clients
    /// grow. See the `seemore-net` crate docs for the full trade-off.
    #[default]
    Reactor,
    /// The thread-per-peer mesh ([`TcpMesh`]): one blocking reader thread
    /// per inbound connection, one writer thread per dialed peer. The
    /// baseline the reactor is measured against.
    ThreadPerPeer,
}

/// The underlying socket mesh, behind one face so the replica loops,
/// client driver and report plumbing are transport-agnostic.
enum AnyMesh {
    ThreadPerPeer(TcpMesh),
    Reactor(ReactorMesh),
}

impl AnyMesh {
    fn stats(&self) -> Arc<TransportStats> {
        match self {
            AnyMesh::ThreadPerPeer(mesh) => mesh.stats(),
            AnyMesh::Reactor(mesh) => mesh.stats(),
        }
    }

    fn shutdown(&self) {
        match self {
            AnyMesh::ThreadPerPeer(mesh) => mesh.shutdown(),
            AnyMesh::Reactor(mesh) => mesh.shutdown(),
        }
    }
}

/// A sending handle of either mesh (replica side and non-muxed clients).
#[derive(Clone)]
enum AnyHandle {
    Tcp(seemore_net::TcpHandle),
    Reactor(seemore_net::ReactorHandle),
}

impl AnyHandle {
    fn send(&self, to: NodeId, message: &Message) -> Result<(), TransportError> {
        match self {
            AnyHandle::Tcp(handle) => handle.send(to, message),
            AnyHandle::Reactor(handle) => handle.send(to, message),
        }
    }

    fn broadcast(&self, to: &[NodeId], message: &Message) -> Result<(), TransportError> {
        match self {
            AnyHandle::Tcp(handle) => handle.broadcast(to, message),
            AnyHandle::Reactor(handle) => handle.broadcast(to, message),
        }
    }
}

/// A client's attachment to the mesh: either a private endpoint (its own
/// listener plus dialed connections) or a multiplexed port through the
/// reactor's client hub (shared connections, demuxed replies).
enum ClientPort {
    Endpoint {
        handle: AnyHandle,
        incoming: Receiver<(NodeId, Message)>,
    },
    Hub(HubPort),
}

impl ClientPort {
    fn send(&self, to: NodeId, message: &Message) {
        let _ = match self {
            ClientPort::Endpoint { handle, .. } => handle.send(to, message),
            ClientPort::Hub(port) => port.send(to, message),
        };
    }

    fn recv_timeout(
        &self,
        wait: std::time::Duration,
    ) -> Result<(NodeId, Message), RecvTimeoutError> {
        match self {
            ClientPort::Endpoint { incoming, .. } => incoming.recv_timeout(wait),
            ClientPort::Hub(port) => port.incoming().recv_timeout(wait),
        }
    }
}

/// Tunables of the socket substrate (the perf-ablation toggles).
#[derive(Debug, Clone, Copy)]
pub struct SocketOptions {
    /// Whether replica broadcasts use the transport's encode-once
    /// shared-frame fast path (`TcpHandle::broadcast`). When disabled, every
    /// destination re-encodes the message — PR 2's behaviour, kept
    /// selectable so the ablation can measure the saving.
    pub encode_once: bool,
    /// Which mesh carries the traffic (reactor event loops by default).
    pub transport: SocketTransport,
    /// On the reactor, multiplex every client over the hub's shared
    /// per-replica connections instead of giving each client its own
    /// listener and mesh of sockets. Ignored (private endpoints are the
    /// only option) on the thread-per-peer transport.
    pub client_mux: bool,
}

impl Default for SocketOptions {
    fn default() -> Self {
        SocketOptions {
            encode_once: true,
            transport: SocketTransport::default(),
            client_mux: false,
        }
    }
}

/// The socket runtime's [`driver::ReplicaSink`]: single sends encode
/// through the transport's thread-local scratch; broadcasts hand the whole
/// destination set to the transport's `broadcast`, which encodes once and
/// enqueues the same shared frame to every peer's writer.
///
/// Connection failures surface as reconnect attempts inside the transport;
/// a send can only fail here on shutdown, which the replica loop is about
/// to observe anyway, so errors are dropped.
struct TcpSink {
    handle: AnyHandle,
    encode_once: bool,
}

impl driver::ReplicaSink for TcpSink {
    fn send(&mut self, to: NodeId, message: Message) {
        let _ = self.handle.send(to, &message);
    }

    fn broadcast(&mut self, to: Vec<NodeId>, message: Message) {
        if self.encode_once {
            let _ = self.handle.broadcast(&to, &message);
        } else {
            for peer in to {
                let _ = self.handle.send(peer, &message);
            }
        }
    }
}

/// Handle to a running socket-backed cluster.
///
/// The handle is `Sync`: multiple client threads may call
/// [`run_client`](Self::run_client) concurrently (one call per client id).
pub struct SocketCluster {
    mesh: AnyMesh,
    replica_senders: HashMap<ReplicaId, Sender<ReplicaCommand>>,
    replicas: Vec<JoinHandle<Box<dyn ReplicaProtocol>>>,
    clients: HashMap<ClientId, ClientPort>,
    stats: Arc<TransportStats>,
    start: StdInstant,
}

impl SocketCluster {
    /// Binds a loopback TCP mesh over every replica and client, then spawns
    /// one replica thread (the shared event loop, fed directly from the
    /// mesh's decoded-message queue) per replica.
    ///
    /// `client_ids` lists the clients that will interact with the cluster
    /// through [`run_client`](Self::run_client); each gets its own listener
    /// so replicas can push replies back over real connections.
    pub fn spawn(
        replicas: Vec<Box<dyn ReplicaProtocol>>,
        client_ids: &[ClientId],
    ) -> io::Result<Self> {
        Self::spawn_with(replicas, client_ids, SocketOptions::default())
    }

    /// [`spawn`](Self::spawn) with explicit [`SocketOptions`] (the perf
    /// ablation's entry point).
    pub fn spawn_with(
        replicas: Vec<Box<dyn ReplicaProtocol>>,
        client_ids: &[ClientId],
        options: SocketOptions,
    ) -> io::Result<Self> {
        let replica_nodes: Vec<NodeId> = replicas.iter().map(|r| NodeId::Replica(r.id())).collect();
        let client_nodes: Vec<NodeId> = client_ids.iter().map(|c| NodeId::Client(*c)).collect();
        let mux = options.client_mux && options.transport == SocketTransport::Reactor;
        let mesh = match options.transport {
            SocketTransport::ThreadPerPeer => {
                let nodes: Vec<NodeId> = replica_nodes
                    .iter()
                    .chain(client_nodes.iter())
                    .copied()
                    .collect();
                AnyMesh::ThreadPerPeer(TcpMesh::new(&nodes)?)
            }
            SocketTransport::Reactor if mux => {
                // Clients get no listeners of their own: they are logical
                // clients behind the hub, sharing one connection per replica.
                AnyMesh::Reactor(ReactorMesh::with_hub(&replica_nodes, client_ids)?)
            }
            SocketTransport::Reactor => {
                let nodes: Vec<NodeId> = replica_nodes
                    .iter()
                    .chain(client_nodes.iter())
                    .copied()
                    .collect();
                AnyMesh::Reactor(ReactorMesh::new(&nodes)?)
            }
        };
        let stats = mesh.stats();
        // The clock epoch starts after the mesh is bound, so listener setup
        // is not charged to the protocol's timers or measurement windows.
        let start = StdInstant::now();

        let take = |node: NodeId| -> (AnyHandle, Receiver<(NodeId, Message)>) {
            match &mesh {
                AnyMesh::ThreadPerPeer(mesh) => {
                    let endpoint = mesh
                        .take_endpoint(node)
                        .expect("endpoint exists for every spawned node");
                    (
                        AnyHandle::Tcp(endpoint.handle()),
                        endpoint.incoming().clone(),
                    )
                }
                AnyMesh::Reactor(mesh) => {
                    let endpoint = mesh
                        .take_endpoint(node)
                        .expect("endpoint exists for every spawned node");
                    (
                        AnyHandle::Reactor(endpoint.handle()),
                        endpoint.incoming().clone(),
                    )
                }
            }
        };

        let mut replica_senders = HashMap::new();
        let mut replica_handles = Vec::new();
        for replica in replicas {
            let id = replica.id();
            let (handle, incoming) = take(NodeId::Replica(id));
            let (tx, rx) = unbounded::<ReplicaCommand>();
            replica_senders.insert(id, tx.clone());
            // The replica thread consumes decoded TCP traffic *directly*
            // from the transport's queue (no per-message pump-thread hop);
            // rare control commands ride the separate command channel and
            // are polled every loop iteration.
            let thread = std::thread::Builder::new()
                .name(format!("replica-{id}"))
                .spawn(move || {
                    driver::run_replica_loop(
                        replica,
                        &rx,
                        Some(&incoming),
                        start,
                        TcpSink {
                            handle,
                            encode_once: options.encode_once,
                        },
                    )
                })
                .expect("spawn replica thread");
            replica_handles.push(thread);
        }

        let mut clients = HashMap::new();
        for client in client_ids {
            let port = if mux {
                let AnyMesh::Reactor(mesh) = &mesh else {
                    unreachable!("mux implies the reactor mesh");
                };
                ClientPort::Hub(
                    mesh.hub_port(*client)
                        .expect("hub port exists for every registered client"),
                )
            } else {
                let (handle, incoming) = take(NodeId::Client(*client));
                ClientPort::Endpoint { handle, incoming }
            };
            clients.insert(*client, port);
        }

        Ok(SocketCluster {
            mesh,
            replica_senders,
            replicas: replica_handles,
            clients,
            stats,
            start,
        })
    }

    /// Crashes a replica (fail-stop). Its sockets stay up but the core
    /// produces no further actions, exactly like the threaded runtime.
    pub fn crash(&self, replica: ReplicaId) {
        if let Some(tx) = self.replica_senders.get(&replica) {
            let _ = tx.send(ReplicaCommand::Crash);
        }
    }

    /// Restarts a crashed replica with `core`, a fresh protocol core rebuilt
    /// from its durable store (see `seemore_store::Durability::recover`).
    /// The replica thread drops the dead incarnation (and its timers) and
    /// runs the new core's `on_start`, which announces the rejoin over the
    /// still-connected mesh.
    pub fn recover(&self, replica: ReplicaId, core: Box<dyn ReplicaProtocol>) {
        assert_eq!(core.id(), replica, "recovery core built for the wrong id");
        if let Some(tx) = self.replica_senders.get(&replica) {
            let _ = tx.send(ReplicaCommand::Recover(core));
        }
    }

    /// Asks `replica` to announce a dynamic mode switch (SeeMoRe only; other
    /// cores ignore the request). This is how `Scenario::with_mode_switch`
    /// is delivered on the concurrent runtimes.
    pub fn request_mode_switch(&self, replica: ReplicaId, mode: Mode) {
        if let Some(tx) = self.replica_senders.get(&replica) {
            let _ = tx.send(ReplicaCommand::ModeSwitch { mode });
        }
    }

    /// The wall-clock epoch all protocol instants (timers, client outcome
    /// timestamps) are measured from.
    pub(crate) fn epoch(&self) -> StdInstant {
        self.start
    }

    /// Runs a closed-loop client on the calling thread: submits `requests`
    /// operations one after another over real sockets and returns the
    /// outcomes.
    ///
    /// `make_op` is called with the request index to produce each operation
    /// payload plus its read/write classification (reads take the client's
    /// fast path).
    /// Different clients may run concurrently from different threads through
    /// a shared `&SocketCluster`.
    pub fn run_client<C, F>(
        &self,
        client: C,
        requests: usize,
        timeout: Duration,
        make_op: F,
    ) -> (C, Vec<ClientOutcome>)
    where
        C: ClientProtocol,
        F: FnMut(usize) -> (Vec<u8>, OpClass),
    {
        self.run_client_until(client, requests, timeout, None, make_op)
    }

    /// [`run_client`](Self::run_client) with an overall wall-clock bound:
    /// once `abandon_at` passes, an incomplete request is given up on and
    /// the call returns. Used by the scenario runner so that failure
    /// schedules beyond the deployment's fault tolerance cannot hang a run.
    pub(crate) fn run_client_until<C, F>(
        &self,
        mut client: C,
        requests: usize,
        timeout: Duration,
        abandon_at: Option<StdInstant>,
        make_op: F,
    ) -> (C, Vec<ClientOutcome>)
    where
        C: ClientProtocol,
        F: FnMut(usize) -> (Vec<u8>, OpClass),
    {
        let port = self
            .clients
            .get(&client.id())
            .expect("client id not registered at spawn time");
        let outcomes = driver::drive_client(
            &mut client,
            driver::DrivePlan {
                requests,
                timeout,
                start: self.start,
                abandon_at,
            },
            |wait| port.recv_timeout(wait),
            |to, message| port.send(to, &message),
            make_op,
        );
        (client, outcomes)
    }

    /// Messages and bytes that actually crossed the TCP mesh so far
    /// (received side; bytes include the per-connection preambles).
    pub fn traffic(&self) -> (u64, u64) {
        (self.stats.messages_received(), self.stats.bytes_received())
    }

    /// Live transport counters (both directions).
    pub fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.stats)
    }

    /// Shuts the cluster down — replicas first, then the TCP mesh — and
    /// returns the replica cores for inspection.
    pub fn shutdown(mut self) -> Vec<Box<dyn ReplicaProtocol>> {
        for tx in self.replica_senders.values() {
            let _ = tx.send(ReplicaCommand::Shutdown);
        }
        let mut cores = Vec::new();
        for handle in self.replicas.drain(..) {
            if let Ok(core) = handle.join() {
                cores.push(core);
            }
        }
        self.replica_senders.clear();
        self.mesh.shutdown();
        cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seemore_app::{KvOp, KvResult, KvStore};
    use seemore_core::client::ClientCore;
    use seemore_core::config::ProtocolConfig;
    use seemore_core::replica::SeeMoReReplica;
    use seemore_crypto::KeyStore;
    use seemore_types::{ClusterConfig, Mode};

    #[test]
    fn socket_cluster_serves_kv_requests_over_tcp() {
        let cluster = ClusterConfig::minimal(1, 1).unwrap();
        let keystore = KeyStore::generate(41, cluster.total_size(), 1);
        let replicas: Vec<Box<dyn ReplicaProtocol>> = cluster
            .replicas()
            .map(|r| {
                Box::new(SeeMoReReplica::new(
                    r,
                    cluster,
                    ProtocolConfig::default(),
                    keystore.clone(),
                    Mode::Lion,
                    Box::new(KvStore::new()),
                )) as Box<dyn ReplicaProtocol>
            })
            .collect();
        let client_id = ClientId(0);
        let sockets = SocketCluster::spawn(replicas, &[client_id]).unwrap();
        let client = ClientCore::new(
            client_id,
            cluster,
            keystore,
            Mode::Lion,
            Duration::from_millis(500),
        );
        let (_client, outcomes) = sockets.run_client(client, 4, Duration::from_secs(10), |i| {
            (
                KvOp::Put {
                    key: format!("key-{i}").into_bytes(),
                    value: b"value".to_vec(),
                }
                .encode(),
                OpClass::Write,
            )
        });
        assert_eq!(outcomes.len(), 4);
        for outcome in &outcomes {
            assert_eq!(KvResult::decode(&outcome.result), Some(KvResult::Ok));
        }
        let (messages, bytes) = sockets.traffic();
        assert!(messages > 0, "messages crossed real sockets");
        assert!(bytes > 0, "bytes crossed real sockets");
        // Give in-flight commit notifications a moment to land, then check
        // safety: a reply quorum guarantees the *quorum* executed, so a
        // straggler may legitimately be one commit behind at shutdown —
        // but every history must be a prefix of the longest one.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let cores = sockets.shutdown();
        assert_eq!(cores.len(), cluster.total_size() as usize);
        let longest = cores
            .iter()
            .map(|core| core.executed().to_vec())
            .max_by_key(|h| h.len())
            .expect("at least one replica");
        assert_eq!(longest.len(), 4, "most advanced replica executed all 4");
        for core in &cores {
            let history = core.executed();
            assert!(
                history
                    .iter()
                    .zip(longest.iter())
                    .all(|(a, b)| a.seq == b.seq && a.digest == b.digest),
                "replica {} diverged from the canonical history",
                core.id()
            );
        }
    }
}
