//! Workload generators.
//!
//! The paper's evaluation uses micro-benchmarks named `x/y` where `x` is the
//! request payload size and `y` the reply payload size in kilobytes (0/0,
//! 0/4 and 4/0). [`Workload::micro`] reproduces those; [`Workload::kv`]
//! generates key-value operations for the examples and integration tests,
//! optionally with Zipfian key skew ([`Workload::kv_skewed`]). In sharded
//! runs [`Workload::sharded`] restricts a generator to the keys one group
//! owns, so each group's clients stay on their own shard by construction.

use rand::Rng;
use seemore_app::KvOp;
use seemore_core::route_operation;
use seemore_types::{GroupId, OpClass, ShardMap};

/// A per-client operation generator.
#[derive(Debug, Clone)]
pub enum Workload {
    /// Fixed-size opaque payloads executed by the no-op application
    /// (the paper's micro-benchmarks).
    Micro {
        /// Request payload size in bytes.
        request_size: usize,
    },
    /// Key-value operations executed by the replicated KV store.
    Kv {
        /// Number of distinct keys.
        keys: u64,
        /// Size of written values in bytes.
        value_size: usize,
        /// Fraction of operations that are reads (0.0 – 1.0).
        read_fraction: f64,
        /// Zipfian skew exponent for key popularity. `0.0` (the default)
        /// selects keys uniformly; larger values concentrate traffic on a
        /// hot set (YCSB's classic setting is `0.99`).
        skew: f64,
    },
    /// A workload restricted to the keys one shard group owns: operations
    /// are drawn from `inner` and rejection-sampled against `map` until one
    /// routes to `group`.
    Sharded {
        /// The underlying generator.
        inner: Box<Workload>,
        /// The shard map partitioning the keyspace.
        map: ShardMap,
        /// The group whose keys this generator produces.
        group: GroupId,
    },
}

impl Workload {
    /// The `x/0` and `x/4` micro-benchmarks: requests of `request_size`
    /// bytes (the reply size is configured on the application side).
    pub fn micro(request_size: usize) -> Self {
        Workload::Micro { request_size }
    }

    /// The 0/0 micro-benchmark.
    pub fn micro_0_0() -> Self {
        Workload::micro(0)
    }

    /// A key-value workload with uniform key popularity.
    pub fn kv(keys: u64, value_size: usize, read_fraction: f64) -> Self {
        Workload::kv_skewed(keys, value_size, read_fraction, 0.0)
    }

    /// A key-value workload with Zipfian key popularity: key rank `i`
    /// (1-based) is drawn with probability proportional to `1 / i^skew`.
    /// `skew = 0.0` degenerates to the uniform workload.
    pub fn kv_skewed(keys: u64, value_size: usize, read_fraction: f64, skew: f64) -> Self {
        Workload::Kv {
            keys,
            value_size,
            read_fraction,
            skew,
        }
    }

    /// Restricts `self` to the keys `group` owns under `map`.
    pub fn sharded(self, map: ShardMap, group: GroupId) -> Self {
        Workload::Sharded {
            inner: Box::new(self),
            map,
            group,
        }
    }

    /// Generates the next operation payload.
    pub fn next_op<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u8> {
        self.next_classified(rng).0
    }

    /// Generates the next operation payload together with its read/write
    /// classification (the workload is the layer that knows what it
    /// generated, so classification costs nothing here).
    ///
    /// Micro operations are opaque payloads executed by the no-op
    /// application; they classify as writes so `read_fraction = 0` KV runs
    /// and micro runs exercise the identical ordered path.
    pub fn next_classified<R: Rng + ?Sized>(&self, rng: &mut R) -> (Vec<u8>, OpClass) {
        match self {
            Workload::Micro { request_size } => (vec![0xA5u8; *request_size], OpClass::Write),
            Workload::Kv {
                keys,
                value_size,
                read_fraction,
                skew,
            } => {
                let rank = if *skew > 0.0 {
                    zipf_rank(rng, *keys, *skew)
                } else {
                    rng.gen_range(0..*keys)
                };
                let key = format!("key-{rank}").into_bytes();
                if rng.gen_bool(read_fraction.clamp(0.0, 1.0)) {
                    let op = KvOp::Get { key };
                    let class = op.class();
                    (op.encode(), class)
                } else {
                    let value = vec![rng.gen::<u8>(); *value_size];
                    let op = KvOp::Put { key, value };
                    let class = op.class();
                    (op.encode(), class)
                }
            }
            Workload::Sharded { inner, map, group } => {
                // Rejection-sample until the operation routes to this group.
                // With `g` groups an attempt hits with probability ~1/g, so
                // the cap is effectively unreachable for real maps; if it
                // does trip (a map with an empty slice of the keyspace), the
                // last draw passes through rather than looping forever.
                let mut drawn = inner.next_classified(rng);
                for _ in 0..64 {
                    if route_operation(map, &drawn.0) == *group {
                        break;
                    }
                    drawn = inner.next_classified(rng);
                }
                drawn
            }
        }
    }

    /// The nominal request payload size, used for reporting.
    pub fn request_size(&self) -> usize {
        match self {
            Workload::Micro { request_size } => *request_size,
            Workload::Kv { value_size, .. } => *value_size + 16,
            Workload::Sharded { inner, .. } => inner.request_size(),
        }
    }
}

/// Draws a 0-based key rank from the Zipfian distribution over `keys` ranks
/// with exponent `skew`, by an inverse-CDF walk over the unnormalised
/// weights `1 / (rank + 1)^skew`.
///
/// The walk is `O(keys)` per draw, which is deliberate: workloads in this
/// repository use key counts in the hundreds, the generator is cloneable
/// state-free, and an exact walk keeps the distribution honest (no
/// approximation constant to validate).
fn zipf_rank<R: Rng + ?Sized>(rng: &mut R, keys: u64, skew: f64) -> u64 {
    let total: f64 = (1..=keys).map(|rank| (rank as f64).powf(-skew)).sum();
    let mut remaining = rng.gen::<f64>() * total;
    for rank in 1..=keys {
        remaining -= (rank as f64).powf(-skew);
        if remaining <= 0.0 {
            return rank - 1;
        }
    }
    keys - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn micro_workload_produces_fixed_size_payloads() {
        let mut rng = SmallRng::seed_from_u64(1);
        let w = Workload::micro(4096);
        assert_eq!(w.next_op(&mut rng).len(), 4096);
        assert_eq!(w.request_size(), 4096);
        assert_eq!(Workload::micro_0_0().next_op(&mut rng).len(), 0);
    }

    #[test]
    fn classification_matches_generated_operations() {
        let mut rng = SmallRng::seed_from_u64(3);
        let w = Workload::kv(10, 8, 0.5);
        for _ in 0..100 {
            let (op, class) = w.next_classified(&mut rng);
            assert_eq!(KvOp::classify(&op), class);
        }
        // Micro ops are opaque: conservatively writes.
        let (_, class) = Workload::micro(16).next_classified(&mut rng);
        assert_eq!(class, OpClass::Write);
        // read_fraction = 0 produces writes only.
        let w = Workload::kv(10, 8, 0.0);
        for _ in 0..50 {
            assert_eq!(w.next_classified(&mut rng).1, OpClass::Write);
        }
    }

    #[test]
    fn kv_workload_produces_decodable_operations() {
        let mut rng = SmallRng::seed_from_u64(2);
        let w = Workload::kv(100, 32, 0.5);
        let mut reads = 0;
        let mut writes = 0;
        for _ in 0..200 {
            let op = w.next_op(&mut rng);
            match KvOp::decode(&op).expect("kv ops must decode") {
                KvOp::Get { .. } => reads += 1,
                KvOp::Put { value, .. } => {
                    assert_eq!(value.len(), 32);
                    writes += 1;
                }
                other => panic!("unexpected op {other:?}"),
            }
        }
        assert!(reads > 50 && writes > 50, "reads={reads} writes={writes}");
        assert!(w.request_size() > 32);
    }

    /// Frequency of each key rank over `draws` operations.
    fn key_frequencies(w: &Workload, keys: u64, draws: u64, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0u64; keys as usize];
        for _ in 0..draws {
            let op = w.next_op(&mut rng);
            let key = KvOp::key_of(&op).expect("kv op");
            let rank: u64 = std::str::from_utf8(&key[4..]).unwrap().parse().unwrap();
            counts[rank as usize] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / draws as f64)
            .collect()
    }

    #[test]
    fn zero_skew_takes_the_uniform_path_bit_identically() {
        // `kv` and an explicit skew of 0.0 must consume the RNG identically
        // to the historical uniform generator (same draws, same order), so
        // adding the skew knob cannot perturb any existing seeded run.
        let uniform = Workload::kv(64, 16, 0.3);
        let skewed_zero = Workload::kv_skewed(64, 16, 0.3, 0.0);
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..500 {
            assert_eq!(
                uniform.next_classified(&mut a),
                skewed_zero.next_classified(&mut b)
            );
        }
    }

    #[test]
    fn zipfian_skew_concentrates_traffic_within_theoretical_bounds() {
        let keys = 100u64;
        let skew = 0.99f64;
        let draws = 40_000u64;
        let freq = key_frequencies(&Workload::kv_skewed(keys, 8, 0.0, skew), keys, draws, 7);

        // Theoretical mass of rank i (1-based) is (1/i^s) / H where
        // H = sum over ranks of 1/i^s.
        let h: f64 = (1..=keys).map(|i| (i as f64).powf(-skew)).sum();
        for (idx, expected_rank) in [(0usize, 1u64), (1, 2), (9, 10)] {
            let expected = (expected_rank as f64).powf(-skew) / h;
            let observed = freq[idx];
            assert!(
                (observed - expected).abs() < 0.15 * expected + 0.002,
                "rank {expected_rank}: observed {observed:.4}, expected {expected:.4}"
            );
        }
        // The hot key dominates: far above the uniform share and above
        // rank 10 by roughly 10^0.99.
        assert!(freq[0] > 4.0 / keys as f64);
        assert!(freq[0] > 5.0 * freq[9]);
        // Uniform, by contrast, stays near 1/keys everywhere.
        let uniform = key_frequencies(&Workload::kv(keys, 8, 0.0), keys, draws, 7);
        for (rank, f) in uniform.iter().enumerate() {
            assert!(
                (*f - 0.01).abs() < 0.006,
                "uniform rank {rank} drifted: {f:.4}"
            );
        }
    }

    #[test]
    fn sharded_workloads_only_produce_owned_keys() {
        let map = ShardMap::uniform(4);
        let mut rng = SmallRng::seed_from_u64(9);
        for group in 0..4u32 {
            let w = Workload::kv(256, 8, 0.5).sharded(map.clone(), GroupId(group));
            assert_eq!(w.request_size(), Workload::kv(256, 8, 0.5).request_size());
            for _ in 0..200 {
                let op = w.next_op(&mut rng);
                let key = KvOp::key_of(&op).expect("kv op");
                assert_eq!(map.group_of(key), GroupId(group));
            }
        }
    }
}
