//! Workload generators.
//!
//! The paper's evaluation uses micro-benchmarks named `x/y` where `x` is the
//! request payload size and `y` the reply payload size in kilobytes (0/0,
//! 0/4 and 4/0). [`Workload::micro`] reproduces those; [`Workload::kv`]
//! generates key-value operations for the examples and integration tests.

use rand::Rng;
use seemore_app::KvOp;
use seemore_types::OpClass;

/// A per-client operation generator.
#[derive(Debug, Clone)]
pub enum Workload {
    /// Fixed-size opaque payloads executed by the no-op application
    /// (the paper's micro-benchmarks).
    Micro {
        /// Request payload size in bytes.
        request_size: usize,
    },
    /// Uniform key-value operations executed by the replicated KV store.
    Kv {
        /// Number of distinct keys.
        keys: u64,
        /// Size of written values in bytes.
        value_size: usize,
        /// Fraction of operations that are reads (0.0 – 1.0).
        read_fraction: f64,
    },
}

impl Workload {
    /// The `x/0` and `x/4` micro-benchmarks: requests of `request_size`
    /// bytes (the reply size is configured on the application side).
    pub fn micro(request_size: usize) -> Self {
        Workload::Micro { request_size }
    }

    /// The 0/0 micro-benchmark.
    pub fn micro_0_0() -> Self {
        Workload::micro(0)
    }

    /// A key-value workload.
    pub fn kv(keys: u64, value_size: usize, read_fraction: f64) -> Self {
        Workload::Kv {
            keys,
            value_size,
            read_fraction,
        }
    }

    /// Generates the next operation payload.
    pub fn next_op<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u8> {
        self.next_classified(rng).0
    }

    /// Generates the next operation payload together with its read/write
    /// classification (the workload is the layer that knows what it
    /// generated, so classification costs nothing here).
    ///
    /// Micro operations are opaque payloads executed by the no-op
    /// application; they classify as writes so `read_fraction = 0` KV runs
    /// and micro runs exercise the identical ordered path.
    pub fn next_classified<R: Rng + ?Sized>(&self, rng: &mut R) -> (Vec<u8>, OpClass) {
        match self {
            Workload::Micro { request_size } => (vec![0xA5u8; *request_size], OpClass::Write),
            Workload::Kv {
                keys,
                value_size,
                read_fraction,
            } => {
                let key = format!("key-{}", rng.gen_range(0..*keys)).into_bytes();
                if rng.gen_bool(read_fraction.clamp(0.0, 1.0)) {
                    let op = KvOp::Get { key };
                    let class = op.class();
                    (op.encode(), class)
                } else {
                    let value = vec![rng.gen::<u8>(); *value_size];
                    let op = KvOp::Put { key, value };
                    let class = op.class();
                    (op.encode(), class)
                }
            }
        }
    }

    /// The nominal request payload size, used for reporting.
    pub fn request_size(&self) -> usize {
        match self {
            Workload::Micro { request_size } => *request_size,
            Workload::Kv { value_size, .. } => *value_size + 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn micro_workload_produces_fixed_size_payloads() {
        let mut rng = SmallRng::seed_from_u64(1);
        let w = Workload::micro(4096);
        assert_eq!(w.next_op(&mut rng).len(), 4096);
        assert_eq!(w.request_size(), 4096);
        assert_eq!(Workload::micro_0_0().next_op(&mut rng).len(), 0);
    }

    #[test]
    fn classification_matches_generated_operations() {
        let mut rng = SmallRng::seed_from_u64(3);
        let w = Workload::kv(10, 8, 0.5);
        for _ in 0..100 {
            let (op, class) = w.next_classified(&mut rng);
            assert_eq!(KvOp::classify(&op), class);
        }
        // Micro ops are opaque: conservatively writes.
        let (_, class) = Workload::micro(16).next_classified(&mut rng);
        assert_eq!(class, OpClass::Write);
        // read_fraction = 0 produces writes only.
        let w = Workload::kv(10, 8, 0.0);
        for _ in 0..50 {
            assert_eq!(w.next_classified(&mut rng).1, OpClass::Write);
        }
    }

    #[test]
    fn kv_workload_produces_decodable_operations() {
        let mut rng = SmallRng::seed_from_u64(2);
        let w = Workload::kv(100, 32, 0.5);
        let mut reads = 0;
        let mut writes = 0;
        for _ in 0..200 {
            let op = w.next_op(&mut rng);
            match KvOp::decode(&op).expect("kv ops must decode") {
                KvOp::Get { .. } => reads += 1,
                KvOp::Put { value, .. } => {
                    assert_eq!(value.len(), 32);
                    writes += 1;
                }
                other => panic!("unexpected op {other:?}"),
            }
        }
        assert!(reads > 50 && writes > 50, "reads={reads} writes={writes}");
        assert!(w.request_size() > 32);
    }
}
