//! A thread-per-replica runtime over in-memory channels.
//!
//! The discrete-event simulator is what regenerates the paper's figures; this
//! runtime exists to show the same protocol cores running under real
//! concurrency (OS threads, real clocks, crossbeam channels), which is how
//! the examples exercise the public API end to end. Timers are implemented
//! with `recv_timeout` deadlines inside each replica thread.

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use seemore_core::actions::{Action, Timer};
use seemore_core::client::{ClientOutcome, ClientProtocol};
use seemore_core::protocol::ReplicaProtocol;
use seemore_types::{ClientId, Duration, Instant, NodeId, ReplicaId};
use seemore_wire::Message;
use std::collections::{BTreeMap, HashMap};
use std::thread::JoinHandle;
use std::time::Instant as StdInstant;

/// A message in flight between threads.
#[derive(Debug)]
struct Envelope {
    from: NodeId,
    message: Message,
}

/// Control commands sent to a replica thread.
#[allow(clippy::large_enum_variant)] // Deliver dominates and is the common case
enum Control {
    Deliver(Envelope),
    Crash,
    Shutdown,
}

/// Handle to a running threaded cluster.
pub struct ThreadedCluster {
    replica_senders: HashMap<ReplicaId, Sender<Control>>,
    client_inboxes: HashMap<ClientId, Receiver<Envelope>>,
    client_outbox: Sender<(NodeId, Envelope)>,
    router: Option<JoinHandle<()>>,
    replicas: Vec<JoinHandle<Box<dyn ReplicaProtocol>>>,
    start: StdInstant,
}

/// Converts elapsed wall-clock time into the protocol's virtual instants.
fn to_instant(start: StdInstant) -> Instant {
    Instant::from_nanos(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX))
}

impl ThreadedCluster {
    /// Spawns one thread per replica plus a router thread.
    ///
    /// `client_ids` lists the clients that will interact with the cluster
    /// through [`run_client`](Self::run_client).
    pub fn spawn(replicas: Vec<Box<dyn ReplicaProtocol>>, client_ids: &[ClientId]) -> Self {
        let start = StdInstant::now();
        // Router: fan-in channel carrying (destination, envelope).
        let (router_tx, router_rx) = unbounded::<(NodeId, Envelope)>();

        let mut replica_senders: HashMap<ReplicaId, Sender<Control>> = HashMap::new();
        let mut replica_handles = Vec::new();
        let mut client_senders: HashMap<ClientId, Sender<Envelope>> = HashMap::new();
        let mut client_inboxes = HashMap::new();
        for client in client_ids {
            let (tx, rx) = unbounded();
            client_senders.insert(*client, tx);
            client_inboxes.insert(*client, rx);
        }

        for mut replica in replicas {
            let id = replica.id();
            let (tx, rx) = unbounded::<Control>();
            replica_senders.insert(id, tx);
            let out = router_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("replica-{id}"))
                .spawn(move || {
                    let mut timers: BTreeMap<Instant, Vec<Timer>> = BTreeMap::new();
                    let mut armed: HashMap<Timer, Instant> = HashMap::new();
                    loop {
                        // Wait until the next timer deadline (or a message).
                        let now = to_instant(start);
                        let next_deadline = timers.keys().next().copied();
                        let wait = match next_deadline {
                            Some(deadline) if deadline > now => (deadline - now).to_std(),
                            Some(_) => std::time::Duration::from_millis(0),
                            None => std::time::Duration::from_millis(50),
                        };
                        let mut actions = Vec::new();
                        match rx.recv_timeout(wait) {
                            Ok(Control::Deliver(envelope)) => {
                                let now = to_instant(start);
                                actions = replica.on_message(envelope.from, envelope.message, now);
                            }
                            Ok(Control::Crash) => replica.crash(),
                            Ok(Control::Shutdown) => return replica,
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => return replica,
                        }
                        // Fire due timers.
                        let now = to_instant(start);
                        let due: Vec<Instant> = timers.range(..=now).map(|(t, _)| *t).collect();
                        for deadline in due {
                            for timer in timers.remove(&deadline).unwrap_or_default() {
                                if armed.get(&timer) == Some(&deadline) {
                                    armed.remove(&timer);
                                    actions.extend(replica.on_timer(timer, now));
                                }
                            }
                        }
                        // Carry out the actions.
                        for action in actions.drain(..) {
                            match action {
                                Action::Send { to, message } => {
                                    let _ = out.send((
                                        to,
                                        Envelope {
                                            from: NodeId::Replica(id),
                                            message,
                                        },
                                    ));
                                }
                                Action::SetTimer { timer, after } => {
                                    let deadline = to_instant(start) + after;
                                    armed.insert(timer, deadline);
                                    timers.entry(deadline).or_default().push(timer);
                                }
                                Action::CancelTimer { timer } => {
                                    armed.remove(&timer);
                                }
                                Action::Executed { .. } | Action::Violation(_) => {}
                            }
                        }
                    }
                })
                .expect("spawn replica thread");
            replica_handles.push(handle);
        }

        // Router thread: moves envelopes to replica or client inboxes.
        let senders = replica_senders.clone();
        let router = std::thread::Builder::new()
            .name("router".to_string())
            .spawn(move || {
                while let Ok((to, envelope)) = router_rx.recv() {
                    match to {
                        NodeId::Replica(id) => {
                            if let Some(tx) = senders.get(&id) {
                                let _ = tx.send(Control::Deliver(envelope));
                            }
                        }
                        NodeId::Client(id) => {
                            if let Some(tx) = client_senders.get(&id) {
                                let _ = tx.send(envelope);
                            }
                        }
                    }
                }
            })
            .expect("spawn router thread");

        ThreadedCluster {
            replica_senders,
            client_inboxes,
            client_outbox: router_tx,
            router: Some(router),
            replicas: replica_handles,
            start,
        }
    }

    /// Crashes a replica (fail-stop).
    pub fn crash(&self, replica: ReplicaId) {
        if let Some(tx) = self.replica_senders.get(&replica) {
            let _ = tx.send(Control::Crash);
        }
    }

    /// Runs a closed-loop client on the calling thread: submits `requests`
    /// operations one after another and returns the outcomes.
    ///
    /// `make_op` is called with the request index to produce each operation.
    pub fn run_client<C, F>(
        &self,
        mut client: C,
        requests: usize,
        timeout: Duration,
        mut make_op: F,
    ) -> (C, Vec<ClientOutcome>)
    where
        C: ClientProtocol,
        F: FnMut(usize) -> Vec<u8>,
    {
        let inbox = self
            .client_inboxes
            .get(&client.id())
            .expect("client id not registered at spawn time");
        let mut outcomes = Vec::new();
        for index in 0..requests {
            let now = to_instant(self.start);
            let actions = client.submit(make_op(index), now);
            self.perform_client_actions(&client, actions);
            let deadline = StdInstant::now() + timeout.to_std();
            while client.has_pending() {
                let remaining = deadline.saturating_duration_since(StdInstant::now());
                if remaining.is_zero() {
                    // Retransmit and extend the deadline once; protocols with
                    // a crashed primary need the broadcast path.
                    let actions = client.on_retransmit_timer(to_instant(self.start));
                    self.perform_client_actions(&client, actions);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
                match inbox.recv_timeout(remaining.min(std::time::Duration::from_millis(20))) {
                    Ok(envelope) => {
                        let now = to_instant(self.start);
                        let actions = client.on_message(envelope.from, envelope.message, now);
                        self.perform_client_actions(&client, actions);
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            outcomes.extend(client.take_completed());
        }
        (client, outcomes)
    }

    fn perform_client_actions<C: ClientProtocol>(&self, client: &C, actions: Vec<Action>) {
        for action in actions {
            if let Action::Send { to, message } = action {
                let _ = self.client_outbox.send((
                    to,
                    Envelope {
                        from: NodeId::Client(client.id()),
                        message,
                    },
                ));
            }
        }
    }

    /// Shuts the cluster down and returns the replica cores for inspection.
    pub fn shutdown(mut self) -> Vec<Box<dyn ReplicaProtocol>> {
        for tx in self.replica_senders.values() {
            let _ = tx.send(Control::Shutdown);
        }
        let mut cores = Vec::new();
        for handle in self.replicas.drain(..) {
            if let Ok(core) = handle.join() {
                cores.push(core);
            }
        }
        drop(self.client_outbox.clone());
        self.replica_senders.clear();
        if let Some(router) = self.router.take() {
            // The router exits once every sender is dropped; detach it.
            drop(router);
        }
        cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seemore_app::{KvOp, KvResult, KvStore};
    use seemore_core::client::ClientCore;
    use seemore_core::config::ProtocolConfig;
    use seemore_core::replica::SeeMoReReplica;
    use seemore_crypto::KeyStore;
    use seemore_types::{ClusterConfig, Mode};

    #[test]
    fn threaded_cluster_serves_kv_requests() {
        let cluster = ClusterConfig::minimal(1, 1).unwrap();
        let keystore = KeyStore::generate(99, cluster.total_size(), 1);
        let replicas: Vec<Box<dyn ReplicaProtocol>> = cluster
            .replicas()
            .map(|r| {
                Box::new(SeeMoReReplica::new(
                    r,
                    cluster,
                    ProtocolConfig::default(),
                    keystore.clone(),
                    Mode::Lion,
                    Box::new(KvStore::new()),
                )) as Box<dyn ReplicaProtocol>
            })
            .collect();
        let client_id = ClientId(0);
        let threaded = ThreadedCluster::spawn(replicas, &[client_id]);
        let client = ClientCore::new(
            client_id,
            cluster,
            keystore,
            Mode::Lion,
            Duration::from_millis(200),
        );
        let (_client, outcomes) = threaded.run_client(client, 4, Duration::from_secs(5), |i| {
            KvOp::Put {
                key: format!("key-{i}").into_bytes(),
                value: b"value".to_vec(),
            }
            .encode()
        });
        assert_eq!(outcomes.len(), 4);
        for outcome in &outcomes {
            assert_eq!(KvResult::decode(&outcome.result), Some(KvResult::Ok));
        }
        let cores = threaded.shutdown();
        assert_eq!(cores.len(), cluster.total_size() as usize);
        // Every replica executed all four requests.
        for core in &cores {
            assert_eq!(core.executed().len(), 4, "replica {} lagging", core.id());
        }
    }
}
