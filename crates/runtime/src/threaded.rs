//! A thread-per-replica runtime over in-memory channels.
//!
//! One of the three execution substrates (see the crate docs for when to use
//! which): real OS threads and real clocks like
//! [`SocketCluster`](crate::socket::SocketCluster), but messages stay plain
//! Rust values moved through crossbeam channels by a router thread — no
//! serialization, no sockets. That makes it the fastest way to exercise the
//! protocol cores under true concurrency, and the reference point the socket
//! runtime's loopback end-to-end tests compare their histories against.
//!
//! The replica event loop (timer wheel, `ReplicaCommand` control protocol)
//! and the closed-loop client driver are shared with the socket runtime
//! through `crate::driver`; only the byte-moving differs. Timers are
//! implemented with `recv_timeout` deadlines inside each replica thread.
//! Delivered traffic is counted with the [`WireSize`] model — the same
//! number the socket runtime observes as real encoded bytes.

use crate::driver::{self, ReplicaCommand};
use crossbeam_channel::{unbounded, Receiver, Sender};
use seemore_core::client::{ClientOutcome, ClientProtocol};
use seemore_core::protocol::ReplicaProtocol;
use seemore_types::{ClientId, Duration, Mode, NodeId, OpClass, ReplicaId};
use seemore_wire::{Message, WireSize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant as StdInstant;

/// A message in flight between threads.
#[derive(Debug)]
struct Envelope {
    from: NodeId,
    message: Message,
}

/// The threaded runtime's [`driver::ReplicaSink`]: messages stay Rust
/// values, so a broadcast is one clone per destination through the router
/// (the default `broadcast`); there are no bytes to share.
struct RouterSink {
    from: NodeId,
    out: Sender<(NodeId, Envelope)>,
}

impl driver::ReplicaSink for RouterSink {
    fn send(&mut self, to: NodeId, message: Message) {
        let _ = self.out.send((
            to,
            Envelope {
                from: self.from,
                message,
            },
        ));
    }
}

/// Handle to a running threaded cluster.
///
/// The handle is `Sync`: multiple client threads may call
/// [`run_client`](Self::run_client) concurrently (one call per client id).
pub struct ThreadedCluster {
    replica_senders: HashMap<ReplicaId, Sender<ReplicaCommand>>,
    client_inboxes: HashMap<ClientId, Receiver<Envelope>>,
    client_outbox: Sender<(NodeId, Envelope)>,
    router: Option<JoinHandle<()>>,
    replicas: Vec<JoinHandle<Box<dyn ReplicaProtocol>>>,
    messages_delivered: Arc<AtomicU64>,
    bytes_delivered: Arc<AtomicU64>,
    start: StdInstant,
}

impl ThreadedCluster {
    /// Spawns one thread per replica plus a router thread.
    ///
    /// `client_ids` lists the clients that will interact with the cluster
    /// through [`run_client`](Self::run_client).
    pub fn spawn(replicas: Vec<Box<dyn ReplicaProtocol>>, client_ids: &[ClientId]) -> Self {
        let start = StdInstant::now();
        // Router: fan-in channel carrying (destination, envelope).
        let (router_tx, router_rx) = unbounded::<(NodeId, Envelope)>();

        let mut replica_senders: HashMap<ReplicaId, Sender<ReplicaCommand>> = HashMap::new();
        let mut replica_handles = Vec::new();
        let mut client_senders: HashMap<ClientId, Sender<Envelope>> = HashMap::new();
        let mut client_inboxes = HashMap::new();
        for client in client_ids {
            let (tx, rx) = unbounded();
            client_senders.insert(*client, tx);
            client_inboxes.insert(*client, rx);
        }

        for replica in replicas {
            let id = replica.id();
            let (tx, rx) = unbounded::<ReplicaCommand>();
            replica_senders.insert(id, tx);
            let out = router_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("replica-{id}"))
                .spawn(move || {
                    driver::run_replica(
                        replica,
                        &rx,
                        start,
                        RouterSink {
                            from: NodeId::Replica(id),
                            out,
                        },
                    )
                })
                .expect("spawn replica thread");
            replica_handles.push(handle);
        }

        // Router thread: moves envelopes to replica or client inboxes.
        let senders = replica_senders.clone();
        let messages_delivered = Arc::new(AtomicU64::new(0));
        let bytes_delivered = Arc::new(AtomicU64::new(0));
        let message_count = Arc::clone(&messages_delivered);
        let byte_count = Arc::clone(&bytes_delivered);
        let router = std::thread::Builder::new()
            .name("router".to_string())
            .spawn(move || {
                while let Ok((to, envelope)) = router_rx.recv() {
                    message_count.fetch_add(1, Ordering::Relaxed);
                    byte_count.fetch_add(envelope.message.wire_size() as u64, Ordering::Relaxed);
                    match to {
                        NodeId::Replica(id) => {
                            if let Some(tx) = senders.get(&id) {
                                let _ = tx.send(ReplicaCommand::Deliver {
                                    from: envelope.from,
                                    message: envelope.message,
                                });
                            }
                        }
                        NodeId::Client(id) => {
                            if let Some(tx) = client_senders.get(&id) {
                                let _ = tx.send(envelope);
                            }
                        }
                    }
                }
            })
            .expect("spawn router thread");

        ThreadedCluster {
            replica_senders,
            client_inboxes,
            client_outbox: router_tx,
            router: Some(router),
            replicas: replica_handles,
            messages_delivered,
            bytes_delivered,
            start,
        }
    }

    /// Crashes a replica (fail-stop).
    pub fn crash(&self, replica: ReplicaId) {
        if let Some(tx) = self.replica_senders.get(&replica) {
            let _ = tx.send(ReplicaCommand::Crash);
        }
    }

    /// Restarts a crashed replica with `core`, a fresh protocol core rebuilt
    /// from its durable store (see `seemore_store::Durability::recover`).
    /// The replica thread drops the dead incarnation (and its timers) and
    /// runs the new core's `on_start`, which announces the rejoin.
    pub fn recover(&self, replica: ReplicaId, core: Box<dyn ReplicaProtocol>) {
        assert_eq!(core.id(), replica, "recovery core built for the wrong id");
        if let Some(tx) = self.replica_senders.get(&replica) {
            let _ = tx.send(ReplicaCommand::Recover(core));
        }
    }

    /// Asks `replica` to announce a dynamic mode switch (SeeMoRe only; other
    /// cores ignore the request). This is how `Scenario::with_mode_switch`
    /// is delivered on the concurrent runtimes.
    pub fn request_mode_switch(&self, replica: ReplicaId, mode: Mode) {
        if let Some(tx) = self.replica_senders.get(&replica) {
            let _ = tx.send(ReplicaCommand::ModeSwitch { mode });
        }
    }

    /// The wall-clock epoch all protocol instants (timers, client outcome
    /// timestamps) are measured from.
    pub(crate) fn epoch(&self) -> StdInstant {
        self.start
    }

    /// Runs a closed-loop client on the calling thread: submits `requests`
    /// operations one after another and returns the outcomes.
    ///
    /// `make_op` is called with the request index to produce each operation
    /// payload plus its read/write classification (reads take the client's
    /// fast path).
    /// Different clients may run concurrently from different threads through
    /// a shared `&ThreadedCluster`.
    pub fn run_client<C, F>(
        &self,
        client: C,
        requests: usize,
        timeout: Duration,
        make_op: F,
    ) -> (C, Vec<ClientOutcome>)
    where
        C: ClientProtocol,
        F: FnMut(usize) -> (Vec<u8>, OpClass),
    {
        self.run_client_until(client, requests, timeout, None, make_op)
    }

    /// [`run_client`](Self::run_client) with an overall wall-clock bound:
    /// once `abandon_at` passes, an incomplete request is given up on and
    /// the call returns. Used by the scenario runner so that failure
    /// schedules beyond the deployment's fault tolerance cannot hang a run.
    pub(crate) fn run_client_until<C, F>(
        &self,
        mut client: C,
        requests: usize,
        timeout: Duration,
        abandon_at: Option<StdInstant>,
        make_op: F,
    ) -> (C, Vec<ClientOutcome>)
    where
        C: ClientProtocol,
        F: FnMut(usize) -> (Vec<u8>, OpClass),
    {
        let inbox = self
            .client_inboxes
            .get(&client.id())
            .expect("client id not registered at spawn time");
        let from = NodeId::Client(client.id());
        let outcomes = driver::drive_client(
            &mut client,
            driver::DrivePlan {
                requests,
                timeout,
                start: self.start,
                abandon_at,
            },
            |wait| {
                inbox
                    .recv_timeout(wait)
                    .map(|envelope| (envelope.from, envelope.message))
            },
            |to, message| {
                let _ = self.client_outbox.send((to, Envelope { from, message }));
            },
            make_op,
        );
        (client, outcomes)
    }

    /// Messages and bytes delivered by the router so far (wire-size model —
    /// by the codec's size contract, also the bytes a real transport would
    /// have carried).
    pub fn traffic(&self) -> (u64, u64) {
        (
            self.messages_delivered.load(Ordering::Relaxed),
            self.bytes_delivered.load(Ordering::Relaxed),
        )
    }

    /// Shuts the cluster down and returns the replica cores for inspection.
    pub fn shutdown(mut self) -> Vec<Box<dyn ReplicaProtocol>> {
        for tx in self.replica_senders.values() {
            let _ = tx.send(ReplicaCommand::Shutdown);
        }
        let mut cores = Vec::new();
        for handle in self.replicas.drain(..) {
            if let Ok(core) = handle.join() {
                cores.push(core);
            }
        }
        drop(self.client_outbox.clone());
        self.replica_senders.clear();
        if let Some(router) = self.router.take() {
            // The router exits once every sender is dropped; detach it.
            drop(router);
        }
        cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seemore_app::{KvOp, KvResult, KvStore};
    use seemore_core::client::ClientCore;
    use seemore_core::config::ProtocolConfig;
    use seemore_core::replica::SeeMoReReplica;
    use seemore_crypto::KeyStore;
    use seemore_types::{ClusterConfig, Mode};

    #[test]
    fn threaded_cluster_serves_kv_requests() {
        let cluster = ClusterConfig::minimal(1, 1).unwrap();
        let keystore = KeyStore::generate(99, cluster.total_size(), 1);
        let replicas: Vec<Box<dyn ReplicaProtocol>> = cluster
            .replicas()
            .map(|r| {
                Box::new(SeeMoReReplica::new(
                    r,
                    cluster,
                    ProtocolConfig::default(),
                    keystore.clone(),
                    Mode::Lion,
                    Box::new(KvStore::new()),
                )) as Box<dyn ReplicaProtocol>
            })
            .collect();
        let client_id = ClientId(0);
        let threaded = ThreadedCluster::spawn(replicas, &[client_id]);
        let client = ClientCore::new(
            client_id,
            cluster,
            keystore,
            Mode::Lion,
            Duration::from_millis(200),
        );
        let (_client, outcomes) = threaded.run_client(client, 4, Duration::from_secs(5), |i| {
            (
                KvOp::Put {
                    key: format!("key-{i}").into_bytes(),
                    value: b"value".to_vec(),
                }
                .encode(),
                OpClass::Write,
            )
        });
        assert_eq!(outcomes.len(), 4);
        for outcome in &outcomes {
            assert_eq!(KvResult::decode(&outcome.result), Some(KvResult::Ok));
        }
        let (messages, bytes) = threaded.traffic();
        assert!(messages > 0);
        assert!(bytes > 0);
        let cores = threaded.shutdown();
        assert_eq!(cores.len(), cluster.total_size() as usize);
        // Every replica executed all four requests.
        for core in &cores {
            assert_eq!(core.executed().len(), 4, "replica {} lagging", core.id());
        }
    }

    #[test]
    fn clients_can_run_concurrently_through_a_shared_handle() {
        let cluster = ClusterConfig::minimal(1, 1).unwrap();
        let keystore = KeyStore::generate(13, cluster.total_size(), 4);
        let replicas: Vec<Box<dyn ReplicaProtocol>> = cluster
            .replicas()
            .map(|r| {
                Box::new(SeeMoReReplica::new(
                    r,
                    cluster,
                    ProtocolConfig::default(),
                    keystore.clone(),
                    Mode::Lion,
                    Box::new(KvStore::new()),
                )) as Box<dyn ReplicaProtocol>
            })
            .collect();
        let client_ids: Vec<ClientId> = (0..4).map(ClientId).collect();
        let threaded = ThreadedCluster::spawn(replicas, &client_ids);
        let completed: usize = std::thread::scope(|scope| {
            let cluster_ref = &threaded;
            let keystore = &keystore;
            client_ids
                .iter()
                .map(|id| {
                    let client = ClientCore::new(
                        *id,
                        cluster,
                        keystore.clone(),
                        Mode::Lion,
                        Duration::from_millis(200),
                    );
                    scope.spawn(move || {
                        let (_, outcomes) =
                            cluster_ref.run_client(client, 3, Duration::from_secs(5), |i| {
                                (
                                    KvOp::Put {
                                        key: format!("k-{i}").into_bytes(),
                                        value: b"v".to_vec(),
                                    }
                                    .encode(),
                                    OpClass::Write,
                                )
                            });
                        outcomes.len()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(completed, 12);
        threaded.shutdown();
    }
}
