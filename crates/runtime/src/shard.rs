//! Sharded multi-group scale-out: N independent SeeMoRe groups behind one
//! scenario.
//!
//! [`Scenario::with_shards`] partitions the keyspace with a hash
//! [`ShardMap`] and fronts `n` *complete* clusters — each group has its own
//! replicas, primary, view changes, checkpoints and key material, running
//! the unmodified single-group protocol. Nothing crosses groups: agreement,
//! recovery and mode switches are group-local, which is exactly why
//! aggregate throughput scales.
//!
//! On the concurrent runtimes [`ShardedCluster`] spawns one physical
//! cluster per group (threaded mesh or real loopback sockets), wraps every
//! replica in a [`ShardGuard`] that refuses keys the group does not own
//! with a signed redirect, and gives every client a [`ShardRouter`] plus
//! one client core per group. The closed-loop drive routes each operation
//! with the router's cached map, and on a verified redirect adopts the
//! newer map and resubmits to the owner — one extra round trip, no wasted
//! consensus, exactly-once execution (the wrong group refuses *before*
//! agreement).
//!
//! On the simulator a sharded run executes the groups as independent
//! deterministic simulations (clients are partitioned round-robin and their
//! workloads restricted to their group's keys), merged with
//! [`RunReport::merged`] — useful for modelling studies; the redirect
//! machinery itself is exercised by the concurrent runtimes.
//!
//! Per-group failure schedules are addressed by group through
//! [`ShardOverride`]: crash one group's primary, switch one group's mode,
//! or run different protocols per group, while the global knobs keep
//! applying to every group.

use crate::driver::to_instant;
use crate::report::{RunReport, ShardReport, TransportReport};
use crate::scenario::{AnyCluster, ProtocolKind, RuntimeKind, Scenario};
use crate::socket::{SocketCluster, SocketOptions, SocketTransport};
use crate::threaded::ThreadedCluster;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use seemore_core::client::{ClientOutcome, ClientProtocol};
use seemore_core::metrics::ReplicaMetrics;
use seemore_core::protocol::ReplicaProtocol;
use seemore_core::shard::{RoutedClient, ShardGuard, ShardRouter};
use seemore_crypto::KeyStore;
use seemore_types::{
    ClientId, Duration, GroupId, Instant, Mode, NodeId, OpClass, Partitioning, ReplicaId, ShardMap,
};
use std::time::Instant as StdInstant;

/// Per-group overrides for a sharded run, addressed by group id.
#[derive(Debug, Clone)]
pub struct ShardOverride {
    /// The group this override applies to.
    pub group: GroupId,
    /// Run this protocol on the group instead of the scenario's (e.g. one
    /// Peacock group in an otherwise-Lion deployment).
    pub protocol: Option<ProtocolKind>,
    /// Crash the group's view-0 primary at this instant.
    pub crash_primary_at: Option<Instant>,
    /// Announce a mode switch on the group at this instant (SeeMoRe only).
    pub mode_switch: Option<(Instant, Mode)>,
}

impl ShardOverride {
    /// An empty override for `group`; chain the builder methods to fill it.
    pub fn for_group(group: GroupId) -> ShardOverride {
        ShardOverride {
            group,
            protocol: None,
            crash_primary_at: None,
            mode_switch: None,
        }
    }

    /// Runs `protocol` on this group.
    pub fn protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = Some(protocol);
        self
    }

    /// Crashes this group's view-0 primary at `at`.
    pub fn crash_primary_at(mut self, at: Instant) -> Self {
        self.crash_primary_at = Some(at);
        self
    }

    /// Announces a switch to `mode` on this group at `at`.
    pub fn mode_switch(mut self, at: Instant, mode: Mode) -> Self {
        self.mode_switch = Some((at, mode));
        self
    }
}

/// Maximum routing attempts per operation: first try plus redirects. Two
/// covers the stale-map case (miss, adopt, hit); the margin tolerates a map
/// that goes stale again mid-flight without ever looping.
const MAX_ROUTE_HOPS: u32 = 4;

/// The authoritative shard map of a sharded run.
///
/// With the stale-client-map knob the authority's version is bumped past the
/// version-1 map clients are seeded with, so redirects demonstrably carry a
/// *newer* map for the router to adopt.
fn authority_map(scenario: &Scenario) -> ShardMap {
    if scenario.stale_client_map {
        ShardMap {
            version: 2,
            partitioning: Partitioning::Hash {
                groups: scenario.shards,
            },
        }
    } else {
        ShardMap::uniform(scenario.shards)
    }
}

/// Seed mix so each group's cluster (key material, per-group randomness)
/// is distinct but deterministic in the scenario seed.
fn group_seed(seed: u64, group: GroupId) -> u64 {
    seed ^ (u64::from(group.0) + 1).wrapping_mul(0xA24B_AED4_963E_E407)
}

/// This group's share of `clients` under round-robin partitioning.
fn client_share(clients: u32, shards: u32, group: GroupId) -> u32 {
    clients / shards + u32::from(group.0 < clients % shards)
}

/// The scenario one group of a sharded run executes: single-group, distinct
/// seed, with this group's overrides applied. Global crash / mode-switch
/// knobs are inherited (they apply to every group); an override replaces
/// them for its group.
fn shard_scenario(scenario: &Scenario, group: GroupId) -> Scenario {
    let mut shard = scenario.clone();
    shard.shards = 1;
    shard.shard_overrides = Vec::new();
    shard.stale_client_map = false;
    shard.seed = group_seed(scenario.seed, group);
    if let Some(o) = scenario.shard_overrides.iter().find(|o| o.group == group) {
        if let Some(protocol) = o.protocol {
            shard.protocol = protocol;
        }
        if o.crash_primary_at.is_some() {
            shard.crash_primary_at = o.crash_primary_at;
        }
        if o.mode_switch.is_some() {
            shard.mode_switch = o.mode_switch;
        }
    }
    shard
}

/// Entry point for `Scenario::run` when `shards > 1`.
pub(crate) fn run_sharded(scenario: &Scenario) -> RunReport {
    let map = authority_map(scenario);
    match scenario.runtime {
        RuntimeKind::Simulated => {
            // Independent deterministic simulations, one per group: clients
            // are partitioned round-robin and each partition's workload is
            // restricted to its group's keys, so no operation ever needs a
            // cross-group hop.
            let shards = (0..scenario.shards)
                .map(|g| {
                    let group = GroupId(g);
                    let mut shard = shard_scenario(scenario, group);
                    shard.clients = client_share(scenario.clients, scenario.shards, group);
                    shard.workload = Some(scenario.workload().sharded(map.clone(), group));
                    ShardReport {
                        group,
                        report: shard.run(),
                    }
                })
                .collect();
            RunReport::merged(shards)
        }
        kind => ShardedCluster::spawn(scenario, kind).drive(scenario),
    }
}

/// One group's running cluster plus everything needed to drive and report
/// on it.
struct ShardGroup {
    group: GroupId,
    scenario: Scenario,
    cluster: AnyCluster,
    keystore: KeyStore,
    primary: ReplicaId,
    mode_switch_announcer: Option<ReplicaId>,
    trace: crate::scenario::TraceHandles,
    clients: Vec<Box<dyn ClientProtocol>>,
}

/// `N` live single-group clusters composed behind the `Scenario` API.
///
/// Every physical cluster is spawned exactly as an unsharded run would
/// spawn it — same meshes, same event loops, same options — with two
/// sharding additions: each replica is wrapped in a [`ShardGuard`] carrying
/// the authoritative map and the replica's signer, and every client id is
/// registered with *every* group so the routing tier can reach whichever
/// group owns a key.
pub struct ShardedCluster {
    groups: Vec<ShardGroup>,
    map: ShardMap,
}

impl ShardedCluster {
    /// Spawns one cluster per group on the given concurrent runtime.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`RuntimeKind::Simulated`] (the simulator path
    /// never constructs a `ShardedCluster`) or if loopback sockets cannot
    /// be bound.
    pub fn spawn(scenario: &Scenario, kind: RuntimeKind) -> ShardedCluster {
        let map = authority_map(scenario);
        let client_ids: Vec<ClientId> = (0..u64::from(scenario.clients)).map(ClientId).collect();
        let groups = (0..scenario.shards)
            .map(|g| {
                let group = GroupId(g);
                let shard = shard_scenario(scenario, group);
                let cores = shard.build_cores();
                let keystore = cores.keystore.clone();
                let replicas: Vec<Box<dyn ReplicaProtocol>> = cores
                    .replicas
                    .into_iter()
                    .map(|inner| {
                        let signer = keystore
                            .signer_for(NodeId::Replica(inner.id()))
                            .expect("replica signer");
                        Box::new(ShardGuard::new(inner, group, map.clone(), signer))
                            as Box<dyn ReplicaProtocol>
                    })
                    .collect();
                let cluster = match kind {
                    RuntimeKind::Threaded => {
                        AnyCluster::Threaded(ThreadedCluster::spawn(replicas, &client_ids))
                    }
                    RuntimeKind::Socket | RuntimeKind::Reactor => AnyCluster::Socket(
                        SocketCluster::spawn_with(
                            replicas,
                            &client_ids,
                            SocketOptions {
                                encode_once: scenario.encode_once,
                                transport: if kind == RuntimeKind::Reactor {
                                    SocketTransport::Reactor
                                } else {
                                    SocketTransport::ThreadPerPeer
                                },
                                client_mux: scenario.client_mux,
                            },
                        )
                        .expect("bind loopback TCP sockets"),
                    ),
                    RuntimeKind::Simulated => {
                        unreachable!("the simulator path never spawns a ShardedCluster")
                    }
                };
                ShardGroup {
                    group,
                    scenario: shard,
                    cluster,
                    keystore,
                    primary: cores.primary,
                    mode_switch_announcer: cores.mode_switch_announcer,
                    trace: cores.trace,
                    clients: cores.clients,
                }
            })
            .collect();
        ShardedCluster { groups, map }
    }

    /// Number of groups in the composition.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The authoritative shard map the guards enforce.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Drives the closed-loop clients across every group for the scenario's
    /// wall-clock window, then shuts the clusters down and merges the
    /// per-group reports.
    pub fn drive(mut self, scenario: &Scenario) -> RunReport {
        let shard_count = self.groups.len();
        let clients = scenario.clients as usize;
        let patience = scenario.protocol_config().client_timeout;
        let run_for = scenario.duration.to_std();

        // Transpose per-group client cores into per-client rows: physical
        // client `i` owns one core per group, all with id `ClientId(i)` but
        // each signed with (and known to) its own group's key material.
        let mut per_client: Vec<Vec<Option<Box<dyn ClientProtocol>>>> = (0..clients)
            .map(|_| Vec::with_capacity(shard_count))
            .collect();
        for group in &mut self.groups {
            for (i, core) in group.clients.drain(..).enumerate() {
                per_client[i].push(Some(core));
            }
        }
        let keystores: Vec<KeyStore> = self.groups.iter().map(|g| g.keystore.clone()).collect();
        let seed_map = if scenario.stale_client_map {
            ShardMap::uniform(1)
        } else {
            self.map.clone()
        };

        // The shared epoch for schedules and the run window; each group's
        // own clock epoch (used for outcome timestamps) is slightly earlier.
        let start = StdInstant::now();
        let abandon_at = start + run_for;
        // Client threads only need the clusters; sharing bare cluster
        // references keeps the (non-`Sync`) client cores out of the scope.
        let clusters: Vec<&AnyCluster> = self.groups.iter().map(|g| &g.cluster).collect();

        let (returned, mut group_outcomes) = std::thread::scope(|scope| {
            // Per-group failure schedules, addressed by group.
            for g in &self.groups {
                if let Some(at) = g.scenario.crash_primary_at {
                    let delay = Duration::from_nanos(at.as_nanos()).to_std();
                    if delay < run_for {
                        let (cluster, primary) = (&g.cluster, g.primary);
                        scope.spawn(move || {
                            let elapsed = start.elapsed();
                            if delay > elapsed {
                                std::thread::sleep(delay - elapsed);
                            }
                            cluster.crash(primary);
                        });
                    }
                }
                if let (Some((at, mode)), Some(announcer)) =
                    (g.scenario.mode_switch, g.mode_switch_announcer)
                {
                    let delay = Duration::from_nanos(at.as_nanos()).to_std();
                    if delay < run_for {
                        let cluster = &g.cluster;
                        scope.spawn(move || {
                            let elapsed = start.elapsed();
                            if delay > elapsed {
                                std::thread::sleep(delay - elapsed);
                            }
                            cluster.request_mode_switch(announcer, mode);
                        });
                    }
                }
            }

            let handles: Vec<_> = per_client
                .into_iter()
                .enumerate()
                .map(|(index, cores)| {
                    let workload = scenario.workload();
                    let read_fast_path = scenario.read_fast_path;
                    let seed = scenario.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut router = ShardRouter::new(seed_map.clone(), keystores.clone());
                    let clusters = clusters.clone();
                    scope.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(seed);
                        let mut cores = cores;
                        let mut outcomes: Vec<Vec<ClientOutcome>> =
                            (0..shard_count).map(|_| Vec::new()).collect();
                        while start.elapsed() < run_for {
                            let (op, class) = workload.next_classified(&mut rng);
                            let class = if read_fast_path {
                                class
                            } else {
                                OpClass::Write
                            };
                            let mut hops = 0u32;
                            loop {
                                let g = router.route(&op).as_usize().min(shard_count - 1);
                                let core = cores[g].take().expect("client core in place");
                                let attempt =
                                    RoutedClient::new(core, GroupId(g as u32), &mut router);
                                let (attempt, completed) = clusters[g].run_client(
                                    attempt,
                                    1,
                                    patience,
                                    abandon_at,
                                    |_| (op.clone(), class),
                                );
                                let redirected = attempt.redirected();
                                cores[g] = Some(attempt.into_inner());
                                outcomes[g].extend(completed);
                                hops += 1;
                                if !redirected
                                    || hops >= MAX_ROUTE_HOPS
                                    || start.elapsed() >= run_for
                                {
                                    break;
                                }
                            }
                        }
                        (cores, outcomes)
                    })
                })
                .collect();

            let mut returned = Vec::new();
            let mut group_outcomes: Vec<Vec<ClientOutcome>> =
                (0..shard_count).map(|_| Vec::new()).collect();
            for handle in handles {
                let (cores, outcomes) = handle.join().expect("client thread");
                for (g, completed) in outcomes.into_iter().enumerate() {
                    group_outcomes[g].extend(completed);
                }
                returned.push(cores);
            }
            (returned, group_outcomes)
        });

        // Retransmissions, attributed to the group whose core performed them.
        let mut group_retransmissions = vec![0u64; shard_count];
        for cores in &returned {
            for (g, core) in cores.iter().enumerate() {
                if let Some(core) = core {
                    group_retransmissions[g] += core.retransmissions();
                }
            }
        }

        let warmup = scenario.warmup;
        let bucket = scenario.timeline_bucket;
        let shard_reports = self
            .groups
            .into_iter()
            .enumerate()
            .map(|(g, group)| {
                let run_end = to_instant(group.cluster.epoch());
                let (messages, bytes) = group.cluster.traffic();
                let transport = match &group.cluster {
                    AnyCluster::Socket(sockets) => {
                        Some(TransportReport::from_stats(&sockets.stats()))
                    }
                    AnyCluster::Threaded(_) => None,
                };
                let replicas = group.cluster.shutdown();
                let mut metrics = ReplicaMetrics::default();
                for replica in &replicas {
                    metrics.merge(replica.metrics());
                }
                let mut report = RunReport::from_outcomes(
                    &std::mem::take(&mut group_outcomes[g]),
                    Instant::ZERO + warmup,
                    run_end,
                    bucket,
                );
                report.messages_delivered = messages;
                report.bytes_delivered = bytes;
                report.view_changes = metrics.view_changes_completed;
                report.mode_switches = metrics.mode_switches;
                report.retransmissions = group_retransmissions[g];
                report.batching = crate::report::BatchReport::from_telemetry(&metrics.batch);
                report.transport = transport;
                group.trace.attach(&mut report, bucket);
                ShardReport {
                    group: group.group,
                    report,
                }
            })
            .collect();
        RunReport::merged(shard_reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_share_partitions_round_robin() {
        assert_eq!(client_share(8, 4, GroupId(0)), 2);
        assert_eq!(client_share(9, 4, GroupId(0)), 3);
        assert_eq!(client_share(9, 4, GroupId(1)), 2);
        assert_eq!(client_share(9, 4, GroupId(3)), 2);
        let total: u32 = (0..4).map(|g| client_share(9, 4, GroupId(g))).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn shard_scenarios_apply_overrides_per_group() {
        let scenario = Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
            .with_shards(3)
            .with_shard_crash(GroupId(1), Instant::from_nanos(5))
            .with_shard_override(
                ShardOverride::for_group(GroupId(2))
                    .protocol(ProtocolKind::SeeMoRePeacock)
                    .mode_switch(Instant::from_nanos(9), Mode::Dog),
            );
        let g0 = shard_scenario(&scenario, GroupId(0));
        let g1 = shard_scenario(&scenario, GroupId(1));
        let g2 = shard_scenario(&scenario, GroupId(2));
        assert_eq!(g0.shards, 1);
        assert_eq!(g0.crash_primary_at, None);
        assert_eq!(g1.crash_primary_at, Some(Instant::from_nanos(5)));
        assert_eq!(g1.protocol, ProtocolKind::SeeMoReLion);
        assert_eq!(g2.protocol, ProtocolKind::SeeMoRePeacock);
        assert_eq!(g2.mode_switch, Some((Instant::from_nanos(9), Mode::Dog)));
        // Distinct, deterministic per-group seeds.
        assert_ne!(g0.seed, g1.seed);
        assert_eq!(g1.seed, shard_scenario(&scenario, GroupId(1)).seed);
    }

    #[test]
    fn the_authority_map_outruns_the_stale_client_seed() {
        let fresh = authority_map(&Scenario::new(ProtocolKind::SeeMoReLion, 1, 1).with_shards(4));
        assert_eq!(fresh, ShardMap::uniform(4));
        let bumped = authority_map(
            &Scenario::new(ProtocolKind::SeeMoReLion, 1, 1)
                .with_shards(4)
                .with_stale_client_map(true),
        );
        assert!(ShardMap::uniform(1).is_older_than(&bumped));
        assert_eq!(bumped.groups(), 4);
    }
}
