//! Run statistics: throughput, latency distribution (log-bucketed
//! histograms up to p99.9, split by operation class), a throughput timeline,
//! per-phase commit-latency breakdowns, replica health rollups, and what the
//! batching policy actually chose (sizes and flush causes).

use seemore_core::client::ClientOutcome;
use seemore_core::metrics::BatchTelemetry;
use seemore_telemetry::{
    derive_phases, sort_events, LatencyHistogram, PhaseBreakdown, ReplicaHealth, TraceEvent,
};
use seemore_types::{Duration, GroupId, Instant, OpClass, ReplicaId};

/// One bucket of the throughput timeline (Figure 4's x-axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineBucket {
    /// Start of the bucket, milliseconds since the beginning of the run.
    pub start_ms: f64,
    /// Requests completed inside the bucket.
    pub completed: u64,
    /// Throughput over the bucket in thousands of requests per second.
    pub throughput_kreqs: f64,
}

/// What the batching controller actually did during a run, aggregated
/// across every replica: the *effective* (chosen) batch sizes — which under
/// the adaptive policy are decided at run time, not configured — and why
/// each batch left the buffer. This is the "report the chosen sizes"
/// telemetry the adaptive batch-sizing controller feeds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchReport {
    /// Total batches cut (equals the number of agreement slots proposed by
    /// primaries during the run).
    pub batches: u64,
    /// Mean effective batch size.
    pub mean_size: f64,
    /// Median effective batch size.
    pub p50_size: usize,
    /// Largest batch any primary cut.
    pub max_size: usize,
    /// Batches cut because the buffer reached the effective size cap.
    pub cut_by_size: u64,
    /// Batches cut by the flush timer (latency trigger on a partial buffer).
    pub cut_by_timer: u64,
    /// Batches forced out by view-change installation.
    pub cut_forced: u64,
    /// Stale flush-timer expirations that were correctly ignored.
    pub stale_timer_fires: u64,
}

impl BatchReport {
    /// Projects the cluster-wide merged replica telemetry into report form.
    pub fn from_telemetry(telemetry: &BatchTelemetry) -> BatchReport {
        BatchReport {
            batches: telemetry.batches(),
            mean_size: telemetry.mean_size(),
            p50_size: telemetry.p50_size(),
            max_size: telemetry.max_size(),
            cut_by_size: telemetry.cut_by_size,
            cut_by_timer: telemetry.cut_by_timer,
            cut_forced: telemetry.cut_forced,
            stale_timer_fires: telemetry.stale_timer_fires,
        }
    }
}

/// What the socket transport's hot path actually did during a run: syscalls
/// issued vs frames sent (write coalescing) and per-destination encodes
/// avoided (encode-once broadcast). `None` on the runtimes that move plain
/// Rust values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportReport {
    /// Frames written to sockets.
    pub messages_sent: u64,
    /// Bytes written to sockets (preambles included).
    pub bytes_sent: u64,
    /// `write(2)` calls issued — with coalescing, `messages_sent -
    /// write_syscalls` frames rode along in a burst for free.
    pub write_syscalls: u64,
    /// Frames appended to an already-pending burst (syscalls saved).
    pub frames_coalesced: u64,
    /// Serializations avoided by encode-once broadcasts (encodes saved).
    pub encodes_saved: u64,
    /// Frames written in full by the *sending* thread (zero-hop direct
    /// writes; the rest went through a writer thread or event loop).
    pub direct_writes: u64,
    /// Gather (`writev`) calls that carried more than one slice — backlog
    /// drains that would each have been a copy plus a `write(2)` otherwise.
    pub vectored_writes: u64,
    /// Writes the kernel accepted only partially (socket-buffer pressure;
    /// the remainder stayed queued).
    pub partial_writes: u64,
    /// Raw bytes read from sockets, preambles and mux tags included.
    pub bytes_read: u64,
    /// Outbound connections established across the mesh (initial dials
    /// included): `peers` on a clean run, anything above that is a rebuild
    /// after a failed write — the flakiness signal the health rollup tracks.
    pub reconnects: u64,
}

impl TransportReport {
    /// Projects the live transport counters into report form.
    pub fn from_stats(stats: &seemore_net::TransportStats) -> TransportReport {
        TransportReport {
            messages_sent: stats.messages_sent(),
            bytes_sent: stats.bytes_sent(),
            write_syscalls: stats.write_syscalls(),
            frames_coalesced: stats.frames_coalesced(),
            encodes_saved: stats.encodes_saved(),
            direct_writes: stats.direct_writes(),
            vectored_writes: stats.vectored_writes(),
            partial_writes: stats.partial_writes(),
            bytes_read: stats.bytes_read(),
            reconnects: stats.reconnects(),
        }
    }
}

/// Throughput and latency statistics for one operation class (reads or
/// writes) inside the measurement window.
///
/// Percentiles come from a log-bucketed [`LatencyHistogram`] (~0.4%
/// worst-case relative error); the mean is exact. The histogram replaces the
/// old sorted-`Vec` percentile math: memory is constant in the sample count,
/// which is what makes keeping the tail out to p99.9 cheap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassStats {
    /// Operations of this class completed inside the window.
    pub completed: u64,
    /// Throughput in thousands of operations per second.
    pub throughput_kreqs: f64,
    /// Mean end-to-end latency in milliseconds (exact).
    pub avg_latency_ms: f64,
    /// Median latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 95th percentile latency in milliseconds.
    pub p95_latency_ms: f64,
    /// 99th percentile latency in milliseconds.
    pub p99_latency_ms: f64,
    /// 99.9th percentile latency in milliseconds.
    pub p999_latency_ms: f64,
}

impl ClassStats {
    /// Builds the statistics from a latency histogram (nanosecond samples)
    /// over a window of `secs` seconds.
    ///
    /// This is the *only* way `ClassStats` are produced — in particular,
    /// merging two reports re-derives the statistics from the bucket-wise
    /// merged histograms rather than combining the derived numbers
    /// (averaging percentiles, or recomputing them from means, is wrong for
    /// any non-degenerate distribution).
    fn from_histogram(hist: &LatencyHistogram, secs: f64) -> ClassStats {
        let completed = hist.count();
        let ms = |nanos: u64| nanos as f64 / 1_000_000.0;
        ClassStats {
            completed,
            throughput_kreqs: if secs > 0.0 {
                completed as f64 / secs / 1_000.0
            } else {
                0.0
            },
            avg_latency_ms: hist.mean() / 1_000_000.0,
            p50_latency_ms: ms(hist.percentile(50.0)),
            p95_latency_ms: ms(hist.percentile(95.0)),
            p99_latency_ms: ms(hist.percentile(99.0)),
            p999_latency_ms: ms(hist.percentile(99.9)),
        }
    }
}

/// One shard group's contribution to a sharded run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The agreement group this sub-report covers.
    pub group: GroupId,
    /// The group's own run report (including its per-replica health rollups
    /// and trace, when tracing ran).
    pub report: RunReport,
}

/// Aggregated statistics of one simulated run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Requests completed inside the measurement window.
    pub completed: u64,
    /// Length of the measurement window.
    pub measured_duration: Duration,
    /// Throughput in thousands of requests per second.
    pub throughput_kreqs: f64,
    /// Mean end-to-end latency in milliseconds.
    pub avg_latency_ms: f64,
    /// Median latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 95th percentile latency in milliseconds.
    pub p95_latency_ms: f64,
    /// 99th percentile latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Protocol messages delivered during the whole run.
    pub messages_delivered: u64,
    /// Bytes delivered during the whole run (wire-size model).
    pub bytes_delivered: u64,
    /// View changes completed across all replicas.
    pub view_changes: u64,
    /// Mode switches completed across all replicas.
    pub mode_switches: u64,
    /// Client retransmissions.
    pub retransmissions: u64,
    /// Statistics for read-classified operations only (reads served by the
    /// fast path *and* reads that fell back to the ordered path).
    pub reads: ClassStats,
    /// Statistics for write-classified operations only.
    pub writes: ClassStats,
    /// Chosen batch sizes and flush causes, aggregated across all replicas
    /// over the whole run.
    pub batching: BatchReport,
    /// Socket-transport hot-path counters (syscalls, coalesced frames,
    /// encodes saved); `None` for the simulator and the threaded runtime.
    pub transport: Option<TransportReport>,
    /// Throughput timeline over the whole run (not only the measurement
    /// window), for the view-change experiment.
    pub timeline: Vec<TimelineBucket>,
    /// Per-phase commit-latency breakdown derived from the structured trace,
    /// split by protocol mode and operation class. Empty unless the scenario
    /// ran with tracing enabled.
    pub phases: PhaseBreakdown,
    /// Per-replica health rollups (suspicions, refused reads, vote
    /// mismatches, view-change durations) derived from the structured trace.
    /// Empty unless the scenario ran with tracing enabled.
    pub health: Vec<ReplicaHealth>,
    /// The full structured trace, sorted by time, ready for JSONL export.
    /// Empty unless the scenario ran with tracing enabled.
    pub trace: Vec<TraceEvent>,
    /// Latency histogram of read-classified operations inside the
    /// measurement window (nanosecond samples). Retained so reports can be
    /// merged exactly: percentiles of a merged report come from bucket-wise
    /// merged histograms, never from combining derived statistics.
    pub read_latency: LatencyHistogram,
    /// Latency histogram of write-classified operations inside the
    /// measurement window (nanosecond samples).
    pub write_latency: LatencyHistogram,
    /// Per-group sub-reports of a sharded run, in group order. Empty for
    /// single-group runs; on an aggregate built by [`RunReport::merged`]
    /// each entry keeps its group's full report (health, trace, transport).
    pub shards: Vec<ShardReport>,
}

impl RunReport {
    /// Builds a report from raw completions.
    ///
    /// * `outcomes` — every completed request with its completion time.
    /// * `measure_from` — completions before this instant (warm-up) are
    ///   excluded from throughput/latency statistics but still appear in the
    ///   timeline.
    /// * `run_end` — end of the run.
    /// * `bucket` — timeline bucket width.
    pub fn from_outcomes(
        outcomes: &[ClientOutcome],
        measure_from: Instant,
        run_end: Instant,
        bucket: Duration,
    ) -> RunReport {
        let mut all = LatencyHistogram::new();
        let mut reads = LatencyHistogram::new();
        let mut writes = LatencyHistogram::new();
        for outcome in outcomes.iter().filter(|o| o.completed_at >= measure_from) {
            let nanos = outcome.latency.as_nanos();
            all.record(nanos);
            match outcome.class {
                OpClass::Read => reads.record(nanos),
                OpClass::Write => writes.record(nanos),
            }
        }

        let measured_duration = run_end - measure_from;
        let secs = measured_duration.as_secs_f64();
        let overall = ClassStats::from_histogram(&all, secs);

        let timeline = Self::timeline(outcomes, run_end, bucket);

        RunReport {
            completed: overall.completed,
            measured_duration,
            throughput_kreqs: overall.throughput_kreqs,
            avg_latency_ms: overall.avg_latency_ms,
            p50_latency_ms: overall.p50_latency_ms,
            p95_latency_ms: overall.p95_latency_ms,
            p99_latency_ms: overall.p99_latency_ms,
            reads: ClassStats::from_histogram(&reads, secs),
            writes: ClassStats::from_histogram(&writes, secs),
            timeline,
            read_latency: reads,
            write_latency: writes,
            ..RunReport::default()
        }
    }

    /// Merges per-group reports of a sharded run into one aggregate.
    ///
    /// Latency statistics are exact: the per-class histograms are merged
    /// bucket-wise and every percentile (and the mean) is re-derived from
    /// the merged histograms, so the aggregate is identical to a report
    /// built from the combined outcome stream. Counters sum; the
    /// measurement window is the longest of the inputs (shards run
    /// concurrently, so windows overlap rather than concatenate);
    /// throughput is re-derived from the merged completion count over that
    /// window. Timelines add bucket-wise.
    ///
    /// Three pieces stay per-shard rather than aggregating: batch medians
    /// (the merged `p50_size` is the batch-weighted median of the shard
    /// medians — per-shard batch-size distributions are not retained),
    /// phase breakdowns, health rollups and traces (group-scoped by
    /// construction; find them in [`RunReport::shards`]).
    pub fn merged(shards: Vec<ShardReport>) -> RunReport {
        let mut reads = LatencyHistogram::new();
        let mut writes = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for shard in &shards {
            reads.merge(&shard.report.read_latency);
            writes.merge(&shard.report.write_latency);
            all.merge(&shard.report.read_latency);
            all.merge(&shard.report.write_latency);
        }
        let measured_duration = shards
            .iter()
            .map(|s| s.report.measured_duration)
            .max()
            .unwrap_or(Duration::ZERO);
        let secs = measured_duration.as_secs_f64();
        let overall = ClassStats::from_histogram(&all, secs);

        let mut timeline: Vec<TimelineBucket> = Vec::new();
        for shard in &shards {
            for (i, bucket) in shard.report.timeline.iter().enumerate() {
                if i == timeline.len() {
                    timeline.push(*bucket);
                } else {
                    timeline[i].completed += bucket.completed;
                    timeline[i].throughput_kreqs += bucket.throughput_kreqs;
                }
            }
        }

        let sum = |f: fn(&RunReport) -> u64| shards.iter().map(|s| f(&s.report)).sum::<u64>();
        let batching = Self::merged_batching(&shards);
        let transport = Self::merged_transport(&shards);

        RunReport {
            completed: overall.completed,
            measured_duration,
            throughput_kreqs: overall.throughput_kreqs,
            avg_latency_ms: overall.avg_latency_ms,
            p50_latency_ms: overall.p50_latency_ms,
            p95_latency_ms: overall.p95_latency_ms,
            p99_latency_ms: overall.p99_latency_ms,
            messages_delivered: sum(|r| r.messages_delivered),
            bytes_delivered: sum(|r| r.bytes_delivered),
            view_changes: sum(|r| r.view_changes),
            mode_switches: sum(|r| r.mode_switches),
            retransmissions: sum(|r| r.retransmissions),
            reads: ClassStats::from_histogram(&reads, secs),
            writes: ClassStats::from_histogram(&writes, secs),
            batching,
            transport,
            timeline,
            read_latency: reads,
            write_latency: writes,
            shards,
            ..RunReport::default()
        }
    }

    fn merged_batching(shards: &[ShardReport]) -> BatchReport {
        let mut merged = BatchReport::default();
        let mut weighted_mean = 0.0;
        for shard in shards {
            let b = &shard.report.batching;
            merged.batches += b.batches;
            weighted_mean += b.mean_size * b.batches as f64;
            merged.max_size = merged.max_size.max(b.max_size);
            merged.cut_by_size += b.cut_by_size;
            merged.cut_by_timer += b.cut_by_timer;
            merged.cut_forced += b.cut_forced;
            merged.stale_timer_fires += b.stale_timer_fires;
        }
        if merged.batches > 0 {
            merged.mean_size = weighted_mean / merged.batches as f64;
        }
        // Batch-weighted median of the shard medians (the underlying
        // distributions are not retained).
        let mut medians: Vec<(usize, u64)> = shards
            .iter()
            .map(|s| (s.report.batching.p50_size, s.report.batching.batches))
            .collect();
        medians.sort_unstable();
        let mut below = 0;
        for (median, weight) in medians {
            below += weight;
            if below * 2 >= merged.batches {
                merged.p50_size = median;
                break;
            }
        }
        merged
    }

    fn merged_transport(shards: &[ShardReport]) -> Option<TransportReport> {
        let mut merged: Option<TransportReport> = None;
        for shard in shards {
            let Some(t) = &shard.report.transport else {
                continue;
            };
            let m = merged.get_or_insert_with(TransportReport::default);
            m.messages_sent += t.messages_sent;
            m.bytes_sent += t.bytes_sent;
            m.write_syscalls += t.write_syscalls;
            m.frames_coalesced += t.frames_coalesced;
            m.encodes_saved += t.encodes_saved;
            m.direct_writes += t.direct_writes;
            m.vectored_writes += t.vectored_writes;
            m.partial_writes += t.partial_writes;
            m.bytes_read += t.bytes_read;
            m.reconnects += t.reconnects;
        }
        merged
    }

    /// Attaches a structured trace to the report: sorts the events, derives
    /// the per-phase latency breakdown, and rolls up per-replica health on a
    /// `health_bucket`-wide timeline. `replicas` lists every replica that ran
    /// (so replicas with an empty trace still get a quiet rollup).
    pub fn attach_trace(
        &mut self,
        mut events: Vec<TraceEvent>,
        replicas: &[ReplicaId],
        health_bucket: Duration,
    ) {
        sort_events(&mut events);
        self.phases = derive_phases(&events);
        // Health timelines share the run's clock origin (zero), so bucket
        // offsets line up with the throughput timeline.
        self.health = replicas
            .iter()
            .map(|&r| ReplicaHealth::from_events(r, &events, Instant::ZERO, health_bucket))
            .collect();
        self.trace = events;
    }

    fn timeline(
        outcomes: &[ClientOutcome],
        run_end: Instant,
        bucket: Duration,
    ) -> Vec<TimelineBucket> {
        if bucket == Duration::ZERO || run_end == Instant::ZERO {
            return Vec::new();
        }
        let bucket_ns = bucket.as_nanos().max(1);
        let buckets = run_end.as_nanos().div_ceil(bucket_ns) as usize;
        let mut counts = vec![0u64; buckets];
        for outcome in outcomes {
            let index = (outcome.completed_at.as_nanos() / bucket_ns) as usize;
            if index < buckets {
                counts[index] += 1;
            }
        }
        let run_end_ns = run_end.as_nanos();
        counts
            .iter()
            .enumerate()
            .map(|(i, completed)| {
                // The final bucket usually covers less than a full width;
                // scale its throughput by the span it actually covers, not
                // the nominal bucket width.
                let start_ns = i as u64 * bucket_ns;
                let span_ns = bucket_ns.min(run_end_ns - start_ns).max(1);
                let span_secs = span_ns as f64 / 1e9;
                TimelineBucket {
                    start_ms: i as f64 * bucket.as_millis_f64(),
                    completed: *completed,
                    throughput_kreqs: *completed as f64 / span_secs / 1_000.0,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seemore_types::{ClientId, RequestId, Timestamp};

    fn outcome(completed_ms: u64, latency_ms: u64, n: u64) -> ClientOutcome {
        ClientOutcome {
            request: RequestId::new(ClientId(0), Timestamp(n)),
            class: if n.is_multiple_of(2) {
                OpClass::Write
            } else {
                OpClass::Read
            },
            result: Vec::new(),
            latency: Duration::from_millis(latency_ms),
            completed_at: Instant::from_nanos(completed_ms * 1_000_000),
        }
    }

    #[test]
    fn per_class_statistics_split_reads_from_writes() {
        // 10 writes at 4 ms and 10 reads at 1 ms over one second.
        let outcomes: Vec<ClientOutcome> = (0..20)
            .map(|n| outcome(n * 40, if n % 2 == 0 { 4 } else { 1 }, n))
            .collect();
        let report = RunReport::from_outcomes(
            &outcomes,
            Instant::ZERO,
            Instant::from_nanos(1_000_000_000),
            Duration::from_millis(100),
        );
        assert_eq!(report.completed, 20);
        assert_eq!(report.reads.completed, 10);
        assert_eq!(report.writes.completed, 10);
        assert!((report.reads.avg_latency_ms - 1.0).abs() < 1e-9);
        assert!((report.writes.avg_latency_ms - 4.0).abs() < 1e-9);
        assert!((report.avg_latency_ms - 2.5).abs() < 1e-9);
        assert!(
            (report.reads.throughput_kreqs + report.writes.throughput_kreqs
                - report.throughput_kreqs)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn throughput_and_latency_over_measurement_window() {
        // 100 completions spread over 1 second, 2 ms latency each, after a
        // 100 ms warm-up that contains 10 more completions.
        let mut outcomes = Vec::new();
        for i in 0..10 {
            outcomes.push(outcome(i * 10, 5, i));
        }
        for i in 0..100 {
            outcomes.push(outcome(100 + i * 9, 2, 100 + i));
        }
        let report = RunReport::from_outcomes(
            &outcomes,
            Instant::from_nanos(100 * 1_000_000),
            Instant::from_nanos(1_000 * 1_000_000),
            Duration::from_millis(100),
        );
        assert_eq!(report.completed, 100);
        assert!((report.throughput_kreqs - 100.0 / 0.9 / 1000.0).abs() < 1e-9);
        assert!((report.avg_latency_ms - 2.0).abs() < 1e-9);
        // Percentiles come from the log-bucketed histogram: allow its ~0.4%
        // worst-case relative error.
        assert!((report.p50_latency_ms - 2.0).abs() / 2.0 < 0.005);
        assert_eq!(report.timeline.len(), 10);
        // Warm-up completions appear in the timeline's first bucket.
        assert_eq!(report.timeline[0].completed, 10);
    }

    #[test]
    fn empty_runs_produce_zeroes() {
        let report = RunReport::from_outcomes(
            &[],
            Instant::ZERO,
            Instant::from_nanos(1_000_000),
            Duration::from_millis(1),
        );
        assert_eq!(report.completed, 0);
        assert_eq!(report.throughput_kreqs, 0.0);
        assert_eq!(report.avg_latency_ms, 0.0);
        assert_eq!(report.p99_latency_ms, 0.0);
        assert_eq!(report.timeline.len(), 1);
    }

    #[test]
    fn percentiles_are_ordered() {
        let outcomes: Vec<ClientOutcome> = (0..1000).map(|i| outcome(i, i % 50 + 1, i)).collect();
        let report = RunReport::from_outcomes(
            &outcomes,
            Instant::ZERO,
            Instant::from_nanos(1_000 * 1_000_000),
            Duration::from_millis(10),
        );
        assert!(report.p50_latency_ms <= report.p95_latency_ms);
        assert!(report.p95_latency_ms <= report.p99_latency_ms);
        assert!(
            report.p99_latency_ms
                <= report
                    .reads
                    .p999_latency_ms
                    .max(report.writes.p999_latency_ms)
        );
        assert!(report.avg_latency_ms > 0.0);
        let total_in_timeline: u64 = report.timeline.iter().map(|b| b.completed).sum();
        assert_eq!(total_in_timeline, 1000);
    }

    #[test]
    fn single_sample_percentiles_collapse_to_the_sample() {
        let outcomes = vec![outcome(500, 7, 1)];
        let report = RunReport::from_outcomes(
            &outcomes,
            Instant::ZERO,
            Instant::from_nanos(1_000 * 1_000_000),
            Duration::from_millis(100),
        );
        assert_eq!(report.completed, 1);
        assert_eq!(report.reads.completed, 1);
        assert_eq!(report.writes.completed, 0);
        // With one sample every percentile is that sample, exactly: the
        // histogram clamps percentile estimates to the observed min/max.
        for p in [
            report.p50_latency_ms,
            report.p95_latency_ms,
            report.p99_latency_ms,
            report.reads.p50_latency_ms,
            report.reads.p999_latency_ms,
        ] {
            assert!((p - 7.0).abs() < 1e-9, "expected 7 ms, got {p}");
        }
        assert_eq!(report.writes.p999_latency_ms, 0.0);
    }

    #[test]
    fn final_partial_timeline_bucket_scales_by_its_actual_span() {
        // Run ends at 250 ms with 100 ms buckets: the third bucket covers
        // only 50 ms. 5 completions inside it are 100 req/s, not 50.
        let outcomes: Vec<ClientOutcome> = (0..5).map(|n| outcome(210 + n, 1, n)).collect();
        let report = RunReport::from_outcomes(
            &outcomes,
            Instant::ZERO,
            Instant::from_nanos(250 * 1_000_000),
            Duration::from_millis(100),
        );
        assert_eq!(report.timeline.len(), 3);
        assert_eq!(report.timeline[2].completed, 5);
        assert!((report.timeline[2].throughput_kreqs - 0.1).abs() < 1e-9);
        // Full buckets are unaffected.
        assert_eq!(report.timeline[0].completed, 0);
        assert_eq!(report.timeline[0].throughput_kreqs, 0.0);
    }

    #[test]
    fn attach_trace_on_an_empty_trace_yields_quiet_health() {
        let mut report = RunReport::default();
        report.attach_trace(
            Vec::new(),
            &[ReplicaId(0), ReplicaId(1)],
            Duration::from_millis(100),
        );
        assert_eq!(report.phases.requests(), 0);
        assert_eq!(report.health.len(), 2);
        assert!(report.health.iter().all(|h| h.is_quiet()));
        assert!(report.trace.is_empty());
    }

    #[test]
    fn merged_percentiles_equal_the_combined_stream_histograms() {
        // Two shards with very different latency distributions: averaging
        // their per-shard percentiles would land far from the truth, and
        // recomputing percentiles from means lands somewhere else again.
        // The merged report must match a report built from the combined
        // outcome stream exactly, because both paths fill the same
        // log-bucketed histogram.
        let fast: Vec<ClientOutcome> = (0..300).map(|n| outcome(n * 3, n % 4 + 1, n)).collect();
        let slow: Vec<ClientOutcome> = (0..100)
            .map(|n| outcome(n * 9, 40 + n % 30, 1000 + n))
            .collect();
        let window = |o: &[ClientOutcome]| {
            RunReport::from_outcomes(
                o,
                Instant::ZERO,
                Instant::from_nanos(1_000 * 1_000_000),
                Duration::from_millis(100),
            )
        };
        let merged = RunReport::merged(vec![
            ShardReport {
                group: GroupId(0),
                report: window(&fast),
            },
            ShardReport {
                group: GroupId(1),
                report: window(&slow),
            },
        ]);
        let mut combined_stream = fast.clone();
        combined_stream.extend(slow.iter().cloned());
        let combined = window(&combined_stream);

        assert_eq!(merged.completed, combined.completed);
        assert_eq!(merged.p50_latency_ms, combined.p50_latency_ms);
        assert_eq!(merged.p95_latency_ms, combined.p95_latency_ms);
        assert_eq!(merged.p99_latency_ms, combined.p99_latency_ms);
        assert_eq!(merged.reads.p50_latency_ms, combined.reads.p50_latency_ms);
        assert_eq!(merged.reads.p999_latency_ms, combined.reads.p999_latency_ms);
        assert_eq!(merged.writes.p95_latency_ms, combined.writes.p95_latency_ms);
        assert!((merged.avg_latency_ms - combined.avg_latency_ms).abs() < 1e-12);
        assert!((merged.throughput_kreqs - combined.throughput_kreqs).abs() < 1e-12);
        assert_eq!(merged.timeline.len(), combined.timeline.len());
        for (m, c) in merged.timeline.iter().zip(&combined.timeline) {
            assert_eq!(m.completed, c.completed);
        }
        // And the merged percentiles are *not* what naive per-shard
        // averaging would produce (guard against a future "simplification").
        let naive_p99 = (window(&fast).p99_latency_ms + window(&slow).p99_latency_ms) / 2.0;
        assert!((merged.p99_latency_ms - naive_p99).abs() > 1.0);
        // Sub-reports ride along keyed by group.
        assert_eq!(merged.shards.len(), 2);
        assert_eq!(merged.shards[0].group, GroupId(0));
        assert_eq!(merged.shards[1].group, GroupId(1));
    }

    #[test]
    fn merging_sums_counters_and_batching_telemetry() {
        let mut a = RunReport::from_outcomes(
            &(0..10).map(|n| outcome(n * 10, 2, n)).collect::<Vec<_>>(),
            Instant::ZERO,
            Instant::from_nanos(500 * 1_000_000),
            Duration::from_millis(100),
        );
        a.messages_delivered = 100;
        a.retransmissions = 3;
        a.view_changes = 1;
        a.batching = BatchReport {
            batches: 10,
            mean_size: 4.0,
            p50_size: 4,
            max_size: 9,
            cut_by_size: 6,
            cut_by_timer: 4,
            ..BatchReport::default()
        };
        a.transport = Some(TransportReport {
            messages_sent: 50,
            write_syscalls: 20,
            ..TransportReport::default()
        });
        let mut b = a.clone();
        b.messages_delivered = 40;
        b.batching.batches = 30;
        b.batching.mean_size = 8.0;
        b.batching.p50_size = 8;

        let merged = RunReport::merged(vec![
            ShardReport {
                group: GroupId(0),
                report: a,
            },
            ShardReport {
                group: GroupId(1),
                report: b,
            },
        ]);
        assert_eq!(merged.completed, 20);
        assert_eq!(merged.messages_delivered, 140);
        assert_eq!(merged.retransmissions, 6);
        assert_eq!(merged.view_changes, 2);
        assert_eq!(merged.batching.batches, 40);
        // Batch-count weighted mean: (10*4 + 30*8) / 40.
        assert!((merged.batching.mean_size - 7.0).abs() < 1e-12);
        // Weighted median of medians: the shard with median 4 covers only
        // 10 of 40 batches, so the midpoint lands in the median-8 shard.
        assert_eq!(merged.batching.p50_size, 8);
        assert_eq!(merged.batching.cut_by_size, 12);
        let transport = merged.transport.expect("one shard had transport stats");
        assert_eq!(transport.messages_sent, 100);
        assert_eq!(transport.write_syscalls, 40);
    }

    #[test]
    fn merging_nothing_yields_an_empty_report() {
        let merged = RunReport::merged(Vec::new());
        assert_eq!(merged.completed, 0);
        assert_eq!(merged.throughput_kreqs, 0.0);
        assert!(merged.transport.is_none());
        assert!(merged.shards.is_empty());
    }

    #[test]
    fn batch_report_projects_telemetry() {
        use seemore_core::batching::FlushCause;
        let mut telemetry = BatchTelemetry::default();
        telemetry.record_cut(1, FlushCause::Size);
        telemetry.record_cut(3, FlushCause::Timer);
        telemetry.record_cut(8, FlushCause::Forced);
        telemetry.stale_timer_fires = 2;
        let report = BatchReport::from_telemetry(&telemetry);
        assert_eq!(report.batches, 3);
        assert!((report.mean_size - 4.0).abs() < 1e-12);
        assert_eq!(report.p50_size, 3);
        assert_eq!(report.max_size, 8);
        assert_eq!(report.cut_by_size, 1);
        assert_eq!(report.cut_by_timer, 1);
        assert_eq!(report.cut_forced, 1);
        assert_eq!(report.stale_timer_fires, 2);
        assert_eq!(RunReport::default().batching, BatchReport::default());
    }
}
