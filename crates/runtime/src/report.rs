//! Run statistics: throughput, latency distribution, a throughput timeline,
//! and what the batching policy actually chose (sizes and flush causes).

use seemore_core::client::ClientOutcome;
use seemore_core::metrics::BatchTelemetry;
use seemore_types::{Duration, Instant, OpClass};

/// One bucket of the throughput timeline (Figure 4's x-axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineBucket {
    /// Start of the bucket, milliseconds since the beginning of the run.
    pub start_ms: f64,
    /// Requests completed inside the bucket.
    pub completed: u64,
    /// Throughput over the bucket in thousands of requests per second.
    pub throughput_kreqs: f64,
}

/// What the batching controller actually did during a run, aggregated
/// across every replica: the *effective* (chosen) batch sizes — which under
/// the adaptive policy are decided at run time, not configured — and why
/// each batch left the buffer. This is the "report the chosen sizes"
/// telemetry the adaptive batch-sizing controller feeds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchReport {
    /// Total batches cut (equals the number of agreement slots proposed by
    /// primaries during the run).
    pub batches: u64,
    /// Mean effective batch size.
    pub mean_size: f64,
    /// Median effective batch size.
    pub p50_size: usize,
    /// Largest batch any primary cut.
    pub max_size: usize,
    /// Batches cut because the buffer reached the effective size cap.
    pub cut_by_size: u64,
    /// Batches cut by the flush timer (latency trigger on a partial buffer).
    pub cut_by_timer: u64,
    /// Batches forced out by view-change installation.
    pub cut_forced: u64,
    /// Stale flush-timer expirations that were correctly ignored.
    pub stale_timer_fires: u64,
}

impl BatchReport {
    /// Projects the cluster-wide merged replica telemetry into report form.
    pub fn from_telemetry(telemetry: &BatchTelemetry) -> BatchReport {
        BatchReport {
            batches: telemetry.batches(),
            mean_size: telemetry.mean_size(),
            p50_size: telemetry.p50_size(),
            max_size: telemetry.max_size(),
            cut_by_size: telemetry.cut_by_size,
            cut_by_timer: telemetry.cut_by_timer,
            cut_forced: telemetry.cut_forced,
            stale_timer_fires: telemetry.stale_timer_fires,
        }
    }
}

/// What the socket transport's hot path actually did during a run: syscalls
/// issued vs frames sent (write coalescing) and per-destination encodes
/// avoided (encode-once broadcast). `None` on the runtimes that move plain
/// Rust values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportReport {
    /// Frames written to sockets.
    pub messages_sent: u64,
    /// Bytes written to sockets (preambles included).
    pub bytes_sent: u64,
    /// `write(2)` calls issued — with coalescing, `messages_sent -
    /// write_syscalls` frames rode along in a burst for free.
    pub write_syscalls: u64,
    /// Frames appended to an already-pending burst (syscalls saved).
    pub frames_coalesced: u64,
    /// Serializations avoided by encode-once broadcasts (encodes saved).
    pub encodes_saved: u64,
    /// Frames written in full by the *sending* thread (zero-hop direct
    /// writes; the rest went through a writer thread or event loop).
    pub direct_writes: u64,
    /// Gather (`writev`) calls that carried more than one slice — backlog
    /// drains that would each have been a copy plus a `write(2)` otherwise.
    pub vectored_writes: u64,
    /// Writes the kernel accepted only partially (socket-buffer pressure;
    /// the remainder stayed queued).
    pub partial_writes: u64,
    /// Raw bytes read from sockets, preambles and mux tags included.
    pub bytes_read: u64,
}

impl TransportReport {
    /// Projects the live transport counters into report form.
    pub fn from_stats(stats: &seemore_net::TransportStats) -> TransportReport {
        TransportReport {
            messages_sent: stats.messages_sent(),
            bytes_sent: stats.bytes_sent(),
            write_syscalls: stats.write_syscalls(),
            frames_coalesced: stats.frames_coalesced(),
            encodes_saved: stats.encodes_saved(),
            direct_writes: stats.direct_writes(),
            vectored_writes: stats.vectored_writes(),
            partial_writes: stats.partial_writes(),
            bytes_read: stats.bytes_read(),
        }
    }
}

/// Throughput and latency statistics for one operation class (reads or
/// writes) inside the measurement window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassStats {
    /// Operations of this class completed inside the window.
    pub completed: u64,
    /// Throughput in thousands of operations per second.
    pub throughput_kreqs: f64,
    /// Mean end-to-end latency in milliseconds.
    pub avg_latency_ms: f64,
    /// Median latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 95th percentile latency in milliseconds.
    pub p95_latency_ms: f64,
    /// 99th percentile latency in milliseconds.
    pub p99_latency_ms: f64,
}

impl ClassStats {
    /// Builds the statistics from a sorted latency sample over a window of
    /// `secs` seconds.
    fn from_sorted_latencies(latencies_ms: &[f64], secs: f64) -> ClassStats {
        let completed = latencies_ms.len() as u64;
        let percentile = |p: f64| -> f64 {
            if latencies_ms.is_empty() {
                return 0.0;
            }
            let rank = ((latencies_ms.len() as f64 - 1.0) * p).round() as usize;
            latencies_ms[rank.min(latencies_ms.len() - 1)]
        };
        ClassStats {
            completed,
            throughput_kreqs: if secs > 0.0 {
                completed as f64 / secs / 1_000.0
            } else {
                0.0
            },
            avg_latency_ms: if latencies_ms.is_empty() {
                0.0
            } else {
                latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64
            },
            p50_latency_ms: percentile(0.50),
            p95_latency_ms: percentile(0.95),
            p99_latency_ms: percentile(0.99),
        }
    }
}

/// Aggregated statistics of one simulated run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Requests completed inside the measurement window.
    pub completed: u64,
    /// Length of the measurement window.
    pub measured_duration: Duration,
    /// Throughput in thousands of requests per second.
    pub throughput_kreqs: f64,
    /// Mean end-to-end latency in milliseconds.
    pub avg_latency_ms: f64,
    /// Median latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 95th percentile latency in milliseconds.
    pub p95_latency_ms: f64,
    /// 99th percentile latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Protocol messages delivered during the whole run.
    pub messages_delivered: u64,
    /// Bytes delivered during the whole run (wire-size model).
    pub bytes_delivered: u64,
    /// View changes completed across all replicas.
    pub view_changes: u64,
    /// Mode switches completed across all replicas.
    pub mode_switches: u64,
    /// Client retransmissions.
    pub retransmissions: u64,
    /// Statistics for read-classified operations only (reads served by the
    /// fast path *and* reads that fell back to the ordered path).
    pub reads: ClassStats,
    /// Statistics for write-classified operations only.
    pub writes: ClassStats,
    /// Chosen batch sizes and flush causes, aggregated across all replicas
    /// over the whole run.
    pub batching: BatchReport,
    /// Socket-transport hot-path counters (syscalls, coalesced frames,
    /// encodes saved); `None` for the simulator and the threaded runtime.
    pub transport: Option<TransportReport>,
    /// Throughput timeline over the whole run (not only the measurement
    /// window), for the view-change experiment.
    pub timeline: Vec<TimelineBucket>,
}

impl RunReport {
    /// Builds a report from raw completions.
    ///
    /// * `outcomes` — every completed request with its completion time.
    /// * `measure_from` — completions before this instant (warm-up) are
    ///   excluded from throughput/latency statistics but still appear in the
    ///   timeline.
    /// * `run_end` — end of the run.
    /// * `bucket` — timeline bucket width.
    pub fn from_outcomes(
        outcomes: &[ClientOutcome],
        measure_from: Instant,
        run_end: Instant,
        bucket: Duration,
    ) -> RunReport {
        let mut latencies_ms = Vec::new();
        let mut read_latencies_ms = Vec::new();
        let mut write_latencies_ms = Vec::new();
        for outcome in outcomes.iter().filter(|o| o.completed_at >= measure_from) {
            let latency = outcome.latency.as_millis_f64();
            latencies_ms.push(latency);
            match outcome.class {
                OpClass::Read => read_latencies_ms.push(latency),
                OpClass::Write => write_latencies_ms.push(latency),
            }
        }
        fn sort(sample: &mut [f64]) {
            sample.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        }
        sort(&mut latencies_ms);
        sort(&mut read_latencies_ms);
        sort(&mut write_latencies_ms);

        let measured_duration = run_end - measure_from;
        let secs = measured_duration.as_secs_f64();
        let overall = ClassStats::from_sorted_latencies(&latencies_ms, secs);

        let timeline = Self::timeline(outcomes, run_end, bucket);

        RunReport {
            completed: overall.completed,
            measured_duration,
            throughput_kreqs: overall.throughput_kreqs,
            avg_latency_ms: overall.avg_latency_ms,
            p50_latency_ms: overall.p50_latency_ms,
            p95_latency_ms: overall.p95_latency_ms,
            p99_latency_ms: overall.p99_latency_ms,
            reads: ClassStats::from_sorted_latencies(&read_latencies_ms, secs),
            writes: ClassStats::from_sorted_latencies(&write_latencies_ms, secs),
            timeline,
            ..RunReport::default()
        }
    }

    fn timeline(
        outcomes: &[ClientOutcome],
        run_end: Instant,
        bucket: Duration,
    ) -> Vec<TimelineBucket> {
        if bucket == Duration::ZERO || run_end == Instant::ZERO {
            return Vec::new();
        }
        let bucket_ns = bucket.as_nanos().max(1);
        let buckets = run_end.as_nanos().div_ceil(bucket_ns) as usize;
        let mut counts = vec![0u64; buckets];
        for outcome in outcomes {
            let index = (outcome.completed_at.as_nanos() / bucket_ns) as usize;
            if index < buckets {
                counts[index] += 1;
            }
        }
        let bucket_secs = bucket.as_secs_f64();
        counts
            .iter()
            .enumerate()
            .map(|(i, completed)| TimelineBucket {
                start_ms: i as f64 * bucket.as_millis_f64(),
                completed: *completed,
                throughput_kreqs: *completed as f64 / bucket_secs / 1_000.0,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seemore_types::{ClientId, RequestId, Timestamp};

    fn outcome(completed_ms: u64, latency_ms: u64, n: u64) -> ClientOutcome {
        ClientOutcome {
            request: RequestId::new(ClientId(0), Timestamp(n)),
            class: if n.is_multiple_of(2) {
                OpClass::Write
            } else {
                OpClass::Read
            },
            result: Vec::new(),
            latency: Duration::from_millis(latency_ms),
            completed_at: Instant::from_nanos(completed_ms * 1_000_000),
        }
    }

    #[test]
    fn per_class_statistics_split_reads_from_writes() {
        // 10 writes at 4 ms and 10 reads at 1 ms over one second.
        let outcomes: Vec<ClientOutcome> = (0..20)
            .map(|n| outcome(n * 40, if n % 2 == 0 { 4 } else { 1 }, n))
            .collect();
        let report = RunReport::from_outcomes(
            &outcomes,
            Instant::ZERO,
            Instant::from_nanos(1_000_000_000),
            Duration::from_millis(100),
        );
        assert_eq!(report.completed, 20);
        assert_eq!(report.reads.completed, 10);
        assert_eq!(report.writes.completed, 10);
        assert!((report.reads.avg_latency_ms - 1.0).abs() < 1e-9);
        assert!((report.writes.avg_latency_ms - 4.0).abs() < 1e-9);
        assert!((report.avg_latency_ms - 2.5).abs() < 1e-9);
        assert!(
            (report.reads.throughput_kreqs + report.writes.throughput_kreqs
                - report.throughput_kreqs)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn throughput_and_latency_over_measurement_window() {
        // 100 completions spread over 1 second, 2 ms latency each, after a
        // 100 ms warm-up that contains 10 more completions.
        let mut outcomes = Vec::new();
        for i in 0..10 {
            outcomes.push(outcome(i * 10, 5, i));
        }
        for i in 0..100 {
            outcomes.push(outcome(100 + i * 9, 2, 100 + i));
        }
        let report = RunReport::from_outcomes(
            &outcomes,
            Instant::from_nanos(100 * 1_000_000),
            Instant::from_nanos(1_000 * 1_000_000),
            Duration::from_millis(100),
        );
        assert_eq!(report.completed, 100);
        assert!((report.throughput_kreqs - 100.0 / 0.9 / 1000.0).abs() < 1e-9);
        assert!((report.avg_latency_ms - 2.0).abs() < 1e-9);
        assert!((report.p50_latency_ms - 2.0).abs() < 1e-9);
        assert_eq!(report.timeline.len(), 10);
        // Warm-up completions appear in the timeline's first bucket.
        assert_eq!(report.timeline[0].completed, 10);
    }

    #[test]
    fn empty_runs_produce_zeroes() {
        let report = RunReport::from_outcomes(
            &[],
            Instant::ZERO,
            Instant::from_nanos(1_000_000),
            Duration::from_millis(1),
        );
        assert_eq!(report.completed, 0);
        assert_eq!(report.throughput_kreqs, 0.0);
        assert_eq!(report.avg_latency_ms, 0.0);
        assert_eq!(report.p99_latency_ms, 0.0);
        assert_eq!(report.timeline.len(), 1);
    }

    #[test]
    fn percentiles_are_ordered() {
        let outcomes: Vec<ClientOutcome> = (0..1000).map(|i| outcome(i, i % 50 + 1, i)).collect();
        let report = RunReport::from_outcomes(
            &outcomes,
            Instant::ZERO,
            Instant::from_nanos(1_000 * 1_000_000),
            Duration::from_millis(10),
        );
        assert!(report.p50_latency_ms <= report.p95_latency_ms);
        assert!(report.p95_latency_ms <= report.p99_latency_ms);
        assert!(report.avg_latency_ms > 0.0);
        let total_in_timeline: u64 = report.timeline.iter().map(|b| b.completed).sum();
        assert_eq!(total_in_timeline, 1000);
    }

    #[test]
    fn batch_report_projects_telemetry() {
        use seemore_core::batching::FlushCause;
        let mut telemetry = BatchTelemetry::default();
        telemetry.record_cut(1, FlushCause::Size);
        telemetry.record_cut(3, FlushCause::Timer);
        telemetry.record_cut(8, FlushCause::Forced);
        telemetry.stale_timer_fires = 2;
        let report = BatchReport::from_telemetry(&telemetry);
        assert_eq!(report.batches, 3);
        assert!((report.mean_size - 4.0).abs() < 1e-12);
        assert_eq!(report.p50_size, 3);
        assert_eq!(report.max_size, 8);
        assert_eq!(report.cut_by_size, 1);
        assert_eq!(report.cut_by_timer, 1);
        assert_eq!(report.cut_forced, 1);
        assert_eq!(report.stale_timer_fires, 2);
        assert_eq!(RunReport::default().batching, BatchReport::default());
    }
}
