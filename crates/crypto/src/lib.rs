//! Cryptographic substrate for the SeeMoRe reproduction.
//!
//! The paper assumes standard cryptographic primitives: collision-resistant
//! message digests to protect message integrity, and signatures that a
//! Byzantine replica cannot forge on behalf of a correct replica
//! (Section 3.1). This crate provides both, implemented from scratch so that
//! the workspace has no external cryptography dependencies:
//!
//! * [`mod@sha256`] — a from-scratch SHA-256 implementation (FIPS 180-4),
//!   validated against the standard test vectors.
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104 / RFC 4231).
//! * [`Digest`] — a 32-byte message digest.
//! * [`KeyStore`] / [`SecretKey`] / [`Signature`] — *simulated* digital
//!   signatures: each node holds a secret HMAC key and every node can verify
//!   any signature through a shared [`KeyStore`].
//!
//! ## Why simulated signatures are sound here
//!
//! The protocol only relies on two properties of signatures: (1) a Byzantine
//! replica cannot produce a valid signature of another replica, and (2) every
//! replica and client can verify every signature. In this reproduction the
//! Byzantine fault injectors are never handed other nodes' secret keys, so
//! property (1) holds inside the simulation exactly as it would with
//! public-key signatures, while the shared [`KeyStore`] provides property
//! (2). The CPU cost of signing/verifying (an HMAC over the message) is also
//! paid on every code path the paper pays it on, which is what matters for
//! the performance model. This substitution is documented in `DESIGN.md`.
//!
//! ## Hot path
//!
//! Signing and verification dominate BFT-lineage throughput profiles (PBFT
//! and Zyzzyva both report MAC/signature work as the top CPU consumer), so
//! the two repeated costs around the HMAC itself are engineered away:
//!
//! * **Allocation**: the canonical signing bytes of a message are built
//!   through `SignedPayload::signing_bytes_into` into a per-replica scratch
//!   buffer (`seemore_wire::SigningScratch`), so the classic
//!   `sign(&m.signing_bytes())` pattern stops allocating a `Vec` per
//!   signature — steady state performs zero allocations per sign/verify.
//! * **Repeat verification**: [`VerifyCache`] is a bounded memo of
//!   already-verified signatures keyed by `(sender, message digest)`.
//!   Duplicate deliveries (client retransmissions, votes arriving through
//!   multiple paths) and quorum-certificate re-checks skip the second HMAC.
//!   The memo is accept-side only and never disagrees with plain
//!   [`KeyStore::verify`] — inserts happen only after a successful plain
//!   verification, hits additionally require a byte-identical signature,
//!   and mismatches fall through to the full check (see [`memo`] for the
//!   complete soundness argument and the property test backing it).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod digest;
pub mod hmac;
pub mod keys;
pub mod memo;
pub mod sha256;

pub use digest::Digest;
pub use hmac::hmac_sha256;
pub use keys::{KeyStore, SecretKey, Signature, Signer};
pub use memo::VerifyCache;
pub use sha256::{sha256, Sha256};
