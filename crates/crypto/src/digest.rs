//! Message digests (`D(µ)` in the paper's notation).

use crate::sha256::{sha256, Sha256, OUTPUT_LEN};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 32-byte SHA-256 digest of a message.
///
/// The paper uses digests to protect the integrity of a message and to refer
/// to a request compactly inside `PREPARE` / `ACCEPT` / `COMMIT` messages.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Digest([u8; OUTPUT_LEN]);

impl Digest {
    /// The all-zero digest, used as a placeholder for "no request" (e.g. the
    /// genesis checkpoint).
    pub const ZERO: Digest = Digest([0u8; OUTPUT_LEN]);

    /// Digest of a raw byte string.
    pub fn of_bytes(data: &[u8]) -> Digest {
        Digest(sha256(data))
    }

    /// Digest of a sequence of labelled fields.
    ///
    /// Each field is absorbed as `len || bytes` so that field boundaries are
    /// unambiguous (no concatenation ambiguity between e.g. `("ab", "c")` and
    /// `("a", "bc")`).
    pub fn of_fields(fields: &[&[u8]]) -> Digest {
        let mut hasher = Sha256::new();
        for field in fields {
            hasher.update(&(field.len() as u64).to_le_bytes());
            hasher.update(field);
        }
        Digest(hasher.finalize())
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; OUTPUT_LEN] {
        &self.0
    }

    /// Builds a digest from raw bytes (used when deserializing).
    pub fn from_bytes(bytes: [u8; OUTPUT_LEN]) -> Digest {
        Digest(bytes)
    }

    /// A short hexadecimal prefix, convenient for logging.
    pub fn short_hex(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Full hexadecimal rendering.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short_hex())
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_bytes_matches_sha256() {
        assert_eq!(Digest::of_bytes(b"abc").as_bytes(), &sha256(b"abc"));
    }

    #[test]
    fn field_framing_prevents_concatenation_ambiguity() {
        let a = Digest::of_fields(&[b"ab", b"c"]);
        let b = Digest::of_fields(&[b"a", b"bc"]);
        let c = Digest::of_fields(&[b"abc"]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn zero_digest_is_default() {
        assert_eq!(Digest::default(), Digest::ZERO);
        assert_eq!(Digest::ZERO.as_bytes(), &[0u8; 32]);
    }

    #[test]
    fn hex_renderings() {
        let d = Digest::of_bytes(b"abc");
        assert_eq!(d.to_hex().len(), 64);
        assert_eq!(d.short_hex().len(), 8);
        assert!(d.to_hex().starts_with(&d.short_hex()));
        assert_eq!(format!("{d}"), d.short_hex());
        assert!(format!("{d:?}").contains(&d.short_hex()));
    }

    #[test]
    fn from_bytes_round_trip() {
        let d = Digest::of_bytes(b"round-trip");
        assert_eq!(Digest::from_bytes(*d.as_bytes()), d);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Field digests are injective over field boundaries for the inputs
        /// we can enumerate cheaply.
        #[test]
        fn distinct_field_splits_distinct_digests(
            data in proptest::collection::vec(any::<u8>(), 2..64),
            split_a in 1usize..63,
            split_b in 1usize..63,
        ) {
            let a = split_a % data.len();
            let b = split_b % data.len();
            prop_assume!(a != b && a > 0 && b > 0);
            let da = Digest::of_fields(&[&data[..a], &data[a..]]);
            let db = Digest::of_fields(&[&data[..b], &data[b..]]);
            prop_assert_ne!(da, db);
        }
    }
}
