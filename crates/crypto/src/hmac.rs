//! HMAC-SHA-256 (RFC 2104), validated against the RFC 4231 test vectors.

use crate::sha256::{Sha256, BLOCK_LEN, OUTPUT_LEN};

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte SHA-256 block are first hashed, as required
/// by RFC 2104; shorter keys are zero-padded.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; OUTPUT_LEN] {
    let mut block_key = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let hashed = crate::sha256::sha256(key);
        block_key[..OUTPUT_LEN].copy_from_slice(&hashed);
    } else {
        block_key[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = block_key[i] ^ 0x36;
        opad[i] = block_key[i] ^ 0x5c;
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time comparison of two byte strings of equal length.
///
/// Returns `false` if the lengths differ. Used when verifying signatures so
/// that (even inside the simulation) verification does not leak how many
/// prefix bytes matched.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2: "Jefe" / "what do ya want for nothing?".
    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 0xaa*20 key, 0xdd*50 data.
    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 4231 test case 7: long key and long data.
    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaau8; 131];
        let data = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn different_keys_give_different_tags() {
        let tag_a = hmac_sha256(b"key-a", b"message");
        let tag_b = hmac_sha256(b"key-b", b"message");
        assert_ne!(tag_a, tag_b);
    }

    #[test]
    fn different_messages_give_different_tags() {
        let tag_a = hmac_sha256(b"key", b"message-1");
        let tag_b = hmac_sha256(b"key", b"message-2");
        assert_ne!(tag_a, tag_b);
    }

    #[test]
    fn constant_time_eq_behaviour() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(constant_time_eq(b"", b""));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// HMAC is deterministic and key-sensitive.
        #[test]
        fn deterministic_and_key_sensitive(
            key in proptest::collection::vec(any::<u8>(), 1..128),
            msg in proptest::collection::vec(any::<u8>(), 0..512),
            flip in 0usize..128,
        ) {
            let tag = hmac_sha256(&key, &msg);
            prop_assert_eq!(tag, hmac_sha256(&key, &msg));

            let mut other_key = key.clone();
            let idx = flip % other_key.len();
            other_key[idx] ^= 0x01;
            prop_assert_ne!(tag, hmac_sha256(&other_key, &msg));
        }

        /// constant_time_eq agrees with ordinary equality.
        #[test]
        fn constant_time_eq_matches_eq(
            a in proptest::collection::vec(any::<u8>(), 0..64),
            b in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            prop_assert_eq!(constant_time_eq(&a, &b), a == b);
        }
    }
}
