//! Simulated digital signatures.
//!
//! Every node (replica or client) owns a [`SecretKey`]; signing a message
//! produces a [`Signature`] (an HMAC-SHA-256 tag over the message bytes).
//! Verification goes through a shared [`KeyStore`] that maps node identities
//! to their secret keys — the in-simulation equivalent of "all machines have
//! the public keys of all other machines" (Section 3.1 of the paper).
//!
//! The unforgeability argument is preserved because Byzantine behaviours in
//! this workspace are implemented as wrappers around protocol cores that only
//! ever hold *their own* [`Signer`]; they can refuse to sign, equivocate, or
//! send garbage tags, but they cannot produce a tag that verifies as another
//! node, exactly like the adversary in the paper's model.

use crate::digest::Digest;
use crate::hmac::{constant_time_eq, hmac_sha256};
use seemore_types::{ClientId, NodeId, ReplicaId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Length of secret keys and signature tags, in bytes.
pub const KEY_LEN: usize = 32;

/// A node's secret signing key.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey([u8; KEY_LEN]);

impl SecretKey {
    /// Derives the secret key of `node` from a cluster-wide seed.
    ///
    /// Key material is simulated: the whole cluster is generated from one
    /// seed so that runs are reproducible, and the derivation goes through
    /// SHA-256 so keys do not reveal the seed or each other.
    pub fn derive(cluster_seed: u64, node: NodeId) -> SecretKey {
        let label: &[u8] = match node {
            NodeId::Replica(_) => b"replica-key",
            NodeId::Client(_) => b"client-key",
        };
        let index = match node {
            NodeId::Replica(ReplicaId(r)) => u64::from(r),
            NodeId::Client(ClientId(c)) => c,
        };
        let digest = Digest::of_fields(&[
            b"seemore-secret-key",
            label,
            &cluster_seed.to_le_bytes(),
            &index.to_le_bytes(),
        ]);
        SecretKey(*digest.as_bytes())
    }

    /// Builds a key from raw bytes (mainly for tests).
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> SecretKey {
        SecretKey(bytes)
    }

    /// Raw key bytes.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(…)")
    }
}

/// A signature tag over a message, attributable to a single node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature([u8; KEY_LEN]);

impl Signature {
    /// An obviously invalid signature, useful for fault injection.
    pub const INVALID: Signature = Signature([0u8; KEY_LEN]);

    /// Raw tag bytes.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }

    /// Builds a signature from raw bytes (fault injection / deserialization).
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Signature {
        Signature(bytes)
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix: String = self.0[..4].iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "Signature({prefix}…)")
    }
}

impl Default for Signature {
    fn default() -> Self {
        Signature::INVALID
    }
}

/// The signing half held by a single node.
#[derive(Clone, Debug)]
pub struct Signer {
    node: NodeId,
    key: SecretKey,
}

impl Signer {
    /// Creates a signer for `node` with the given secret key.
    pub fn new(node: NodeId, key: SecretKey) -> Signer {
        Signer { node, key }
    }

    /// The identity this signer signs as.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Signs an arbitrary byte string.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature(hmac_sha256(self.key.as_bytes(), message))
    }

    /// Signs a digest (the common case for protocol messages: the signed
    /// payload is itself summarized by a digest).
    pub fn sign_digest(&self, digest: &Digest) -> Signature {
        self.sign(digest.as_bytes())
    }
}

/// The verification half shared by every node in the cluster.
///
/// Cloning a `KeyStore` is cheap (the key table is behind an `Arc`).
#[derive(Clone, Debug)]
pub struct KeyStore {
    keys: Arc<BTreeMap<NodeId, SecretKey>>,
    cluster_seed: u64,
}

impl KeyStore {
    /// Generates a key store for `replica_count` replicas and
    /// `client_count` clients from a single seed.
    pub fn generate(cluster_seed: u64, replica_count: u32, client_count: u64) -> KeyStore {
        let mut keys = BTreeMap::new();
        for r in 0..replica_count {
            let node = NodeId::Replica(ReplicaId(r));
            keys.insert(node, SecretKey::derive(cluster_seed, node));
        }
        for c in 0..client_count {
            let node = NodeId::Client(ClientId(c));
            keys.insert(node, SecretKey::derive(cluster_seed, node));
        }
        KeyStore {
            keys: Arc::new(keys),
            cluster_seed,
        }
    }

    /// The seed this key store was generated from.
    pub fn cluster_seed(&self) -> u64 {
        self.cluster_seed
    }

    /// Number of keys registered.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the key store is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Returns the signer for `node`, if the node is known.
    ///
    /// The runtime hands each node only its own signer; fault injectors for
    /// Byzantine replicas are given the same single signer, never the whole
    /// store's signing capability.
    pub fn signer_for(&self, node: NodeId) -> Option<Signer> {
        self.keys
            .get(&node)
            .map(|key| Signer::new(node, key.clone()))
    }

    /// Verifies that `signature` is `node`'s signature over `message`.
    pub fn verify(&self, node: NodeId, message: &[u8], signature: &Signature) -> bool {
        match self.keys.get(&node) {
            Some(key) => {
                let expected = hmac_sha256(key.as_bytes(), message);
                constant_time_eq(&expected, signature.as_bytes())
            }
            None => false,
        }
    }

    /// Verifies a signature over a digest.
    pub fn verify_digest(&self, node: NodeId, digest: &Digest, signature: &Signature) -> bool {
        self.verify(node, digest.as_bytes(), signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KeyStore {
        KeyStore::generate(42, 4, 2)
    }

    #[test]
    fn generate_registers_all_nodes() {
        let ks = store();
        assert_eq!(ks.len(), 6);
        assert!(!ks.is_empty());
        assert_eq!(ks.cluster_seed(), 42);
        assert!(ks.signer_for(NodeId::Replica(ReplicaId(3))).is_some());
        assert!(ks.signer_for(NodeId::Client(ClientId(1))).is_some());
        assert!(ks.signer_for(NodeId::Replica(ReplicaId(4))).is_none());
    }

    #[test]
    fn sign_verify_round_trip() {
        let ks = store();
        let node = NodeId::Replica(ReplicaId(2));
        let signer = ks.signer_for(node).unwrap();
        assert_eq!(signer.node(), node);
        let sig = signer.sign(b"prepare v0 n1");
        assert!(ks.verify(node, b"prepare v0 n1", &sig));
        assert!(!ks.verify(node, b"prepare v0 n2", &sig));
    }

    #[test]
    fn signatures_are_not_transferable_between_nodes() {
        let ks = store();
        let a = NodeId::Replica(ReplicaId(0));
        let b = NodeId::Replica(ReplicaId(1));
        let sig = ks.signer_for(a).unwrap().sign(b"message");
        assert!(ks.verify(a, b"message", &sig));
        assert!(!ks.verify(b, b"message", &sig));
    }

    #[test]
    fn invalid_signature_never_verifies() {
        let ks = store();
        let node = NodeId::Replica(ReplicaId(0));
        assert!(!ks.verify(node, b"anything", &Signature::INVALID));
        assert!(!ks.verify(node, b"anything", &Signature::default()));
    }

    #[test]
    fn unknown_node_never_verifies() {
        let ks = store();
        let unknown = NodeId::Client(ClientId(999));
        let sig = Signature::from_bytes([7u8; KEY_LEN]);
        assert!(!ks.verify(unknown, b"hello", &sig));
    }

    #[test]
    fn digest_signing_matches_byte_signing() {
        let ks = store();
        let node = NodeId::Client(ClientId(0));
        let signer = ks.signer_for(node).unwrap();
        let digest = Digest::of_bytes(b"payload");
        let by_digest = signer.sign_digest(&digest);
        let by_bytes = signer.sign(digest.as_bytes());
        assert_eq!(by_digest, by_bytes);
        assert!(ks.verify_digest(node, &digest, &by_digest));
    }

    #[test]
    fn key_derivation_is_deterministic_and_distinct() {
        let a = SecretKey::derive(1, NodeId::Replica(ReplicaId(0)));
        let b = SecretKey::derive(1, NodeId::Replica(ReplicaId(0)));
        let c = SecretKey::derive(1, NodeId::Replica(ReplicaId(1)));
        let d = SecretKey::derive(2, NodeId::Replica(ReplicaId(0)));
        let e = SecretKey::derive(1, NodeId::Client(ClientId(0)));
        assert_eq!(a, b);
        assert_ne!(a.as_bytes(), c.as_bytes());
        assert_ne!(a.as_bytes(), d.as_bytes());
        assert_ne!(a.as_bytes(), e.as_bytes());
    }

    #[test]
    fn debug_does_not_leak_key_material() {
        let key = SecretKey::from_bytes([0xaa; KEY_LEN]);
        let rendered = format!("{key:?}");
        assert!(!rendered.contains("aa"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// A signature verifies if and only if node, message and tag all
        /// match.
        #[test]
        fn verification_soundness(
            msg in proptest::collection::vec(any::<u8>(), 0..256),
            tamper in any::<u8>(),
            idx in 0usize..256,
        ) {
            let ks = KeyStore::generate(7, 3, 1);
            let node = NodeId::Replica(ReplicaId(1));
            let signer = ks.signer_for(node).unwrap();
            let sig = signer.sign(&msg);
            prop_assert!(ks.verify(node, &msg, &sig));

            // Tampering with the message breaks verification.
            if !msg.is_empty() && tamper != 0 {
                let mut tampered = msg.clone();
                let i = idx % tampered.len();
                tampered[i] ^= tamper;
                prop_assert!(!ks.verify(node, &tampered, &sig));
            }

            // Tampering with the tag breaks verification.
            if tamper != 0 {
                let mut bytes = *sig.as_bytes();
                bytes[idx % KEY_LEN] ^= tamper;
                prop_assert!(!ks.verify(node, &msg, &Signature::from_bytes(bytes)));
            }
        }
    }
}
