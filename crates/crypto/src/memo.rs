//! A bounded memo of already-verified signatures.
//!
//! BFT-lineage protocols re-verify the same bytes surprisingly often: client
//! retransmissions redeliver identical signed requests, a lagging replica
//! receives the same vote through more than one path, and view-change /
//! state-transfer handling re-checks quorum-certificate signatures that the
//! normal case already verified. Each of those re-checks is a full HMAC over
//! the message; [`VerifyCache`] turns the repeat into a digest computation
//! plus a hash-map probe.
//!
//! # Soundness
//!
//! The memo may only ever *agree* with [`KeyStore::verify`]; it must never
//! accept a `(node, message, signature)` triple that plain verification
//! rejects. Two properties guarantee this:
//!
//! 1. Entries are inserted only after a successful plain verification, keyed
//!    by `(node, D(message))` with the verified signature stored as the
//!    value, where `D` is the collision-resistant [`Digest`]. A later lookup
//!    hits only if the node matches, the message digests to the same value
//!    (so, modulo a SHA-256 collision, *is* the same bytes) and the
//!    presented signature equals the stored one byte-for-byte.
//! 2. A lookup whose stored signature differs from the presented one does
//!    **not** reject; it falls through to plain verification. The memo is an
//!    accept-side shortcut only, so a scheme with more than one valid
//!    signature per message (unlike HMAC) would still verify correctly.
//!
//! Rejections are deliberately *not* memoized: a negative cache keyed by
//! attacker-controlled bytes would let a Byzantine peer churn the map and
//! evict the useful entries for free.
//!
//! # Bounding
//!
//! The map is bounded by a two-generation scheme: inserts go to the current
//! generation, lookups probe both, and when the current generation reaches
//! `capacity` entries it becomes the previous one (which is dropped). Every
//! entry therefore survives between `capacity` and `2 * capacity` inserts —
//! recently verified signatures stay hot, memory is capped, and there is no
//! per-entry LRU bookkeeping on the fast path.

use crate::digest::Digest;
use crate::keys::{KeyStore, Signature};
use seemore_types::NodeId;
use std::collections::HashMap;

/// Default number of entries per generation (a full generation of 72-byte
/// keys plus 32-byte signatures is on the order of 100 KiB per replica).
pub const DEFAULT_VERIFY_CACHE_CAPACITY: usize = 1024;

/// A bounded `(sender, message-digest) → verified signature` memo in front
/// of [`KeyStore::verify`]. See the [module docs](self) for the soundness
/// argument and the bounding scheme.
#[derive(Debug, Clone)]
pub struct VerifyCache {
    current: HashMap<(NodeId, Digest), Signature>,
    previous: HashMap<(NodeId, Digest), Signature>,
    capacity: usize,
    hits: u64,
    lookups: u64,
}

impl Default for VerifyCache {
    fn default() -> Self {
        VerifyCache::new(DEFAULT_VERIFY_CACHE_CAPACITY)
    }
}

impl VerifyCache {
    /// A cache holding up to `capacity` entries per generation (at most
    /// `2 * capacity` in total). A zero capacity disables memoization
    /// entirely — every call is a plain verification.
    pub fn new(capacity: usize) -> VerifyCache {
        VerifyCache {
            current: HashMap::with_capacity(capacity.min(DEFAULT_VERIFY_CACHE_CAPACITY)),
            previous: HashMap::new(),
            capacity,
            hits: 0,
            lookups: 0,
        }
    }

    /// Memoized [`KeyStore::verify`]: returns exactly what plain
    /// verification would, skipping the HMAC when this `(node, message,
    /// signature)` triple was already verified recently.
    pub fn verify(
        &mut self,
        keystore: &KeyStore,
        node: NodeId,
        message: &[u8],
        signature: &Signature,
    ) -> bool {
        if self.capacity == 0 {
            return keystore.verify(node, message, signature);
        }
        self.lookups += 1;
        let key = (node, Digest::of_bytes(message));
        if let Some(seen) = self.current.get(&key).or_else(|| self.previous.get(&key)) {
            if seen == signature {
                self.hits += 1;
                return true;
            }
            // A different signature for known bytes falls through to the
            // plain check — the memo never turns into a rejector.
        }
        if keystore.verify(node, message, signature) {
            self.insert(key, *signature);
            true
        } else {
            false
        }
    }

    /// Entries currently memoized (both generations).
    pub fn len(&self) -> usize {
        self.current.len() + self.previous.len()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the memo (no HMAC performed).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total memoized-verify calls (with a non-zero capacity).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    fn insert(&mut self, key: (NodeId, Digest), signature: Signature) {
        if self.current.len() >= self.capacity {
            self.previous = std::mem::take(&mut self.current);
        }
        self.current.insert(key, signature);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seemore_types::ReplicaId;

    fn store() -> KeyStore {
        KeyStore::generate(11, 3, 1)
    }

    #[test]
    fn hits_skip_the_hmac_and_agree_with_plain_verify() {
        let ks = store();
        let node = NodeId::Replica(ReplicaId(1));
        let signer = ks.signer_for(node).unwrap();
        let sig = signer.sign(b"vote v1 n4");
        let mut memo = VerifyCache::new(64);

        assert!(memo.verify(&ks, node, b"vote v1 n4", &sig));
        assert_eq!(memo.hits(), 0, "first check is a miss");
        assert!(memo.verify(&ks, node, b"vote v1 n4", &sig));
        assert_eq!(memo.hits(), 1, "duplicate delivery hits the memo");
        assert_eq!(memo.lookups(), 2);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn cached_bytes_with_a_wrong_signature_are_still_rejected() {
        let ks = store();
        let node = NodeId::Replica(ReplicaId(0));
        let signer = ks.signer_for(node).unwrap();
        let sig = signer.sign(b"message");
        let mut memo = VerifyCache::new(64);
        assert!(memo.verify(&ks, node, b"message", &sig));

        // Same bytes, tampered tag: the memo must fall through and reject.
        let mut bad = *sig.as_bytes();
        bad[0] ^= 0xFF;
        assert!(!memo.verify(&ks, node, b"message", &Signature::from_bytes(bad)));
        // Same bytes, another node's valid tag: rejected too.
        let other = NodeId::Replica(ReplicaId(2));
        let other_sig = ks.signer_for(other).unwrap().sign(b"message");
        assert!(!memo.verify(&ks, node, b"message", &other_sig));
        assert!(memo.verify(&ks, other, b"message", &other_sig));
    }

    #[test]
    fn capacity_bounds_the_memo_across_generations() {
        let ks = store();
        let node = NodeId::Replica(ReplicaId(0));
        let signer = ks.signer_for(node).unwrap();
        let mut memo = VerifyCache::new(8);
        for i in 0..100u32 {
            let message = i.to_le_bytes();
            let sig = signer.sign(&message);
            assert!(memo.verify(&ks, node, &message, &sig));
            assert!(memo.len() <= 16, "two generations of 8");
        }
        // The most recent entry is still hot.
        let sig = signer.sign(&99u32.to_le_bytes());
        let hits = memo.hits();
        assert!(memo.verify(&ks, node, &99u32.to_le_bytes(), &sig));
        assert_eq!(memo.hits(), hits + 1);
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let ks = store();
        let node = NodeId::Replica(ReplicaId(0));
        let signer = ks.signer_for(node).unwrap();
        let sig = signer.sign(b"m");
        let mut memo = VerifyCache::new(0);
        assert!(memo.verify(&ks, node, b"m", &sig));
        assert!(memo.verify(&ks, node, b"m", &sig));
        assert_eq!(memo.hits(), 0);
        assert_eq!(memo.lookups(), 0);
        assert!(memo.is_empty());
    }

    #[test]
    fn rejections_are_not_cached() {
        let ks = store();
        let node = NodeId::Replica(ReplicaId(0));
        let mut memo = VerifyCache::new(8);
        for i in 0..100u32 {
            assert!(!memo.verify(&ks, node, &i.to_le_bytes(), &Signature::INVALID));
        }
        assert!(memo.is_empty(), "garbage must not churn the memo");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use seemore_types::ReplicaId;

    proptest! {
        /// The acceptance property of the issue: memoized verify is
        /// *extensionally equal* to plain verify — on every call of a long,
        /// adversarial interleaving of repeats, tampered tags, tampered
        /// bytes and cross-node replays, both return the same bool (so the
        /// memo can never accept what plain verification rejects, nor the
        /// reverse).
        #[test]
        fn memoized_verify_equals_plain_verify(
            seeds in proptest::collection::vec(
                (0u8..3, 0u8..4, any::<u8>(), any::<bool>(), any::<bool>()),
                1..200,
            ),
            capacity in 0usize..16,
        ) {
            let ks = KeyStore::generate(31, 3, 0);
            let mut memo = VerifyCache::new(capacity);
            for (node_index, message_index, tamper, corrupt_sig, cross_node) in seeds {
                let node = NodeId::Replica(ReplicaId(u32::from(node_index)));
                let message = [b'm', message_index, tamper & 0x3];
                let honest_signer = ks.signer_for(node).unwrap();
                let mut sig = if cross_node {
                    // A valid signature of a *different* node over the same
                    // bytes (the splice attack the memo key must resist).
                    let other = NodeId::Replica(ReplicaId(u32::from((node_index + 1) % 3)));
                    ks.signer_for(other).unwrap().sign(&message)
                } else {
                    honest_signer.sign(&message)
                };
                if corrupt_sig && tamper != 0 {
                    let mut bytes = *sig.as_bytes();
                    bytes[usize::from(tamper) % bytes.len()] ^= tamper;
                    sig = Signature::from_bytes(bytes);
                }
                let plain = ks.verify(node, &message, &sig);
                let memoized = memo.verify(&ks, node, &message, &sig);
                prop_assert_eq!(memoized, plain);
            }
        }
    }
}
