//! One-way link latency model.

use crate::placement::{Placement, Zone};
use rand::Rng;
use seemore_types::{Duration, NodeId};

/// Latency parameters of the simulated network.
///
/// The default models the paper's testbed: both clouds in the same EC2
/// region (sub-millisecond replica-to-replica latency) with clients slightly
/// further away. `cross_cloud` can be raised to study the geo-separated
/// setting that motivates the Peacock mode (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// One-way latency between two replicas in the same cloud.
    pub intra_cloud: Duration,
    /// One-way latency between a private and a public replica.
    pub cross_cloud: Duration,
    /// One-way latency between a client and any replica.
    pub client_link: Duration,
    /// Additional transmission time per kilobyte of message payload.
    pub per_kilobyte: Duration,
    /// Uniform jitter applied to every delay, as a fraction of the base
    /// (0.1 = up to ±10%).
    pub jitter: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::same_region()
    }
}

impl LatencyModel {
    /// The paper's evaluation setting: both clouds in the same data center.
    pub fn same_region() -> Self {
        LatencyModel {
            intra_cloud: Duration::from_micros(120),
            cross_cloud: Duration::from_micros(120),
            client_link: Duration::from_micros(250),
            per_kilobyte: Duration::from_micros(3),
            jitter: 0.10,
        }
    }

    /// A geo-separated hybrid cloud: the public cloud is far from the
    /// private cloud (used to motivate switching to the Peacock mode).
    pub fn geo_separated(cross_cloud_ms: u64) -> Self {
        LatencyModel {
            cross_cloud: Duration::from_millis(cross_cloud_ms),
            ..LatencyModel::same_region()
        }
    }

    /// A zero-jitter copy of this model (deterministic runs).
    pub fn without_jitter(mut self) -> Self {
        self.jitter = 0.0;
        self
    }

    /// Base (jitter-free) one-way delay between `from` and `to` for a
    /// message of `bytes` bytes.
    pub fn base_delay(
        &self,
        placement: &Placement,
        from: NodeId,
        to: NodeId,
        bytes: usize,
    ) -> Duration {
        let (zf, zt) = (placement.zone(from), placement.zone(to));
        let link = if zf == Zone::Client || zt == Zone::Client {
            self.client_link
        } else if zf != zt {
            self.cross_cloud
        } else {
            self.intra_cloud
        };
        let size_cost_nanos = (self.per_kilobyte.as_nanos() as f64 * bytes as f64 / 1024.0) as u64;
        link + Duration::from_nanos(size_cost_nanos)
    }

    /// One-way delay including jitter drawn from `rng`.
    pub fn delay<R: Rng + ?Sized>(
        &self,
        placement: &Placement,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        rng: &mut R,
    ) -> Duration {
        let base = self.base_delay(placement, from, to, bytes);
        if self.jitter <= 0.0 {
            return base;
        }
        let factor = 1.0 + rng.gen_range(-self.jitter..=self.jitter);
        Duration::from_nanos((base.as_nanos() as f64 * factor).max(0.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use seemore_types::{ClientId, ClusterConfig, FailureBounds, ReplicaId};

    fn placement() -> Placement {
        Placement::hybrid(ClusterConfig::new(2, 4, FailureBounds::new(1, 1)).unwrap())
    }

    #[test]
    fn link_class_selection() {
        let model = LatencyModel::geo_separated(20).without_jitter();
        let p = placement();
        let private0 = NodeId::Replica(ReplicaId(0));
        let private1 = NodeId::Replica(ReplicaId(1));
        let public0 = NodeId::Replica(ReplicaId(2));
        let client = NodeId::Client(ClientId(0));

        assert_eq!(
            model.base_delay(&p, private0, private1, 0),
            model.intra_cloud
        );
        assert_eq!(
            model.base_delay(&p, private0, public0, 0),
            Duration::from_millis(20)
        );
        assert_eq!(model.base_delay(&p, client, private0, 0), model.client_link);
        assert_eq!(model.base_delay(&p, public0, client, 0), model.client_link);
    }

    #[test]
    fn size_increases_delay_linearly() {
        let model = LatencyModel::same_region().without_jitter();
        let p = placement();
        let a = NodeId::Replica(ReplicaId(2));
        let b = NodeId::Replica(ReplicaId(3));
        let small = model.base_delay(&p, a, b, 0);
        let large = model.base_delay(&p, a, b, 4096);
        assert_eq!(
            large.as_nanos() - small.as_nanos(),
            model.per_kilobyte.as_nanos() * 4
        );
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic_per_seed() {
        let model = LatencyModel::same_region();
        let p = placement();
        let a = NodeId::Replica(ReplicaId(0));
        let b = NodeId::Replica(ReplicaId(3));
        let base = model.base_delay(&p, a, b, 100);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let d = model.delay(&p, a, b, 100, &mut rng);
            let ratio = d.as_nanos() as f64 / base.as_nanos() as f64;
            assert!(
                (0.89..=1.11).contains(&ratio),
                "ratio {ratio} out of bounds"
            );
        }
        let mut rng_a = SmallRng::seed_from_u64(9);
        let mut rng_b = SmallRng::seed_from_u64(9);
        assert_eq!(
            model.delay(&p, a, b, 100, &mut rng_a),
            model.delay(&p, a, b, 100, &mut rng_b)
        );
    }

    #[test]
    fn default_is_same_region() {
        assert_eq!(LatencyModel::default(), LatencyModel::same_region());
        let nj = LatencyModel::default().without_jitter();
        assert_eq!(nj.jitter, 0.0);
    }
}
