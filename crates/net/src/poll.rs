//! A minimal readiness poller for the reactor transport.
//!
//! On Linux this is a thin shim over `epoll(7)` plus an `eventfd(2)` wake
//! channel, declared via `extern "C"` — std already links libc, so no
//! external crate is needed (the build container has no registry access).
//! Everything the reactor needs fits in five syscalls: create, ctl
//! (add/modify/delete), wait, and a write to the eventfd to interrupt a
//! wait from another thread.
//!
//! On non-Linux targets a portable fallback keeps the reactor *correct*
//! (all registered descriptors are reported ready on a short tick, and the
//! reactor's nonblocking I/O simply observes `WouldBlock` for the idle
//! ones) at degraded efficiency. The workspace's performance claims are
//! made on Linux.
//!
//! # Level-triggered, and why
//!
//! The poller is level-triggered (the epoll default): a readiness bit stays
//! set as long as the condition holds, so the reactor may do *bounded* work
//! per event (read one chunk, write one burst) and rely on the next
//! `wait` to resume where it left off — no starvation bookkeeping, no lost
//! edge on a short read. The cost (spurious wakeups when a condition
//! persists) is irrelevant at the reactor's burst sizes.
//!
//! # Thread safety
//!
//! `epoll_ctl` is safe to call concurrently with `epoll_wait` on the same
//! epoll instance — the kernel serializes them. The reactor leans on this:
//! *sender* threads arm `EPOLLOUT` on a connection (via
//! [`Poller::modify`]) while the event loop is parked in
//! [`Poller::wait`], then [`Poller::wake`] kicks the loop awake.

use std::io;
use std::os::fd::RawFd;

/// What a descriptor is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or a peer connected, for
    /// listeners).
    pub readable: bool,
    /// Wake when the descriptor accepts more outbound bytes.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of a healthy connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Readable and writable — a connection with queued outbound bytes.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Readable now (includes EOF — a read will return 0, not block).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// The peer hung up or the descriptor errored; the owner should read
    /// out whatever remains and drop the connection.
    pub hangup: bool,
}

/// Token reserved for the internal wake channel; never surfaced in events.
const WAKE_TOKEN: u64 = u64::MAX;

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest, WAKE_TOKEN};
    use std::io;
    use std::os::fd::RawFd;

    // The handful of epoll/eventfd constants and calls the reactor needs,
    // declared directly: std links libc already, and the values below are
    // part of the Linux kernel ABI (stable by definition).
    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: i32 = 0x80000;
    const EFD_NONBLOCK: i32 = 0x800;

    /// `struct epoll_event`. On x86 the kernel ABI packs the 12-byte struct
    /// (no padding before the 64-bit data field); other architectures use
    /// natural alignment.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut events = EPOLLRDHUP;
        if interest.readable {
            events |= EPOLLIN;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        events
    }

    /// The Linux poller: an epoll fd plus an eventfd wake channel.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        wakefd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let wakefd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = Poller { epfd, wakefd };
            poller.ctl(EPOLL_CTL_ADD, wakefd, EPOLLIN, WAKE_TOKEN)?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut event = EpollEvent {
                events,
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut event) }).map(|_| ())
        }

        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, mask(interest), token)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, mask(interest), token)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            // The event argument is ignored for DEL (required non-null only
            // on pre-2.6.9 kernels; passing one is harmless and portable).
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<std::time::Duration>,
        ) -> io::Result<()> {
            events.clear();
            let timeout_ms = match timeout {
                // Round up so a 100µs deadline does not spin at timeout 0.
                Some(t) => i32::try_from(t.as_millis().max(1)).unwrap_or(i32::MAX),
                None => -1,
            };
            const CAPACITY: usize = 256;
            let mut raw = [EpollEvent { events: 0, data: 0 }; CAPACITY];
            let n = loop {
                match cvt(unsafe {
                    epoll_wait(self.epfd, raw.as_mut_ptr(), CAPACITY as i32, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for slot in &raw[..n] {
                let token = slot.data;
                let bits = slot.events;
                if token == WAKE_TOKEN {
                    // Drain the eventfd counter so the next wake re-arms.
                    let mut buf = [0u8; 8];
                    unsafe { read(self.wakefd, buf.as_mut_ptr(), 8) };
                    continue;
                }
                events.push(Event {
                    token,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }

        pub fn wake(&self) {
            let one = 1u64.to_ne_bytes();
            unsafe { write(self.wakefd, one.as_ptr(), 8) };
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.wakefd);
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::{Condvar, Mutex};
    use std::time::Duration;

    /// Portable fallback: no readiness facility, so every registered
    /// descriptor is reported ready on a short tick and the reactor's
    /// nonblocking I/O sorts out which ones actually are (`WouldBlock` on
    /// the rest). Correct, but O(descriptors) per tick — the Linux build is
    /// the one the performance claims are made on.
    #[derive(Debug, Default)]
    pub struct Poller {
        registered: Mutex<HashMap<RawFd, (u64, Interest)>>,
        woken: Mutex<bool>,
        signal: Condvar,
    }

    const TICK: Duration = Duration::from_millis(5);

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller::default())
        }

        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered
                .lock()
                .expect("poller lock")
                .insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.add(fd, token, interest)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().expect("poller lock").remove(&fd);
            Ok(())
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let wait_for = timeout.unwrap_or(TICK).min(TICK);
            {
                let mut woken = self.woken.lock().expect("poller lock");
                if !*woken {
                    let (guard, _) = self
                        .signal
                        .wait_timeout(woken, wait_for)
                        .expect("poller lock");
                    woken = guard;
                }
                *woken = false;
            }
            for (_, &(token, interest)) in self.registered.lock().expect("poller lock").iter() {
                events.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                    hangup: false,
                });
            }
            Ok(())
        }

        pub fn wake(&self) {
            *self.woken.lock().expect("poller lock") = true;
            self.signal.notify_all();
        }
    }
}

/// A readiness poller: register descriptors with a token and an
/// [`Interest`], park in [`wait`](Self::wait) until something is ready (or
/// another thread calls [`wake`](Self::wake)).
#[derive(Debug)]
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Creates a poller (an epoll instance plus eventfd wake channel on
    /// Linux).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: sys::Poller::new()?,
        })
    }

    /// Registers `fd` under `token`. The token comes back verbatim in
    /// [`Event::token`]; the poller imposes no structure on it (the reactor
    /// uses slab indices).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        debug_assert_ne!(token, WAKE_TOKEN, "token reserved for the wake channel");
        self.inner.add(fd, token, interest)
    }

    /// Re-arms `fd` with a new interest set. Safe to call from a thread
    /// other than the one parked in [`wait`](Self::wait).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.inner.delete(fd)
    }

    /// Blocks until at least one registered descriptor is ready, the
    /// timeout elapses, or another thread calls [`wake`](Self::wake).
    /// Readiness is level-triggered. `events` is cleared and refilled.
    pub fn wait(
        &self,
        events: &mut Vec<Event>,
        timeout: Option<std::time::Duration>,
    ) -> io::Result<()> {
        self.inner.wait(events, timeout)
    }

    /// Interrupts a concurrent [`wait`](Self::wait) (or makes the next one
    /// return immediately). Cheap, lock-free on Linux, and safe from any
    /// thread.
    pub fn wake(&self) {
        self.inner.wake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn readiness_tracks_a_tcp_pair() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut dialer = TcpStream::connect(addr).unwrap();
        let (mut accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        poller.add(accepted.as_raw_fd(), 7, Interest::READ).unwrap();

        // Nothing to read yet: wait times out empty (the fallback poller
        // may report spurious readiness, so only assert on Linux).
        let mut events = Vec::new();
        #[cfg(target_os = "linux")]
        {
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "spurious readiness: {events:?}");
        }

        // Bytes in flight flip the readable bit with our token.
        dialer.write_all(b"ping").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "readable event never arrived");
        }
        let mut buf = [0u8; 8];
        assert_eq!(accepted.read(&mut buf).unwrap(), 4);

        // Peer hangup surfaces (as hangup on Linux; as a 0-byte read once
        // the fallback reports readiness).
        drop(dialer);
        #[cfg(target_os = "linux")]
        {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                poller
                    .wait(&mut events, Some(Duration::from_millis(100)))
                    .unwrap();
                if events.iter().any(|e| e.token == 7 && e.hangup) {
                    break;
                }
                assert!(Instant::now() < deadline, "hangup event never arrived");
            }
        }
        poller.delete(accepted.as_raw_fd()).unwrap();
    }

    #[test]
    fn wake_interrupts_a_parked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "wake did not interrupt the wait"
        );
        handle.join().unwrap();
    }

    #[test]
    fn writable_interest_fires_for_a_fresh_connection() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dialer = TcpStream::connect(addr).unwrap();
        dialer.set_nonblocking(true).unwrap();
        poller
            .add(dialer.as_raw_fd(), 3, Interest::READ_WRITE)
            .unwrap();
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 3 && e.writable) {
                break;
            }
            assert!(Instant::now() < deadline, "writable event never arrived");
        }
    }

    #[test]
    fn listener_readiness_fires_on_pending_connection() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        poller.add(listener.as_raw_fd(), 9, Interest::READ).unwrap();
        let _conn = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 9 && e.readable) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "listener readiness never arrived"
            );
        }
    }
}
