//! Per-message processing cost model.
//!
//! Replica CPU time — serialization, hashing, signature generation and
//! verification — is what limits throughput once enough clients are
//! attached; the network in the paper's single-region testbed is far from
//! saturated. The simulator charges every message a processing time at both
//! the sender and the receiver, and a replica handles messages one at a
//! time, so protocols that exchange more (or more expensive) messages per
//! request saturate earlier — exactly the effect behind Figures 2 and 3.

use seemore_crypto::Signature;
use seemore_types::Duration;
use seemore_wire::{Message, WireSize};

/// Processing-cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Fixed cost of handling any message (dispatch, bookkeeping, syscalls).
    pub per_message: Duration,
    /// Additional cost per kilobyte of message payload (copy + hash).
    pub per_kilobyte: Duration,
    /// Cost of generating or verifying one signature / MAC.
    pub per_signature: Duration,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            per_message: Duration::from_micros(4),
            per_kilobyte: Duration::from_micros(2),
            // BFT-SMaRt-style MAC authenticators rather than public-key
            // signatures; calibrated against the HMAC micro-benchmark.
            per_signature: Duration::from_micros(3),
        }
    }
}

impl CpuModel {
    /// A model with free cryptography, used to isolate message-count effects
    /// in ablation benchmarks.
    pub fn without_crypto(mut self) -> Self {
        self.per_signature = Duration::ZERO;
        self
    }

    /// Number of signature operations a node performs when sending or
    /// receiving `message` (signing on send, verifying on receive — the cost
    /// is symmetric in this model).
    pub fn signature_ops(message: &Message) -> u32 {
        match message {
            Message::Request(m) => u32::from(m.signature != Signature::INVALID),
            Message::Reply(m) => u32::from(m.signature != Signature::INVALID),
            Message::ReadRequest(m) => u32::from(m.signature != Signature::INVALID),
            Message::ReadReply(m) => u32::from(m.signature != Signature::INVALID),
            Message::Prepare(m) => u32::from(m.signature != Signature::INVALID),
            Message::PrePrepare(m) => u32::from(m.signature != Signature::INVALID),
            Message::Accept(m) => u32::from(m.signature.is_some()),
            Message::PbftPrepare(m) => u32::from(m.signature != Signature::INVALID),
            Message::Commit(m) => u32::from(m.signature != Signature::INVALID),
            Message::Inform(m) => u32::from(m.signature != Signature::INVALID),
            Message::Checkpoint(m) => u32::from(m.signature != Signature::INVALID),
            // Control-plane messages carry a signature plus embedded
            // certificates; approximate with signature + one op per carried
            // certificate.
            Message::ViewChange(m) => 1 + (m.prepares.len() + m.commits.len()) as u32,
            Message::NewView(m) => 1 + (m.prepares.len() + m.commits.len()) as u32,
            Message::ModeChange(_) => 1,
            Message::StateRequest(_) => 0,
            Message::StateResponse(m) => m.entries.len() as u32,
            Message::Redirect(m) => u32::from(m.signature != Signature::INVALID),
            Message::Recovery(m) => u32::from(m.signature != Signature::INVALID),
        }
    }

    /// Serialization-only cost (no signature work): what the sender pays for
    /// each additional copy of an already-signed broadcast message.
    pub fn serialization_cost(&self, message: &Message) -> Duration {
        let bytes = message.wire_size();
        let size_cost = Duration::from_nanos(
            (self.per_kilobyte.as_nanos() as f64 * bytes as f64 / 1024.0) as u64,
        );
        self.per_message + size_cost
    }

    /// Processing time for one message at one node.
    pub fn cost(&self, message: &Message) -> Duration {
        let bytes = message.wire_size();
        let size_cost = Duration::from_nanos(
            (self.per_kilobyte.as_nanos() as f64 * bytes as f64 / 1024.0) as u64,
        );
        let crypto_cost = Duration::from_nanos(
            self.per_signature.as_nanos() * u64::from(Self::signature_ops(message)),
        );
        self.per_message + size_cost + crypto_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seemore_crypto::KeyStore;
    use seemore_types::{ClientId, NodeId, ReplicaId, SeqNum, Timestamp, View};
    use seemore_wire::{Accept, ClientRequest, Inform};

    fn request(signed: bool, size: usize) -> ClientRequest {
        let ks = KeyStore::generate(5, 2, 1);
        let signer = ks.signer_for(NodeId::Client(ClientId(0))).unwrap();
        let mut request = ClientRequest::new(ClientId(0), Timestamp(1), vec![0u8; size], &signer);
        if !signed {
            request.signature = Signature::INVALID;
        }
        request
    }

    #[test]
    fn signed_messages_cost_more_than_unsigned() {
        let model = CpuModel::default();
        let signed = Message::Request(request(true, 0));
        let unsigned = Message::Request(request(false, 0));
        assert!(model.cost(&signed) > model.cost(&unsigned));
        assert_eq!(
            model.cost(&signed).as_nanos() - model.cost(&unsigned).as_nanos(),
            model.per_signature.as_nanos()
        );
    }

    #[test]
    fn larger_payloads_cost_more() {
        let model = CpuModel::default();
        let small = Message::Request(request(true, 0));
        let large = Message::Request(request(true, 4096));
        assert!(model.cost(&large) > model.cost(&small));
    }

    #[test]
    fn unsigned_accept_has_no_crypto_cost() {
        let accept = Message::Accept(Accept {
            view: View(0),
            seq: SeqNum(1),
            digest: seemore_crypto::Digest::ZERO,
            replica: ReplicaId(1),
            signature: None,
        });
        assert_eq!(CpuModel::signature_ops(&accept), 0);
        let signed_accept = Message::Accept(Accept {
            view: View(0),
            seq: SeqNum(1),
            digest: seemore_crypto::Digest::ZERO,
            replica: ReplicaId(1),
            signature: Some(Signature::from_bytes([1; 32])),
        });
        assert_eq!(CpuModel::signature_ops(&signed_accept), 1);
    }

    #[test]
    fn without_crypto_removes_signature_cost() {
        let model = CpuModel::default().without_crypto();
        let inform = Message::Inform(Inform {
            view: View(0),
            seq: SeqNum(1),
            digest: seemore_crypto::Digest::ZERO,
            replica: ReplicaId(2),
            signature: Signature::from_bytes([1; 32]),
        });
        let base = model.per_message;
        assert!(model.cost(&inform) >= base);
        assert!(model.cost(&inform) < base + Duration::from_micros(2));
    }
}
