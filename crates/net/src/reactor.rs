//! An event-loop (reactor) TCP transport: thousands of connections per
//! node on a fixed handful of threads.
//!
//! This is the scale-out counterpart of [`tcp`](crate::tcp)'s
//! thread-per-peer mesh (see the crate docs for *which transport when*).
//! The protocol-facing surface is identical — the narrow
//! [`Transport`] trait, FIFO per connection, lazy dialing with exponential
//! backoff, encode-once broadcasts — but the machinery underneath inverts:
//! instead of two blocking threads per connection, a small fixed pool of
//! **event-loop threads** drives every socket of the mesh through
//! nonblocking I/O and an `epoll` shim ([`crate::poll`]).
//!
//! # Topology and threads
//!
//! * Each node's listener and every connection (inbound and outbound) is
//!   registered with one of the pool's pollers; connections are spread
//!   round-robin across loops. Thread count is **constant in the number of
//!   connections** — the property that lets one node hold thousands of
//!   concurrent clients where thread-per-peer runs out of scheduler.
//! * Connections stay unidirectional and lazily dialed, exactly like the
//!   thread-per-peer mesh: the first send to a peer queues a dial on the
//!   peer's event loop; reconnects back off exponentially from
//!   [`INITIAL_BACKOFF`] to
//!   [`MAX_BACKOFF`] using deadlines folded into
//!   the loop's `epoll_wait` timeout (no sleeping thread per peer).
//!   Dialing itself is a bounded blocking `connect` from the loop thread —
//!   on the loopback deployments this transport targets, connects complete
//!   (or refuse) immediately.
//!
//! # Hot path
//!
//! * **Zero-hop direct writes** — while a connection is up and its outbox
//!   empty, the *sending* thread writes the frame itself under the outbox
//!   lock: one syscall, no event-loop handoff
//!   ([`TransportStats::direct_writes`]).
//! * **Vectored backlog drains** — when the outbox holds several frames
//!   (dial in progress, kernel send buffer full), the drain gathers them
//!   with `writev` ([`Write::write_vectored`]) straight from the queued
//!   frames' `Arc` buffers — no 256 KiB coalescing copy, one syscall per
//!   burst ([`TransportStats::vectored_writes`]). A partially accepted
//!   write ([`TransportStats::partial_writes`]) leaves the remainder at the
//!   head of the queue and arms `EPOLLOUT`; the loop resumes the drain when
//!   the socket opens up — that is backpressure, not an error.
//! * **Client multiplexing** — a [`ClientHub`] gives *logical* clients
//!   ([`HubPort`]s) a shared set of physical connections: one socket per
//!   replica carries every client's requests (each frame prefixed with an
//!   8-byte logical-client tag), and replicas send every reply for any hub
//!   client down one socket to the hub, which demultiplexes by tag into
//!   per-client queues. Hundreds of closed-loop clients cost sockets
//!   proportional to the replica count, not the client count.
//!
//! # Delivery semantics
//!
//! Identical to the thread-per-peer mesh, verified by the same e2e suite:
//! FIFO per connection, at-least-once across reconnects (a frame the
//! kernel had partially delivered when a connection died is retransmitted
//! whole; the protocol cores tolerate duplication by design), and frames
//! queued while a peer is down survive until it returns. The trust model is
//! also unchanged — the preamble *asserts* identity, authentication is the
//! environment's job (see [`tcp`](crate::tcp)'s docs).

use crate::poll::{Event, Interest, Poller};
use crate::tcp::{Transport, TransportError, TransportStats};
use crate::tcp::{INITIAL_BACKOFF, MAX_BACKOFF};
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use seemore_types::{ClientId, NodeId, ReplicaId};
use seemore_wire::codec::{frame_len, Frame, StreamBuf, CODEC_VERSION, MAGIC};
use seemore_wire::Message;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Length of the per-connection identity preamble (same layout as the
/// thread-per-peer mesh, plus a multiplexing flag byte).
const PREAMBLE_LEN: usize = 16;

/// Preamble tag byte: the dialer is a replica.
const TAG_REPLICA: u8 = 0;
/// Preamble tag byte: the dialer is a standalone client.
const TAG_CLIENT: u8 = 1;
/// Preamble tag byte: the dialer is a client hub (frames carry tags).
const TAG_HUB: u8 = 2;
/// Preamble flag bit: every frame on this connection is prefixed with an
/// 8-byte little-endian logical-client tag.
const FLAG_MUX: u8 = 0x01;

/// Bound on the blocking `connect` a loop performs (loopback connects
/// complete or refuse in microseconds; this is a safety net).
const CONNECT_TIMEOUT: Duration = Duration::from_millis(100);

/// Backstop tick for the event loops: the longest a loop sleeps before
/// rechecking shutdown and redial deadlines even with no traffic.
const TICK: Duration = Duration::from_millis(100);

/// Size of the per-loop read scratch handed to `read(2)`.
const READ_CHUNK: usize = 64 * 1024;

/// Bounded work per readiness event: reads per connection…
const MAX_READS_PER_EVENT: usize = 8;
/// …accepted connections per listener event…
const MAX_ACCEPTS_PER_EVENT: usize = 64;
/// …and gather-write slices per `writev`.
const MAX_SLICES: usize = 64;

/// Ceiling on bytes offered to one gather write.
const MAX_BURST: usize = 256 * 1024;

thread_local! {
    /// Per-thread encode scratch, exactly as in the thread-per-peer mesh.
    static ENCODE_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// The identity an outbound connection announces in its preamble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Identity {
    Node(NodeId),
    Hub,
}

/// The identity decoded from an inbound connection's preamble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InboundIdentity {
    Node(NodeId),
    Hub,
}

/// Which queue an inbound connection's frames are destined for: a node's
/// endpoint, or the hub's per-client ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Owner {
    Node(NodeId),
    Hub,
}

fn encode_preamble(identity: Identity, mux: bool) -> [u8; PREAMBLE_LEN] {
    let (tag, id) = match identity {
        Identity::Node(NodeId::Replica(ReplicaId(r))) => (TAG_REPLICA, u64::from(r)),
        Identity::Node(NodeId::Client(ClientId(c))) => (TAG_CLIENT, c),
        Identity::Hub => (TAG_HUB, 0),
    };
    let mut out = [0u8; PREAMBLE_LEN];
    out[..4].copy_from_slice(&MAGIC);
    out[4] = CODEC_VERSION;
    out[5] = tag;
    out[6] = if mux { FLAG_MUX } else { 0 };
    out[8..16].copy_from_slice(&id.to_le_bytes());
    out
}

fn decode_preamble(bytes: &[u8; PREAMBLE_LEN]) -> Option<(InboundIdentity, bool)> {
    if bytes[..4] != MAGIC || bytes[4] != CODEC_VERSION {
        return None;
    }
    let mux = bytes[6] & FLAG_MUX != 0;
    let id = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let identity = match bytes[5] {
        TAG_REPLICA => InboundIdentity::Node(NodeId::Replica(ReplicaId(u32::try_from(id).ok()?))),
        TAG_CLIENT => InboundIdentity::Node(NodeId::Client(ClientId(id))),
        TAG_HUB => InboundIdentity::Hub,
        _ => return None,
    };
    Some((identity, mux))
}

/// The identity preamble a raw (non-multiplexed) client connection must
/// write after connecting — exposed for transport-level benchmarks that
/// drive thousands of connections without building endpoints.
pub fn client_preamble(client: ClientId) -> [u8; PREAMBLE_LEN] {
    encode_preamble(Identity::Node(NodeId::Client(client)), false)
}

/// Where a peer lives, plus whether frames to it travel multiplexed (the
/// peer is a hub-attached logical client reachable via the hub's listener).
#[derive(Debug, Clone, Copy)]
struct Remote {
    addr: SocketAddr,
    mux: bool,
}

/// One queued outbound frame: an optional logical-client tag and the
/// shared encoded frame.
#[derive(Debug)]
struct SendItem {
    tag: Option<[u8; 8]>,
    frame: Frame,
}

impl SendItem {
    fn len(&self) -> usize {
        self.tag.map_or(0, |t| t.len()) + self.frame.len()
    }
}

/// The mutable half of an outbound connection, shared between sender
/// threads (zero-hop direct writes) and the owning event loop (dial,
/// redial, `EPOLLOUT` drains). All socket writes happen under this lock, so
/// frames of concurrent senders never interleave mid-frame and FIFO holds.
#[derive(Debug, Default)]
struct OutState {
    /// The established connection (nonblocking), if any.
    stream: Option<TcpStream>,
    /// Frames awaiting the socket, oldest first.
    queue: VecDeque<SendItem>,
    /// Bytes of `queue[0]` (tag included) already accepted by the socket —
    /// nonzero exactly while a partial write is outstanding.
    head_written: usize,
    /// Whether `EPOLLOUT` is armed for this connection.
    interest_out: bool,
    /// Whether a dial (or scheduled redial) is in flight on the loop.
    connecting: bool,
    /// Poller token of the current registration.
    token: u64,
    /// Next redial delay.
    backoff: Duration,
}

/// One outbound connection (keyed by destination *address*, so every
/// logical client behind a hub shares the replica's single socket).
#[derive(Debug)]
struct Outbound {
    identity: Identity,
    addr: SocketAddr,
    /// Frames on this connection carry logical-client tags.
    mux: bool,
    /// The event loop that owns dialing and drain-on-writable.
    event_loop: Arc<LoopHandle>,
    state: Mutex<OutState>,
}

enum DrainOutcome {
    /// Queue empty; `EPOLLOUT` can be disarmed.
    Drained,
    /// Socket full; remainder stays queued, `EPOLLOUT` must be armed.
    Blocked,
    /// Connection dead; caller tears down and redials.
    Failed,
}

/// Writes as much of the queue as the socket accepts, gathering up to
/// [`MAX_SLICES`] frames per `writev`. Must be called with the state lock
/// held and `state.stream` present. `direct` marks writes issued from the
/// sending thread (for [`TransportStats::direct_writes`]).
fn drain_locked(state: &mut OutState, stats: &TransportStats, direct: bool) -> DrainOutcome {
    loop {
        if state.queue.is_empty() {
            return DrainOutcome::Drained;
        }
        let mut slices: Vec<IoSlice<'_>> =
            Vec::with_capacity((2 * state.queue.len()).min(2 * MAX_SLICES));
        let mut offered = 0usize;
        let mut skip = state.head_written;
        for item in state.queue.iter() {
            if slices.len() + 2 > 2 * MAX_SLICES || offered >= MAX_BURST {
                break;
            }
            if let Some(tag) = item.tag.as_ref() {
                if skip < tag.len() {
                    slices.push(IoSlice::new(&tag[skip..]));
                    offered += tag.len() - skip;
                    skip = 0;
                } else {
                    skip -= tag.len();
                }
            }
            let frame = item.frame.bytes();
            if skip < frame.len() {
                slices.push(IoSlice::new(&frame[skip..]));
                offered += frame.len() - skip;
                skip = 0;
            } else {
                skip -= frame.len();
            }
        }
        let slice_count = slices.len();
        let result = {
            let mut stream: &TcpStream = state.stream.as_ref().expect("stream present");
            stream.write_vectored(&slices)
        };
        drop(slices);
        match result {
            Ok(0) => return DrainOutcome::Failed,
            Ok(n) => {
                stats.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                stats.write_syscalls.fetch_add(1, Ordering::Relaxed);
                if slice_count > 1 {
                    stats.vectored_writes.fetch_add(1, Ordering::Relaxed);
                }
                let partial = n < offered;
                if partial {
                    stats.partial_writes.fetch_add(1, Ordering::Relaxed);
                }
                let mut written = state.head_written + n;
                let mut completed = 0u64;
                while let Some(item) = state.queue.front() {
                    let item_len = item.len();
                    if written < item_len {
                        break;
                    }
                    written -= item_len;
                    state.queue.pop_front();
                    completed += 1;
                }
                state.head_written = written;
                stats.messages_sent.fetch_add(completed, Ordering::Relaxed);
                stats
                    .frames_coalesced
                    .fetch_add(completed.saturating_sub(1), Ordering::Relaxed);
                if direct {
                    stats.direct_writes.fetch_add(completed, Ordering::Relaxed);
                }
                if partial {
                    return DrainOutcome::Blocked;
                }
                // Full burst accepted; keep going if frames remain.
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return DrainOutcome::Blocked,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return DrainOutcome::Failed,
        }
    }
}

/// Commands other threads hand to an event loop (senders queue a dial, the
/// mesh registers listeners, accepting loops distribute fresh connections).
enum Command {
    AddListener { owner: Owner, listener: TcpListener },
    AddInbound { owner: Owner, stream: TcpStream },
    Dial(Arc<Outbound>),
    StopNode(NodeId),
}

/// The shareable face of one event loop: its poller (thread-safe to arm
/// interest on and to wake) plus the command queue.
#[derive(Debug)]
struct LoopHandle {
    poller: Poller,
    commands: Mutex<Vec<Command>>,
}

impl std::fmt::Debug for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Command::AddListener { owner, .. } => write!(f, "AddListener({owner:?})"),
            Command::AddInbound { owner, .. } => write!(f, "AddInbound({owner:?})"),
            Command::Dial(out) => write!(f, "Dial({:?})", out.addr),
            Command::StopNode(node) => write!(f, "StopNode({node})"),
        }
    }
}

impl LoopHandle {
    fn push(&self, command: Command) {
        self.commands.lock().expect("command lock").push(command);
        self.poller.wake();
    }

    fn take(&self) -> Vec<Command> {
        std::mem::take(&mut *self.commands.lock().expect("command lock"))
    }
}

/// State shared by every handle, endpoint, hub port and loop of one mesh.
#[derive(Debug)]
struct ReactorShared {
    addresses: HashMap<NodeId, Remote>,
    stats: Arc<TransportStats>,
    shutdown: AtomicBool,
    loops: Vec<Arc<LoopHandle>>,
    next_loop: AtomicUsize,
    next_token: AtomicU64,
    /// Per-node delivery queues; replaceable so a flapped endpoint can be
    /// restarted (fault-injection tests).
    incoming: Mutex<HashMap<NodeId, Sender<(NodeId, Message)>>>,
    /// Per-logical-client delivery queues behind the hub.
    hub_incoming: Mutex<HashMap<u64, Sender<(NodeId, Message)>>>,
    /// Currently open inbound connections, mesh-wide.
    inbound_live: AtomicU64,
    /// Inbound connections ever accepted, mesh-wide.
    accepted_total: AtomicU64,
}

impl ReactorShared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn next_token(&self) -> u64 {
        self.next_token.fetch_add(1, Ordering::Relaxed)
    }

    fn pick_loop(&self) -> Arc<LoopHandle> {
        let i = self.next_loop.fetch_add(1, Ordering::Relaxed) % self.loops.len();
        Arc::clone(&self.loops[i])
    }

    fn lookup_incoming(&self, node: NodeId) -> Option<Sender<(NodeId, Message)>> {
        self.incoming
            .lock()
            .expect("incoming lock")
            .get(&node)
            .cloned()
    }

    fn lookup_hub(&self, client: u64) -> Option<Sender<(NodeId, Message)>> {
        self.hub_incoming
            .lock()
            .expect("hub incoming lock")
            .get(&client)
            .cloned()
    }
}

/// A full mesh of reactor-driven endpoints on loopback, optionally with a
/// [`ClientHub`] multiplexing logical clients over shared sockets.
///
/// Like [`TcpMesh`](crate::tcp::TcpMesh): every address is bound up front,
/// endpoints are handed out once via [`take_endpoint`](Self::take_endpoint),
/// and dropping the mesh (or calling [`shutdown`](Self::shutdown)) stops
/// the event-loop pool.
#[derive(Debug)]
pub struct ReactorMesh {
    shared: Arc<ReactorShared>,
    endpoints: Mutex<HashMap<NodeId, ReactorEndpoint>>,
    hub: Option<Arc<ClientHub>>,
}

impl ReactorMesh {
    /// Binds a loopback listener per node and starts the event-loop pool.
    pub fn new(nodes: &[NodeId]) -> io::Result<ReactorMesh> {
        ReactorMesh::build(nodes, &[])
    }

    /// Like [`new`](Self::new), but additionally creates a [`ClientHub`]:
    /// `hub_clients` get no listeners or endpoints of their own — they are
    /// logical clients reachable *through the hub*, and any node sending to
    /// one of them multiplexes the frame (tagged with the client id) over a
    /// single shared connection to the hub's listener. Drive them with
    /// [`hub_port`](Self::hub_port).
    pub fn with_hub(nodes: &[NodeId], hub_clients: &[ClientId]) -> io::Result<ReactorMesh> {
        ReactorMesh::build(nodes, hub_clients)
    }

    fn build(nodes: &[NodeId], hub_clients: &[ClientId]) -> io::Result<ReactorMesh> {
        let mut listeners = Vec::with_capacity(nodes.len());
        let mut addresses = HashMap::with_capacity(nodes.len() + hub_clients.len());
        for &node in nodes {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addresses.insert(
                node,
                Remote {
                    addr: listener.local_addr()?,
                    mux: false,
                },
            );
            listeners.push((Owner::Node(node), listener));
        }
        let hub_listener = if hub_clients.is_empty() {
            None
        } else {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            for &client in hub_clients {
                addresses.insert(NodeId::Client(client), Remote { addr, mux: true });
            }
            Some(listener)
        };

        let loop_count = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 4);
        let mut loops = Vec::with_capacity(loop_count);
        for _ in 0..loop_count {
            loops.push(Arc::new(LoopHandle {
                poller: Poller::new()?,
                commands: Mutex::new(Vec::new()),
            }));
        }
        let shared = Arc::new(ReactorShared {
            addresses,
            stats: Arc::new(TransportStats::default()),
            shutdown: AtomicBool::new(false),
            loops,
            next_loop: AtomicUsize::new(0),
            next_token: AtomicU64::new(0),
            incoming: Mutex::new(HashMap::new()),
            hub_incoming: Mutex::new(HashMap::new()),
            inbound_live: AtomicU64::new(0),
            accepted_total: AtomicU64::new(0),
        });
        for (index, handle) in shared.loops.iter().enumerate() {
            let shared = Arc::clone(&shared);
            let handle = Arc::clone(handle);
            std::thread::Builder::new()
                .name(format!("reactor-{index}"))
                .spawn(move || event_loop(shared, handle))?;
        }

        let mut endpoints = HashMap::with_capacity(nodes.len());
        for (owner, listener) in listeners {
            let Owner::Node(node) = owner else {
                unreachable!()
            };
            endpoints.insert(node, attach_endpoint(&shared, node, listener));
        }
        let hub = hub_listener.map(|listener| {
            shared.pick_loop().push(Command::AddListener {
                owner: Owner::Hub,
                listener,
            });
            Arc::new(ClientHub {
                shared: Arc::clone(&shared),
                writers: Mutex::new(HashMap::new()),
            })
        });
        Ok(ReactorMesh {
            shared,
            endpoints: Mutex::new(endpoints),
            hub,
        })
    }

    /// Hands the endpoint of `node` to its owner. Each endpoint can be
    /// taken once.
    pub fn take_endpoint(&self, node: NodeId) -> Option<ReactorEndpoint> {
        self.endpoints.lock().expect("mesh lock").remove(&node)
    }

    /// A port speaking as logical client `client` through the hub. The
    /// client must have been listed in [`with_hub`](Self::with_hub).
    pub fn hub_port(&self, client: ClientId) -> Option<HubPort> {
        let hub = self.hub.as_ref()?;
        if !matches!(
            self.shared.addresses.get(&NodeId::Client(client)),
            Some(Remote { mux: true, .. })
        ) {
            return None;
        }
        let (tx, rx) = unbounded();
        self.shared
            .hub_incoming
            .lock()
            .expect("hub incoming lock")
            .insert(client.0, tx);
        Some(HubPort {
            hub: Arc::clone(hub),
            client,
            incoming: rx,
        })
    }

    /// The loopback address `node` listens on (or, for hub clients, the
    /// hub's shared listener). Exposed for transport-level benchmarks.
    pub fn address(&self, node: NodeId) -> Option<SocketAddr> {
        self.shared.addresses.get(&node).map(|r| r.addr)
    }

    /// Mesh-wide traffic counters.
    pub fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.shared.stats)
    }

    /// `(live, total)` inbound connections across the mesh — the numbers
    /// the connections-vs-throughput benchmark asserts its floor on.
    pub fn connections(&self) -> (u64, u64) {
        (
            self.shared.inbound_live.load(Ordering::Relaxed),
            self.shared.accepted_total.load(Ordering::Relaxed),
        )
    }

    /// Tears down `node`'s listener and every established inbound
    /// connection to it, without forgetting its address: peers keep
    /// queueing and redialing with backoff until
    /// [`start_endpoint`](Self::start_endpoint) brings the node back.
    /// The flap primitive for fault-injection tests.
    pub fn stop_endpoint(&self, node: NodeId) {
        self.shared
            .incoming
            .lock()
            .expect("incoming lock")
            .remove(&node);
        for handle in &self.shared.loops {
            handle.push(Command::StopNode(node));
        }
    }

    /// (Re)starts `node`'s endpoint on an explicitly bound listener —
    /// after a [`stop_endpoint`](Self::stop_endpoint), rebind the node's
    /// original address (see [`address`](Self::address)) and hand the
    /// listener here. The node must be part of the mesh's address book.
    pub fn start_endpoint(
        &self,
        node: NodeId,
        listener: TcpListener,
    ) -> io::Result<ReactorEndpoint> {
        if !self.shared.addresses.contains_key(&node) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{node} is not in the mesh address book"),
            ));
        }
        Ok(attach_endpoint(&self.shared, node, listener))
    }

    /// Stops the event-loop pool and closes every connection. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        for handle in &self.shared.loops {
            handle.poller.wake();
        }
    }
}

impl Drop for ReactorMesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Registers `node`'s delivery queue and listener, returning its endpoint.
fn attach_endpoint(
    shared: &Arc<ReactorShared>,
    node: NodeId,
    listener: TcpListener,
) -> ReactorEndpoint {
    let (tx, rx) = unbounded();
    shared
        .incoming
        .lock()
        .expect("incoming lock")
        .insert(node, tx);
    shared.pick_loop().push(Command::AddListener {
        owner: Owner::Node(node),
        listener,
    });
    ReactorEndpoint {
        handle: ReactorHandle {
            local: node,
            shared: Arc::clone(shared),
            writers: Arc::new(Mutex::new(HashMap::new())),
        },
        incoming: rx,
    }
}

/// One node's attachment to a [`ReactorMesh`]: a cloneable sending
/// [`ReactorHandle`] plus the queue of decoded inbound messages. The
/// reactor twin of [`TcpEndpoint`](crate::tcp::TcpEndpoint).
#[derive(Debug)]
pub struct ReactorEndpoint {
    handle: ReactorHandle,
    incoming: Receiver<(NodeId, Message)>,
}

impl ReactorEndpoint {
    /// A cloneable sending handle (usable from any thread).
    pub fn handle(&self) -> ReactorHandle {
        self.handle.clone()
    }

    /// The queue of decoded inbound messages, tagged with their sender.
    pub fn incoming(&self) -> &Receiver<(NodeId, Message)> {
        &self.incoming
    }
}

impl Transport for ReactorEndpoint {
    fn local(&self) -> NodeId {
        self.handle.local
    }

    fn send(&self, to: NodeId, message: &Message) -> Result<(), TransportError> {
        self.handle.send(to, message)
    }

    fn broadcast(&self, to: &[NodeId], message: &Message) -> Result<(), TransportError> {
        self.handle.broadcast(to, message)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, Message), RecvTimeoutError> {
        self.incoming.recv_timeout(timeout)
    }

    fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.handle.shared.stats)
    }
}

/// The sending half of a [`ReactorEndpoint`]; cheap to clone and share.
#[derive(Debug, Clone)]
pub struct ReactorHandle {
    local: NodeId,
    shared: Arc<ReactorShared>,
    /// Outbound connections keyed by destination *address* — every hub
    /// client behind one hub shares one connection.
    writers: Arc<Mutex<HashMap<SocketAddr, Arc<Outbound>>>>,
}

impl ReactorHandle {
    /// The node this handle sends as.
    pub fn local(&self) -> NodeId {
        self.local
    }

    /// Encodes `message` (through the thread's reusable scratch) and queues
    /// it for `to`, dialing lazily — semantics identical to
    /// [`TcpHandle::send`](crate::tcp::TcpHandle::send).
    pub fn send(&self, to: NodeId, message: &Message) -> Result<(), TransportError> {
        self.send_frame(to, encode_frame(message))
    }

    /// Encode-once broadcast: one serialization shared by every peer (see
    /// [`Transport::broadcast`]).
    pub fn broadcast(&self, to: &[NodeId], message: &Message) -> Result<(), TransportError> {
        let Some((&last, rest)) = to.split_last() else {
            return Ok(());
        };
        let frame = encode_frame(message);
        self.shared
            .stats
            .encodes_saved
            .fetch_add(rest.len() as u64, Ordering::Relaxed);
        let mut first_error = None;
        for &peer in rest {
            if let Err(error) = self.send_frame(peer, frame.clone()) {
                first_error.get_or_insert(error);
            }
        }
        if let Err(error) = self.send_frame(last, frame) {
            first_error.get_or_insert(error);
        }
        match first_error {
            None => Ok(()),
            Some(error) => Err(error),
        }
    }

    /// Queues (or directly writes) an already-encoded frame for `to` — the
    /// encode-once fan-out primitive.
    pub fn send_frame(&self, to: NodeId, frame: Frame) -> Result<(), TransportError> {
        if self.shared.is_shutdown() {
            return Err(TransportError::Closed);
        }
        let remote = *self
            .shared
            .addresses
            .get(&to)
            .ok_or(TransportError::UnknownPeer(to))?;
        let tag = if remote.mux {
            match to {
                NodeId::Client(ClientId(c)) => Some(c.to_le_bytes()),
                _ => return Err(TransportError::UnknownPeer(to)),
            }
        } else {
            None
        };
        let outbound = {
            let mut writers = self.writers.lock().expect("writer map lock");
            Arc::clone(writers.entry(remote.addr).or_insert_with(|| {
                Arc::new(Outbound {
                    identity: Identity::Node(self.local),
                    addr: remote.addr,
                    mux: remote.mux,
                    event_loop: self.shared.pick_loop(),
                    state: Mutex::new(OutState {
                        backoff: INITIAL_BACKOFF,
                        ..OutState::default()
                    }),
                })
            }))
        };
        send_item(&self.shared, &outbound, SendItem { tag, frame });
        Ok(())
    }
}

/// Enqueues one frame on `outbound`, taking the zero-hop direct-write path
/// when the connection is up and idle, arming `EPOLLOUT` on a partial
/// write, and scheduling a (re)dial on the owning loop when the connection
/// is down or just died.
fn send_item(shared: &ReactorShared, outbound: &Arc<Outbound>, item: SendItem) {
    let mut state = outbound.state.lock().expect("outbound lock");
    let idle = state.stream.is_some() && state.queue.is_empty() && !state.interest_out;
    state.queue.push_back(item);
    if idle {
        match drain_locked(&mut state, &shared.stats, true) {
            DrainOutcome::Drained => {}
            DrainOutcome::Blocked => arm_writable(outbound, &mut state),
            DrainOutcome::Failed => {
                // Connection died under us: close it, retransmit the whole
                // head frame after the loop redials (duplication of
                // partially delivered bytes is tolerated by the cores).
                state.stream = None;
                state.head_written = 0;
                state.interest_out = false;
                state.connecting = true;
                outbound
                    .event_loop
                    .push(Command::Dial(Arc::clone(outbound)));
            }
        }
    } else if state.stream.is_none() && !state.connecting {
        state.connecting = true;
        outbound
            .event_loop
            .push(Command::Dial(Arc::clone(outbound)));
    }
    // Otherwise: a dial is in flight or EPOLLOUT is armed — the loop will
    // pick the frame up in FIFO position.
}

/// Arms `EPOLLOUT` for an established connection (state lock held).
/// `epoll_ctl` is thread-safe against a concurrent `epoll_wait`, so sender
/// threads arm interest directly without waking the loop.
fn arm_writable(outbound: &Outbound, state: &mut OutState) {
    if state.interest_out {
        return;
    }
    if let Some(stream) = state.stream.as_ref() {
        if outbound
            .event_loop
            .poller
            .modify(stream.as_raw_fd(), state.token, Interest::READ_WRITE)
            .is_ok()
        {
            state.interest_out = true;
        }
    }
}

/// Encodes through the thread-local scratch (shared with the tcp module's
/// discipline: one `Arc` allocation per message).
fn encode_frame(message: &Message) -> Frame {
    ENCODE_SCRATCH.with(|scratch| Frame::encode_with(&mut scratch.borrow_mut(), message))
}

/// The shared state behind every [`HubPort`] of a mesh: one writers map, so
/// all logical clients multiplex over the same physical connections.
#[derive(Debug)]
pub struct ClientHub {
    shared: Arc<ReactorShared>,
    writers: Mutex<HashMap<SocketAddr, Arc<Outbound>>>,
}

impl ClientHub {
    fn send_frame(&self, client: ClientId, to: NodeId, frame: Frame) -> Result<(), TransportError> {
        if self.shared.is_shutdown() {
            return Err(TransportError::Closed);
        }
        let remote = *self
            .shared
            .addresses
            .get(&to)
            .ok_or(TransportError::UnknownPeer(to))?;
        let outbound = {
            let mut writers = self.writers.lock().expect("hub writer lock");
            Arc::clone(writers.entry(remote.addr).or_insert_with(|| {
                Arc::new(Outbound {
                    identity: Identity::Hub,
                    addr: remote.addr,
                    mux: true,
                    event_loop: self.shared.pick_loop(),
                    state: Mutex::new(OutState {
                        backoff: INITIAL_BACKOFF,
                        ..OutState::default()
                    }),
                })
            }))
        };
        send_item(
            &self.shared,
            &outbound,
            SendItem {
                tag: Some(client.0.to_le_bytes()),
                frame,
            },
        );
        Ok(())
    }
}

/// One logical client multiplexed through a [`ClientHub`]: sends carry the
/// client's tag over the hub's shared per-replica connections, and replies
/// arrive demultiplexed on this port's own queue. Implements [`Transport`],
/// so the closed-loop client driver cannot tell it from a private endpoint
/// — except that a thousand ports cost sockets proportional to the replica
/// count, not a thousand listeners and meshes of connections.
#[derive(Debug)]
pub struct HubPort {
    hub: Arc<ClientHub>,
    client: ClientId,
    incoming: Receiver<(NodeId, Message)>,
}

impl HubPort {
    /// The logical client this port speaks as.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// The queue of decoded replies addressed to this client.
    pub fn incoming(&self) -> &Receiver<(NodeId, Message)> {
        &self.incoming
    }
}

impl Transport for HubPort {
    fn local(&self) -> NodeId {
        NodeId::Client(self.client)
    }

    fn send(&self, to: NodeId, message: &Message) -> Result<(), TransportError> {
        self.hub.send_frame(self.client, to, encode_frame(message))
    }

    fn broadcast(&self, to: &[NodeId], message: &Message) -> Result<(), TransportError> {
        let Some((&last, rest)) = to.split_last() else {
            return Ok(());
        };
        let frame = encode_frame(message);
        self.hub
            .shared
            .stats
            .encodes_saved
            .fetch_add(rest.len() as u64, Ordering::Relaxed);
        let mut first_error = None;
        for &peer in rest {
            if let Err(error) = self.hub.send_frame(self.client, peer, frame.clone()) {
                first_error.get_or_insert(error);
            }
        }
        if let Err(error) = self.hub.send_frame(self.client, last, frame) {
            first_error.get_or_insert(error);
        }
        match first_error {
            None => Ok(()),
            Some(error) => Err(error),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, Message), RecvTimeoutError> {
        self.incoming.recv_timeout(timeout)
    }

    fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.hub.shared.stats)
    }
}

// ---------------------------------------------------------------------------
// The event loop.

/// One inbound connection: nonblocking stream, reassembly buffer, decoded
/// peer identity, and cached routes to the delivery queues.
struct InboundConn {
    stream: TcpStream,
    owner: Owner,
    peer: Option<(InboundIdentity, bool)>,
    buf: StreamBuf,
    /// Cached delivery queue for non-hub routing (invalidated on failure so
    /// a restarted endpoint is picked up).
    route: Option<Sender<(NodeId, Message)>>,
    /// Cached per-logical-client queues for hub routing.
    hub_routes: HashMap<u64, Sender<(NodeId, Message)>>,
}

/// What one poller token points at.
enum Entry {
    Listener { owner: Owner, listener: TcpListener },
    Inbound(InboundConn),
    Out(Arc<Outbound>),
}

/// A loop's private state (registry, redial deadlines, read scratch).
struct LoopState {
    registry: HashMap<u64, Entry>,
    redials: Vec<(Instant, Arc<Outbound>)>,
    scratch: Vec<u8>,
}

fn event_loop(shared: Arc<ReactorShared>, handle: Arc<LoopHandle>) {
    let mut state = LoopState {
        registry: HashMap::new(),
        redials: Vec::new(),
        scratch: vec![0u8; READ_CHUNK],
    };
    let mut events: Vec<Event> = Vec::new();
    while !shared.is_shutdown() {
        for command in handle.take() {
            match command {
                Command::AddListener { owner, listener } => {
                    if listener.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = shared.next_token();
                    if handle
                        .poller
                        .add(listener.as_raw_fd(), token, Interest::READ)
                        .is_ok()
                    {
                        state
                            .registry
                            .insert(token, Entry::Listener { owner, listener });
                    }
                }
                Command::AddInbound { owner, stream } => {
                    let token = shared.next_token();
                    if handle
                        .poller
                        .add(stream.as_raw_fd(), token, Interest::READ)
                        .is_ok()
                    {
                        shared.inbound_live.fetch_add(1, Ordering::Relaxed);
                        state.registry.insert(
                            token,
                            Entry::Inbound(InboundConn {
                                stream,
                                owner,
                                peer: None,
                                buf: StreamBuf::new(),
                                route: None,
                                hub_routes: HashMap::new(),
                            }),
                        );
                    }
                }
                Command::Dial(outbound) => attempt_dial(&shared, &handle, &mut state, outbound),
                Command::StopNode(node) => {
                    // Drop the node's listener and every inbound connection
                    // to it: new dials are refused, established peers see a
                    // reset and fall back to queue + redial.
                    let dead: Vec<u64> = state
                        .registry
                        .iter()
                        .filter_map(|(&token, entry)| match entry {
                            Entry::Listener { owner, .. }
                            | Entry::Inbound(InboundConn { owner, .. })
                                if *owner == Owner::Node(node) =>
                            {
                                Some(token)
                            }
                            _ => None,
                        })
                        .collect();
                    for token in dead {
                        if let Some(Entry::Inbound(_)) = state.registry.remove(&token) {
                            shared.inbound_live.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        // Fire due redials; fold the next deadline into the wait timeout.
        let now = Instant::now();
        let mut i = 0;
        while i < state.redials.len() {
            if state.redials[i].0 <= now {
                let (_, outbound) = state.redials.swap_remove(i);
                attempt_dial(&shared, &handle, &mut state, outbound);
            } else {
                i += 1;
            }
        }
        let timeout = state
            .redials
            .iter()
            .map(|(deadline, _)| deadline.saturating_duration_since(now))
            .min()
            .unwrap_or(TICK)
            .min(TICK);
        if handle.poller.wait(&mut events, Some(timeout)).is_err() {
            // A failing poller would spin this loop; bail out and let the
            // mesh's shutdown path report the breakage via timeouts.
            return;
        }
        for &event in &events {
            handle_event(&shared, &mut state, event);
        }
    }
}

fn handle_event(shared: &Arc<ReactorShared>, state: &mut LoopState, event: Event) {
    // The entry is temporarily removed so handlers can borrow the rest of
    // the loop state; it is reinserted unless the connection died.
    let Some(entry) = state.registry.remove(&event.token) else {
        return; // stale token (connection torn down since the wait)
    };
    match entry {
        Entry::Listener { owner, listener } => {
            for _ in 0..MAX_ACCEPTS_PER_EVENT {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nodelay(true);
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        shared.accepted_total.fetch_add(1, Ordering::Relaxed);
                        // Distribute connections round-robin across the
                        // pool; registration happens on the target loop.
                        shared
                            .pick_loop()
                            .push(Command::AddInbound { owner, stream });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    // Transient accept failures (ECONNABORTED, EMFILE) must
                    // not kill the listener; level-triggered readiness will
                    // re-fire if connections remain.
                    Err(_) => break,
                }
            }
            state
                .registry
                .insert(event.token, Entry::Listener { owner, listener });
        }
        Entry::Inbound(mut conn) => {
            if read_inbound(shared, &mut conn, &mut state.scratch) {
                state.registry.insert(event.token, Entry::Inbound(conn));
            } else {
                shared.inbound_live.fetch_sub(1, Ordering::Relaxed);
            }
        }
        Entry::Out(outbound) => {
            if handle_out_event(shared, state, &outbound, event) {
                state.registry.insert(event.token, Entry::Out(outbound));
            }
        }
    }
}

/// Drains readable bytes (bounded per event; level-triggered readiness
/// resumes the rest), parses frames, and routes them. Returns `false` when
/// the connection is finished.
fn read_inbound(shared: &ReactorShared, conn: &mut InboundConn, scratch: &mut [u8]) -> bool {
    for _ in 0..MAX_READS_PER_EVENT {
        let result = {
            let mut stream: &TcpStream = &conn.stream;
            stream.read(scratch)
        };
        match result {
            Ok(0) => return false, // peer closed; buffered partials die with it
            Ok(n) => {
                shared
                    .stats
                    .bytes_read
                    .fetch_add(n as u64, Ordering::Relaxed);
                conn.buf.push(&scratch[..n]);
                if !parse_frames(shared, conn) {
                    return false;
                }
                if n < scratch.len() {
                    return true; // socket drained
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    true // budget spent; readiness stays level-set, the loop will be back
}

/// Decodes every complete frame buffered on `conn` and routes it. Returns
/// `false` on a poisoned stream (bad preamble, bad frame, bogus layering).
fn parse_frames(shared: &ReactorShared, conn: &mut InboundConn) -> bool {
    loop {
        if conn.peer.is_none() {
            if conn.buf.buffered() < PREAMBLE_LEN {
                return true;
            }
            let mut preamble = [0u8; PREAMBLE_LEN];
            preamble.copy_from_slice(&conn.buf.bytes()[..PREAMBLE_LEN]);
            let Some(peer) = decode_preamble(&preamble) else {
                return false; // not one of ours
            };
            conn.buf.consume(PREAMBLE_LEN);
            conn.peer = Some(peer);
        }
        let (identity, mux) = conn.peer.expect("peer decoded above");
        let bytes = conn.buf.bytes();
        let tag_len = if mux { 8 } else { 0 };
        if bytes.len() < tag_len {
            return true;
        }
        let frame_total = match frame_len(&bytes[tag_len..]) {
            Ok(Some(len)) => len,
            Ok(None) => return true,
            Err(_) => return false,
        };
        if bytes.len() < tag_len + frame_total {
            return true;
        }
        let tag = mux.then(|| u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")));
        let message = match seemore_wire::codec::decode(&bytes[tag_len..tag_len + frame_total]) {
            Ok(message) => message,
            Err(_) => return false,
        };
        conn.buf.consume(tag_len + frame_total);
        shared
            .stats
            .messages_received
            .fetch_add(1, Ordering::Relaxed);
        shared
            .stats
            .bytes_received
            .fetch_add(frame_total as u64, Ordering::Relaxed);
        if !route_message(shared, conn, identity, tag, message) {
            return false;
        }
    }
}

/// Delivers one decoded message to its queue. Unroutable *layering* (a
/// muxed frame on a plain connection, a hub frame at a non-hub listener)
/// poisons the connection; a missing queue (endpoint flapped, port not yet
/// opened) just drops the frame — the network is allowed to lose messages.
fn route_message(
    shared: &ReactorShared,
    conn: &mut InboundConn,
    identity: InboundIdentity,
    tag: Option<u64>,
    message: Message,
) -> bool {
    match (conn.owner, identity, tag) {
        // Plain connection to a node: the preamble identity is the sender.
        (Owner::Node(node), InboundIdentity::Node(sender), None) => {
            deliver_node(shared, conn, node, sender, message);
        }
        // Hub-to-replica connection: each frame names its source client.
        (Owner::Node(node), InboundIdentity::Hub, Some(client)) => {
            deliver_node(
                shared,
                conn,
                node,
                NodeId::Client(ClientId(client)),
                message,
            );
        }
        // Replica-to-hub connection: each frame names its destination
        // client; the sender is the replica from the preamble.
        (Owner::Hub, InboundIdentity::Node(sender @ NodeId::Replica(_)), Some(client)) => {
            let cached = conn.hub_routes.get(&client);
            let queue = match cached {
                Some(queue) => Some(queue.clone()),
                None => {
                    let fresh = shared.lookup_hub(client);
                    if let Some(queue) = fresh.as_ref() {
                        conn.hub_routes.insert(client, queue.clone());
                    }
                    fresh
                }
            };
            if let Some(queue) = queue {
                if queue.send((sender, message)).is_err() {
                    conn.hub_routes.remove(&client);
                }
            }
        }
        _ => return false,
    }
    true
}

/// Node-queue delivery with a one-slot route cache (re-resolved when the
/// endpoint behind it was replaced by a restart).
fn deliver_node(
    shared: &ReactorShared,
    conn: &mut InboundConn,
    node: NodeId,
    sender: NodeId,
    message: Message,
) {
    if let Some(queue) = conn.route.as_ref() {
        match queue.send((sender, message)) {
            Ok(()) => return,
            Err(failed) => {
                conn.route = None;
                if let Some(queue) = shared.lookup_incoming(node) {
                    if queue.send(failed.0).is_ok() {
                        conn.route = Some(queue);
                    }
                }
                return;
            }
        }
    }
    if let Some(queue) = shared.lookup_incoming(node) {
        if queue.send((sender, message)).is_ok() {
            conn.route = Some(queue);
        }
    }
}

/// Handles readiness on an outbound connection: readable means EOF/RST
/// (the connection is unidirectional — peers never send payload back),
/// writable resumes a blocked drain. Returns `false` when the registry
/// entry is dead (torn down or replaced by a redial).
fn handle_out_event(
    shared: &Arc<ReactorShared>,
    loop_state: &mut LoopState,
    outbound: &Arc<Outbound>,
    event: Event,
) -> bool {
    let mut state = outbound.state.lock().expect("outbound lock");
    if state.token != event.token || state.stream.is_none() {
        return false; // stale registration
    }
    if event.readable || event.hangup {
        let mut probe = [0u8; 64];
        let dead = loop {
            let result = {
                let mut stream: &TcpStream = state.stream.as_ref().expect("stream present");
                stream.read(&mut probe)
            };
            match result {
                Ok(0) => break true,
                Ok(_) => continue, // stray bytes on a one-way connection: discard
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break event.hangup,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break true,
            }
        };
        if dead {
            teardown_for_redial(&mut state, outbound, loop_state);
            return false;
        }
    }
    if event.writable && state.interest_out {
        match drain_locked(&mut state, &shared.stats, false) {
            DrainOutcome::Drained => {
                if let Some(stream) = state.stream.as_ref() {
                    let _ = outbound.event_loop.poller.modify(
                        stream.as_raw_fd(),
                        state.token,
                        Interest::READ,
                    );
                }
                state.interest_out = false;
            }
            DrainOutcome::Blocked => {}
            DrainOutcome::Failed => {
                teardown_for_redial(&mut state, outbound, loop_state);
                return false;
            }
        }
    }
    true
}

/// Closes a dead connection and, if frames are queued, schedules an
/// immediate redial (backoff applies to *failed* dials, not the first
/// attempt after a drop — mirroring the thread-per-peer writer).
fn teardown_for_redial(state: &mut OutState, outbound: &Arc<Outbound>, loop_state: &mut LoopState) {
    state.stream = None;
    state.head_written = 0;
    state.interest_out = false;
    if state.queue.is_empty() {
        state.connecting = false;
    } else {
        state.connecting = true;
        loop_state
            .redials
            .push((Instant::now(), Arc::clone(outbound)));
    }
}

/// Dials `outbound.addr` (bounded blocking connect — loopback), writes the
/// identity preamble, drains whatever queued up, and registers the socket.
/// On failure the redial is rescheduled with exponential backoff.
fn attempt_dial(
    shared: &Arc<ReactorShared>,
    handle: &Arc<LoopHandle>,
    loop_state: &mut LoopState,
    outbound: Arc<Outbound>,
) {
    if shared.is_shutdown() {
        return;
    }
    let old_token = {
        let state = outbound.state.lock().expect("outbound lock");
        if state.stream.is_some() {
            return; // already connected (redundant dial request)
        }
        state.token
    };
    // Connect without holding the state lock: senders keep queueing while
    // the (bounded, loopback) connect is in flight.
    let connected =
        TcpStream::connect_timeout(&outbound.addr, CONNECT_TIMEOUT).and_then(|mut stream| {
            let _ = stream.set_nodelay(true);
            stream.write_all(&encode_preamble(outbound.identity, outbound.mux))?;
            stream.set_nonblocking(true)?;
            Ok(stream)
        });
    match connected {
        Err(_) => {
            let mut state = outbound.state.lock().expect("outbound lock");
            let delay = state.backoff;
            state.backoff = (state.backoff * 2).min(MAX_BACKOFF);
            loop_state
                .redials
                .push((Instant::now() + delay, Arc::clone(&outbound)));
        }
        Ok(stream) => {
            shared.stats.reconnects.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .bytes_sent
                .fetch_add(PREAMBLE_LEN as u64, Ordering::Relaxed);
            shared.stats.write_syscalls.fetch_add(1, Ordering::Relaxed);
            let token = shared.next_token();
            let fd = stream.as_raw_fd();
            let mut state = outbound.state.lock().expect("outbound lock");
            state.stream = Some(stream);
            state.connecting = false;
            state.head_written = 0;
            state.backoff = INITIAL_BACKOFF;
            state.token = token;
            let interest = match drain_locked(&mut state, &shared.stats, false) {
                DrainOutcome::Drained => {
                    state.interest_out = false;
                    Interest::READ
                }
                DrainOutcome::Blocked => {
                    state.interest_out = true;
                    Interest::READ_WRITE
                }
                DrainOutcome::Failed => {
                    teardown_for_redial(&mut state, &outbound, loop_state);
                    return;
                }
            };
            if handle.poller.add(fd, token, interest).is_ok() {
                // Drop a stale registry entry from a previous registration of
                // *this* connection only — `old_token` may predate any
                // registration (freshly created outbounds default to 0) and
                // must not evict whatever else lives under that token.
                if matches!(
                    loop_state.registry.get(&old_token),
                    Some(Entry::Out(existing)) if Arc::ptr_eq(existing, &outbound)
                ) {
                    loop_state.registry.remove(&old_token);
                }
                loop_state
                    .registry
                    .insert(token, Entry::Out(Arc::clone(&outbound)));
            } else {
                teardown_for_redial(&mut state, &outbound, loop_state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seemore_types::SeqNum;
    use seemore_wire::StateRequest;

    fn replica(r: u32) -> NodeId {
        NodeId::Replica(ReplicaId(r))
    }

    fn state_request(seq: u64) -> Message {
        Message::StateRequest(StateRequest {
            from_seq: SeqNum(seq),
            replica: ReplicaId(0),
        })
    }

    #[test]
    fn messages_cross_the_reactor_mesh_fifo() {
        let mesh = ReactorMesh::new(&[replica(0), replica(1)]).unwrap();
        let a = mesh.take_endpoint(replica(0)).unwrap();
        let b = mesh.take_endpoint(replica(1)).unwrap();
        const FRAMES: u64 = 200;
        for seq in 0..FRAMES {
            a.send(replica(1), &state_request(seq)).unwrap();
        }
        for seq in 0..FRAMES {
            let (from, message) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(from, replica(0));
            assert_eq!(message, state_request(seq), "FIFO on one connection");
        }
        let stats = mesh.stats();
        assert_eq!(stats.messages_sent(), FRAMES);
        assert_eq!(stats.messages_received(), FRAMES);
        // Raw reads account for the frames plus the identity preamble.
        assert_eq!(stats.bytes_read(), stats.bytes_sent());
        assert_eq!(
            stats.bytes_received(),
            stats.bytes_sent() - PREAMBLE_LEN as u64
        );
        mesh.shutdown();
    }

    #[test]
    fn established_connections_take_the_direct_write_path() {
        let mesh = ReactorMesh::new(&[replica(0), replica(1)]).unwrap();
        let a = mesh.take_endpoint(replica(0)).unwrap();
        let b = mesh.take_endpoint(replica(1)).unwrap();
        // First send dials (the loop drains the queue); wait for delivery so
        // the connection is established and idle.
        a.send(replica(1), &state_request(0)).unwrap();
        b.recv_timeout(Duration::from_secs(5)).unwrap();
        for seq in 1..=50 {
            a.send(replica(1), &state_request(seq)).unwrap();
            b.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let stats = mesh.stats();
        assert!(
            stats.direct_writes() >= 40,
            "established idle connection should serve sends from the sending \
             thread (saw {} direct of {} sent)",
            stats.direct_writes(),
            stats.messages_sent()
        );
        mesh.shutdown();
    }

    #[test]
    fn broadcast_encodes_once_and_reaches_every_peer_in_order() {
        let all: Vec<NodeId> = (0..4).map(replica).collect();
        let mesh = ReactorMesh::new(&all).unwrap();
        let sender = mesh.take_endpoint(all[0]).unwrap();
        let peers: Vec<NodeId> = all[1..].to_vec();
        let receivers: Vec<ReactorEndpoint> = peers
            .iter()
            .map(|&node| mesh.take_endpoint(node).unwrap())
            .collect();
        const FRAMES: u64 = 20;
        for seq in 0..FRAMES {
            sender.broadcast(&peers, &state_request(seq)).unwrap();
        }
        for receiver in &receivers {
            for seq in 0..FRAMES {
                let (from, message) = receiver.recv_timeout(Duration::from_secs(5)).unwrap();
                assert_eq!(from, all[0]);
                assert_eq!(message, state_request(seq), "exactly once, FIFO");
            }
            assert!(
                receiver.recv_timeout(Duration::from_millis(50)).is_err(),
                "no duplicate deliveries"
            );
        }
        let stats = mesh.stats();
        assert_eq!(stats.encodes_saved(), FRAMES * (peers.len() as u64 - 1));
        assert_eq!(stats.messages_sent(), FRAMES * peers.len() as u64);
        mesh.shutdown();
        assert_eq!(sender.broadcast(&[], &state_request(0)), Ok(()));
    }

    #[test]
    fn unknown_peers_and_shutdown_are_reported() {
        let mesh = ReactorMesh::new(&[replica(0), replica(1)]).unwrap();
        let a = mesh.take_endpoint(replica(0)).unwrap();
        assert_eq!(
            a.send(replica(42), &state_request(0)),
            Err(TransportError::UnknownPeer(replica(42)))
        );
        mesh.shutdown();
        assert_eq!(
            a.send(replica(1), &state_request(0)),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn preamble_round_trips_identities_and_mux_flag() {
        for (identity, inbound) in [
            (
                Identity::Node(replica(3)),
                InboundIdentity::Node(replica(3)),
            ),
            (
                Identity::Node(NodeId::Client(ClientId(9))),
                InboundIdentity::Node(NodeId::Client(ClientId(9))),
            ),
            (Identity::Hub, InboundIdentity::Hub),
        ] {
            for mux in [false, true] {
                assert_eq!(
                    decode_preamble(&encode_preamble(identity, mux)),
                    Some((inbound, mux))
                );
            }
        }
        let mut garbage = encode_preamble(Identity::Hub, true);
        garbage[0] = b'!';
        assert_eq!(decode_preamble(&garbage), None);
    }

    /// Many logical clients, few sockets: three hub ports talk to one
    /// replica and the whole exchange rides on exactly two inbound
    /// connections (hub->replica and replica->hub), not six.
    #[test]
    fn hub_multiplexes_logical_clients_over_shared_connections() {
        let clients: Vec<ClientId> = (0..3).map(ClientId).collect();
        let mesh = ReactorMesh::with_hub(&[replica(0)], &clients).unwrap();
        let server = mesh.take_endpoint(replica(0)).unwrap();
        let ports: Vec<HubPort> = clients.iter().map(|&c| mesh.hub_port(c).unwrap()).collect();

        const PER_CLIENT: u64 = 10;
        for seq in 0..PER_CLIENT {
            for port in &ports {
                port.send(replica(0), &state_request(seq)).unwrap();
            }
        }
        // The replica sees every frame, attributed to the right logical
        // client, FIFO per client.
        let mut next: HashMap<NodeId, u64> = HashMap::new();
        for _ in 0..PER_CLIENT * ports.len() as u64 {
            let (from, message) = server.recv_timeout(Duration::from_secs(5)).unwrap();
            assert!(matches!(from, NodeId::Client(c) if clients.contains(&c)));
            let expected = next.entry(from).or_insert(0);
            assert_eq!(message, state_request(*expected), "FIFO per client");
            *expected += 1;
            // Echo a tagged reply back through the shared connection.
            server.send(from, &message).unwrap();
        }
        // Each port receives exactly its own replies.
        for port in &ports {
            for seq in 0..PER_CLIENT {
                let (from, message) = port.recv_timeout(Duration::from_secs(5)).unwrap();
                assert_eq!(from, replica(0));
                assert_eq!(message, state_request(seq), "demux FIFO per client");
            }
            assert!(
                port.recv_timeout(Duration::from_millis(50)).is_err(),
                "no cross-client leakage"
            );
        }
        let (live, total) = mesh.connections();
        assert_eq!(
            (live, total),
            (2, 2),
            "three logical clients must share one socket pair"
        );
        mesh.shutdown();
    }

    /// Satellite regression: the reconnect storm. A peer flaps repeatedly
    /// mid-broadcast; every frame sent while the peer was provably down is
    /// queued and must arrive exactly once, FIFO, after the peer returns —
    /// and the full received sequence (including frames that raced a dying
    /// connection, which TCP may silently eat) must be a duplicate-free
    /// subsequence of the send order.
    #[test]
    fn reconnect_storm_preserves_fifo_and_exactly_once_for_queued_frames() {
        let a = replica(0);
        let b = replica(1);
        let c = replica(2);
        let mesh = ReactorMesh::new(&[a, b, c]).unwrap();
        let sender = mesh.take_endpoint(a).unwrap();
        let live = mesh.take_endpoint(c).unwrap();
        let b_addr = mesh.address(b).unwrap();
        let mut b_endpoint = Some(mesh.take_endpoint(b).unwrap());

        const FLAPS: u64 = 4;
        const PER_FLAP: u64 = 8;
        let mut seq = 0u64;
        let mut received: Vec<u64> = Vec::new();
        let drain = |endpoint: &ReactorEndpoint, received: &mut Vec<u64>| {
            while let Ok((from, message)) = endpoint.recv_timeout(Duration::from_millis(200)) {
                assert_eq!(from, a);
                let Message::StateRequest(request) = message else {
                    panic!("unexpected message");
                };
                received.push(request.from_seq.0);
            }
        };

        for _ in 0..FLAPS {
            // Warm the connection so the flap kills something real.
            sender.broadcast(&[b, c], &state_request(seq)).unwrap();
            seq += 1;
            drain(b_endpoint.as_ref().unwrap(), &mut received);

            // Take b down: listener gone, established connections reset.
            mesh.stop_endpoint(b);
            drop(b_endpoint.take());
            // Probe until the sender's transport has *observed* the death
            // (a send fails or the loop reaps the reset connection). Frames
            // sent from here on are queued, not racing a dying socket.
            std::thread::sleep(Duration::from_millis(30));
            sender.broadcast(&[b, c], &state_request(seq)).unwrap();
            seq += 1;
            std::thread::sleep(Duration::from_millis(30));

            // The tracked batch: broadcast while b is provably down. These
            // must survive queued in the outbox, in order.
            let tracked: Vec<u64> = (0..PER_FLAP)
                .map(|_| {
                    let s = seq;
                    sender.broadcast(&[b, c], &state_request(s)).unwrap();
                    seq += 1;
                    s
                })
                .collect();
            // The live peer keeps receiving throughout the flap.
            let mut live_got = Vec::new();
            drain(&live, &mut live_got);

            // Bring b back on its reserved address; the redial backoff
            // reconnects and the queued batch arrives exactly once, FIFO.
            let listener = (0..100)
                .find_map(|_| {
                    TcpListener::bind(b_addr).ok().or_else(|| {
                        std::thread::sleep(Duration::from_millis(10));
                        None
                    })
                })
                .expect("rebind b's address");
            let endpoint = mesh.start_endpoint(b, listener).unwrap();
            let mut round: Vec<u64> = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(10);
            while round.iter().filter(|s| tracked.contains(s)).count() < tracked.len() {
                match endpoint.recv_timeout(Duration::from_millis(200)) {
                    Ok((from, Message::StateRequest(request))) => {
                        assert_eq!(from, a);
                        round.push(request.from_seq.0);
                    }
                    Ok(_) => panic!("unexpected message"),
                    Err(_) => assert!(
                        Instant::now() < deadline,
                        "tracked frames never arrived: got {round:?}, wanted {tracked:?}"
                    ),
                }
            }
            let tracked_received: Vec<u64> = round
                .iter()
                .copied()
                .filter(|s| tracked.contains(s))
                .collect();
            assert_eq!(
                tracked_received, tracked,
                "frames queued while the peer was down must arrive exactly once, in order"
            );
            received.extend(round);
            b_endpoint = Some(endpoint);
        }

        // Global properties across all flaps: no duplicates anywhere, and
        // the received order is a subsequence of the send order.
        let mut unique = received.clone();
        unique.sort_unstable();
        let before = unique.len();
        unique.dedup();
        assert_eq!(unique.len(), before, "duplicate delivery: {received:?}");
        assert!(
            received.windows(2).all(|w| w[0] < w[1]),
            "received order must be a subsequence of send order: {received:?}"
        );
        mesh.shutdown();
    }
}
