//! Link-level fault injection: message loss, duplication and partitions.
//!
//! The paper's model allows the network to drop, delay, corrupt, duplicate
//! or reorder messages (Section 3.1); safety must hold regardless. These
//! faults are injected at the link layer of the simulator so that every
//! protocol is exercised under the same adverse conditions.

use rand::Rng;
use seemore_types::{Duration, NodeId};
use std::collections::BTreeSet;

/// What the (faulty) link decided to do with a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDecision {
    /// Deliver `copies` copies (1 = normal, 2 = duplicated), each delayed by
    /// the attached extra delay on top of the latency model.
    Deliver {
        /// Number of copies to deliver.
        copies: u32,
        /// Extra delay added to every copy (models reordering).
        extra_delay: Duration,
    },
    /// Silently drop the message.
    Drop,
}

/// Probabilistic link faults plus explicit partitions.
#[derive(Debug, Clone, Default)]
pub struct LinkFaults {
    /// Probability that a message is dropped.
    pub drop_probability: f64,
    /// Probability that a message is duplicated.
    pub duplicate_probability: f64,
    /// Probability that a message is delayed by `reorder_delay` (which makes
    /// it overtake later messages, i.e. reordering).
    pub reorder_probability: f64,
    /// The extra delay applied to reordered messages.
    pub reorder_delay: Duration,
    /// Unidirectional blocked links (messages from `.0` to `.1` are dropped).
    partitions: BTreeSet<(NodeId, NodeId)>,
}

impl LinkFaults {
    /// A perfectly reliable network.
    pub fn none() -> Self {
        LinkFaults::default()
    }

    /// A lossy network with the given drop probability.
    pub fn lossy(drop_probability: f64) -> Self {
        LinkFaults {
            drop_probability,
            ..LinkFaults::default()
        }
    }

    /// A network that occasionally duplicates and reorders messages.
    pub fn chaotic(drop: f64, duplicate: f64, reorder: f64) -> Self {
        LinkFaults {
            drop_probability: drop,
            duplicate_probability: duplicate,
            reorder_probability: reorder,
            reorder_delay: Duration::from_millis(2),
            ..LinkFaults::default()
        }
    }

    /// Blocks the unidirectional link `from -> to`.
    pub fn partition_one_way(&mut self, from: NodeId, to: NodeId) {
        self.partitions.insert((from, to));
    }

    /// Blocks both directions between `a` and `b`.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitions.insert((a, b));
        self.partitions.insert((b, a));
    }

    /// Removes every partition involving `node`.
    pub fn heal_node(&mut self, node: NodeId) {
        self.partitions.retain(|(a, b)| *a != node && *b != node);
    }

    /// Removes all partitions.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
    }

    /// Whether the link `from -> to` is currently partitioned.
    pub fn is_partitioned(&self, from: NodeId, to: NodeId) -> bool {
        self.partitions.contains(&(from, to))
    }

    /// Decides the fate of one message on the link `from -> to`.
    pub fn decide<R: Rng + ?Sized>(&self, from: NodeId, to: NodeId, rng: &mut R) -> LinkDecision {
        if self.is_partitioned(from, to) {
            return LinkDecision::Drop;
        }
        if self.drop_probability > 0.0 && rng.gen_bool(self.drop_probability.clamp(0.0, 1.0)) {
            return LinkDecision::Drop;
        }
        let copies = if self.duplicate_probability > 0.0
            && rng.gen_bool(self.duplicate_probability.clamp(0.0, 1.0))
        {
            2
        } else {
            1
        };
        let extra_delay = if self.reorder_probability > 0.0
            && rng.gen_bool(self.reorder_probability.clamp(0.0, 1.0))
        {
            self.reorder_delay
        } else {
            Duration::ZERO
        };
        LinkDecision::Deliver {
            copies,
            extra_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use seemore_types::{ClientId, ReplicaId};

    fn node(r: u32) -> NodeId {
        NodeId::Replica(ReplicaId(r))
    }

    #[test]
    fn reliable_network_always_delivers_once() {
        let faults = LinkFaults::none();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(
                faults.decide(node(0), node(1), &mut rng),
                LinkDecision::Deliver {
                    copies: 1,
                    extra_delay: Duration::ZERO
                }
            );
        }
    }

    #[test]
    fn partitions_block_and_heal() {
        let mut faults = LinkFaults::none();
        let mut rng = SmallRng::seed_from_u64(2);
        faults.partition(node(0), node(1));
        assert!(faults.is_partitioned(node(0), node(1)));
        assert!(faults.is_partitioned(node(1), node(0)));
        assert_eq!(
            faults.decide(node(0), node(1), &mut rng),
            LinkDecision::Drop
        );
        assert!(!faults.is_partitioned(node(0), node(2)));

        faults.partition_one_way(node(2), node(3));
        assert!(faults.is_partitioned(node(2), node(3)));
        assert!(!faults.is_partitioned(node(3), node(2)));

        faults.heal_node(node(0));
        assert!(!faults.is_partitioned(node(0), node(1)));
        assert!(faults.is_partitioned(node(2), node(3)));
        faults.heal_all();
        assert!(!faults.is_partitioned(node(2), node(3)));
    }

    #[test]
    fn drop_probability_drops_roughly_the_right_fraction() {
        let faults = LinkFaults::lossy(0.3);
        let mut rng = SmallRng::seed_from_u64(3);
        let drops = (0..10_000)
            .filter(|_| faults.decide(node(0), node(1), &mut rng) == LinkDecision::Drop)
            .count();
        assert!((2_500..3_500).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn chaotic_network_duplicates_and_reorders() {
        let faults = LinkFaults::chaotic(0.0, 0.5, 0.5);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut dupes = 0;
        let mut reorders = 0;
        for _ in 0..1_000 {
            match faults.decide(node(0), NodeId::Client(ClientId(0)), &mut rng) {
                LinkDecision::Deliver {
                    copies,
                    extra_delay,
                } => {
                    if copies > 1 {
                        dupes += 1;
                    }
                    if extra_delay > Duration::ZERO {
                        reorders += 1;
                    }
                }
                LinkDecision::Drop => panic!("no drops configured"),
            }
        }
        assert!(dupes > 300 && dupes < 700, "dupes = {dupes}");
        assert!(reorders > 300 && reorders < 700, "reorders = {reorders}");
    }
}
