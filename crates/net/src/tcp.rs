//! A real socket transport over `std::net` TCP.
//!
//! This is the substrate under `seemore-runtime`'s `SocketCluster`: every
//! node (replica or client) owns a [`TcpEndpoint`] with a loopback listener,
//! and a [`TcpMesh`] wires a full set of endpoints together so that any node
//! can reach any other by [`NodeId`]. Messages serialize through the real
//! codec (`seemore_wire::codec`), so the bytes counted by
//! [`TransportStats`] are the bytes that actually crossed a TCP connection.
//!
//! # Topology and threads
//!
//! * One **acceptor** thread per endpoint polls its listener and spawns a
//!   **reader** thread per inbound connection. The reader learns the peer's
//!   identity from a 16-byte preamble, then feeds a streaming
//!   [`FrameReader`] and forwards every decoded message (tagged with the
//!   sender) into the endpoint's incoming queue. A malformed preamble or a
//!   poisoned frame stream drops the connection — never the process.
//! * Connections are dialed lazily: the first [`send`](TcpHandle::send) to a
//!   peer spawns a **writer** thread that connects with exponential backoff
//!   (1 ms doubling to [`MAX_BACKOFF`]), writes the preamble, and drains a
//!   per-peer outbound queue. A write failure triggers a reconnect and the
//!   in-flight frames are retransmitted first, so no frame is lost and order
//!   is FIFO per connection. Across a reconnect, frames still buffered on
//!   the old connection may interleave with the new connection's at the
//!   receiver — the protocol cores tolerate reordering (and duplication) by
//!   design, exactly as they must on a real network.
//!
//! # Hot path
//!
//! Three costs dominate a loopback mesh under protocol load, and each is
//! paid once instead of per-message/per-peer:
//!
//! * **Encode-once broadcast** — [`TcpHandle::broadcast`] serializes a
//!   message a single time into a shared [`Frame`] (`Arc<[u8]>`, built
//!   through a thread-local scratch buffer) and enqueues the same bytes to
//!   every destination's writer; the per-peer cost is a reference-count
//!   bump. [`TransportStats::encodes_saved`] counts the serializations
//!   avoided.
//! * **Zero-hop direct writes, coalesced backlog drains** — while a peer's
//!   connection is up, the *sending* thread writes the frame itself: one
//!   syscall, no writer-thread wakeup, no context switch. Whenever the
//!   connection is down (initial dial, reconnect after a failed write),
//!   frames accumulate in the peer's backlog and the writer thread drains
//!   the whole queue per wakeup into one reused burst buffer — a single
//!   coalesced `write(2)` per burst (up to 256 KiB), not one per frame —
//!   before handing the fresh connection back to the senders.
//!   [`TransportStats::write_syscalls`] and
//!   [`TransportStats::frames_coalesced`] quantify both paths.
//! * **Buffer reuse on receive** — each reader thread owns one read chunk
//!   and one streaming [`FrameReader`] whose reassembly buffer is reused
//!   across frames and capacity-bounded, so steady-state receive performs
//!   no allocations beyond the decoded messages themselves.
//!
//! # Trust model
//!
//! The preamble *asserts* the dialer's identity; nothing authenticates it.
//! That matches the paper's network assumptions — the protocol defends
//! against Byzantine *replicas* with signatures on every message whose
//! sender matters, but assumes point-to-point links are authenticated by
//! the environment (in a real deployment: TLS/mTLS between machines). The
//! one message class that leans on transport identity is the Lion mode's
//! *unsigned* `ACCEPT` (an optimization the paper allows because the
//! trusted primary is the only consumer): on this loopback transport, any
//! local process that can reach the primary's listener could forge it.
//! Loopback test clusters are the intended deployment here; an
//! authenticated handshake belongs to the same future substrate as TLS.
//!
//! # The async seam
//!
//! The container this workspace builds in has no crates.io access, so there
//! is no tokio; everything here is blocking `std::net` plus OS threads. The
//! [`Transport`] trait is the seam a future async substrate slots into: it
//! captures exactly what the runtimes consume (identity, fire-and-forget
//! `send`, timed `recv`, byte accounting) without exposing sockets, so a
//! tokio/mio implementation can replace [`TcpEndpoint`] without touching the
//! protocol cores or the cluster runtimes.

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use seemore_types::{ClientId, NodeId, ReplicaId};
use seemore_wire::codec::{Frame, FrameReader, CODEC_VERSION, MAGIC};
use seemore_wire::Message;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// First reconnect delay of the writer's exponential backoff.
pub const INITIAL_BACKOFF: Duration = Duration::from_millis(1);

/// Ceiling of the reconnect backoff.
pub const MAX_BACKOFF: Duration = Duration::from_millis(100);

/// Length of the per-connection identity preamble.
const PREAMBLE_LEN: usize = 16;

/// Poll interval for accept loops and shutdown checks.
const POLL: Duration = Duration::from_millis(5);

/// Ceiling on how many queued frame bytes a writer folds into one coalesced
/// `write` call. Large enough to swallow a whole broadcast burst, small
/// enough to keep the reused burst buffer cache-friendly.
const MAX_BURST: usize = 256 * 1024;

/// Size of the per-connection read buffer handed to `read(2)`.
const READ_CHUNK: usize = 64 * 1024;

thread_local! {
    /// Per-thread scratch for encoding outgoing messages: `send` and
    /// `broadcast` build each [`Frame`] through this buffer, so a replica
    /// thread's steady-state encode cost is one `Arc` allocation per
    /// *message* (not per destination, and with no intermediate `Vec`).
    static ENCODE_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// What the cluster runtimes need from a network substrate.
///
/// Implemented today by [`TcpEndpoint`] (blocking `std::net`); designed so a
/// tokio- or mio-backed endpoint can implement it later without changing the
/// runtimes: no socket types leak through, sends are fire-and-forget (the
/// transport owns queueing and reconnection), and receives are pull-based
/// with a timeout so caller threads keep servicing their timers.
pub trait Transport: Send {
    /// The node this endpoint speaks as.
    fn local(&self) -> NodeId;

    /// Queues `message` for delivery to `to`. Returns immediately; delivery
    /// is asynchronous, FIFO per connection, and best-effort ordered across
    /// reconnects (receivers must tolerate reordering, as protocol cores
    /// do).
    fn send(&self, to: NodeId, message: &Message) -> Result<(), TransportError>;

    /// Queues `message` for delivery to every peer in `to`, encoding it
    /// **once**: the same shared frame is placed on every destination's
    /// writer queue, so the fan-out cost of a proposal or vote broadcast is
    /// one serialization plus `n` reference-count bumps instead of `n`
    /// serializations.
    ///
    /// Delivery is attempted to every listed peer even if an earlier one
    /// fails; the first error (if any) is returned afterwards. The default
    /// implementation falls back to per-peer [`send`](Self::send) for
    /// transports without a shared-frame fast path.
    fn broadcast(&self, to: &[NodeId], message: &Message) -> Result<(), TransportError> {
        let mut first_error = None;
        for &peer in to {
            if let Err(error) = self.send(peer, message) {
                first_error.get_or_insert(error);
            }
        }
        match first_error {
            None => Ok(()),
            Some(error) => Err(error),
        }
    }

    /// Waits up to `timeout` for the next message addressed to this node,
    /// returning it together with the sender's identity.
    fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, Message), RecvTimeoutError>;

    /// Live byte/message counters for this endpoint's mesh.
    fn stats(&self) -> Arc<TransportStats>;
}

/// Why a send was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The destination is not part of the mesh's address book.
    UnknownPeer(NodeId),
    /// The transport has been shut down.
    Closed,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownPeer(node) => write!(f, "unknown peer {node}"),
            TransportError::Closed => write!(f, "transport closed"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Bytes and messages that crossed the wire, aggregated mesh-wide, plus the
/// hot-path savings counters (writes coalesced, encodes shared).
///
/// Sent counters advance when a frame is written to a socket;
/// [`bytes_read`](Self::bytes_read) advances on raw reads, and the received
/// counters advance on successful decodes. Identity preambles count toward
/// [`bytes_sent`](Self::bytes_sent)/[`bytes_read`](Self::bytes_read) — they
/// are on the wire too.
///
/// # Memory ordering
///
/// Every counter is a *monotonic event count* updated and read with
/// [`Ordering::Relaxed`], deliberately: no control flow ever branches on a
/// counter, no counter update is meant to publish other memory (the frames
/// themselves travel through channels, which provide their own
/// happens-before edges), and the only consumers are end-of-run reports and
/// test assertions that read after the relevant threads have been joined or
/// the channel traffic has quiesced. `SeqCst` would buy nothing here except
/// a full fence on every byte counted on the hot path. A point-in-time read
/// across counters may be mutually inconsistent (e.g. `messages_sent` can
/// momentarily lag `bytes_sent` mid-write); consumers that compare counters
/// must tolerate that, exactly as they must for any concurrent statistics.
#[derive(Debug, Default)]
pub struct TransportStats {
    pub(crate) messages_sent: AtomicU64,
    pub(crate) messages_received: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) bytes_received: AtomicU64,
    pub(crate) bytes_read: AtomicU64,
    pub(crate) write_syscalls: AtomicU64,
    pub(crate) direct_writes: AtomicU64,
    pub(crate) vectored_writes: AtomicU64,
    pub(crate) partial_writes: AtomicU64,
    pub(crate) frames_coalesced: AtomicU64,
    pub(crate) encodes_saved: AtomicU64,
    pub(crate) reconnects: AtomicU64,
}

impl TransportStats {
    /// Messages successfully written to a socket.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Messages successfully decoded from a socket.
    pub fn messages_received(&self) -> u64 {
        self.messages_received.load(Ordering::Relaxed)
    }

    /// Bytes written to sockets (frames plus preambles).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Bytes of successfully decoded frames — the payload traffic, net of
    /// preambles, multiplexing tags and partially received frames. By the
    /// codec's size contract this equals the sum of `wire_size()` over every
    /// message counted in [`messages_received`](Self::messages_received).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Raw bytes pulled off `read(2)` (preambles and multiplexing tags
    /// included — they are on the wire too). `bytes_read - bytes_received`
    /// is the framing overhead plus whatever is still sitting undecoded in
    /// reassembly buffers.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// `write(2)`/`writev(2)` calls issued (preambles included). With
    /// coalescing, `messages_sent - write_syscalls` frames rode along in a
    /// burst instead of paying their own syscall.
    pub fn write_syscalls(&self) -> u64 {
        self.write_syscalls.load(Ordering::Relaxed)
    }

    /// Frames written to the socket by the *sending* thread itself — the
    /// zero-hop happy path (connection up, no queue): no writer/event-loop
    /// handoff, no context switch. On the Lion happy path nearly every frame
    /// should land here; a low ratio means sends keep finding the connection
    /// down or congested.
    pub fn direct_writes(&self) -> u64 {
        self.direct_writes.load(Ordering::Relaxed)
    }

    /// Gather writes (`writev(2)` via `write_vectored`) issued by the
    /// reactor when draining a multi-frame outbox — each one delivers a
    /// whole burst of queued frames without copying them into a coalescing
    /// buffer first.
    pub fn vectored_writes(&self) -> u64 {
        self.vectored_writes.load(Ordering::Relaxed)
    }

    /// Writes that accepted only part of the offered bytes (kernel send
    /// buffer full). Each one leaves a partially written frame at the head
    /// of an outbox; sustained growth means a peer is not keeping up and
    /// backpressure is doing its job.
    pub fn partial_writes(&self) -> u64 {
        self.partial_writes.load(Ordering::Relaxed)
    }

    /// Frames that were appended to an already-pending burst — each one is
    /// a syscall the coalescing writer saved.
    pub fn frames_coalesced(&self) -> u64 {
        self.frames_coalesced.load(Ordering::Relaxed)
    }

    /// Per-destination serializations avoided by encode-once broadcasts
    /// (`peers - 1` per broadcast) — each one is a full message encode plus
    /// its allocation that the old per-peer path would have paid.
    pub fn encodes_saved(&self) -> u64 {
        self.encodes_saved.load(Ordering::Relaxed)
    }

    /// Outbound connections established (initial dials included). A mesh
    /// that never loses a connection shows exactly one per outbound peer;
    /// every additional count is a rebuild after a failed write — the
    /// per-peer flakiness signal the replica-health rollup surfaces.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }
}

/// Shared state every handle, writer and reader of one mesh sees.
#[derive(Debug)]
struct MeshShared {
    addresses: HashMap<NodeId, SocketAddr>,
    stats: Arc<TransportStats>,
    shutdown: AtomicBool,
}

impl MeshShared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// A full mesh of TCP endpoints on loopback.
///
/// Binds one listener per node up front (so every address is known before
/// any traffic flows), then hands each node's [`TcpEndpoint`] to its owner
/// thread via [`take_endpoint`](Self::take_endpoint). Dropping the mesh or
/// calling [`shutdown`](Self::shutdown) stops every acceptor, reader and
/// writer thread.
#[derive(Debug)]
pub struct TcpMesh {
    shared: Arc<MeshShared>,
    endpoints: Mutex<HashMap<NodeId, TcpEndpoint>>,
}

impl TcpMesh {
    /// Binds a loopback listener for every node and starts the acceptors.
    pub fn new(nodes: &[NodeId]) -> io::Result<TcpMesh> {
        let mut listeners = Vec::with_capacity(nodes.len());
        let mut addresses = HashMap::with_capacity(nodes.len());
        for &node in nodes {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addresses.insert(node, listener.local_addr()?);
            listeners.push((node, listener));
        }
        let shared = Arc::new(MeshShared {
            addresses,
            stats: Arc::new(TransportStats::default()),
            shutdown: AtomicBool::new(false),
        });
        let mut endpoints = HashMap::with_capacity(nodes.len());
        for (node, listener) in listeners {
            endpoints.insert(
                node,
                TcpEndpoint::start(node, listener, Arc::clone(&shared))?,
            );
        }
        Ok(TcpMesh {
            shared,
            endpoints: Mutex::new(endpoints),
        })
    }

    /// Hands the endpoint of `node` to its owner. Each endpoint can be taken
    /// once.
    pub fn take_endpoint(&self, node: NodeId) -> Option<TcpEndpoint> {
        self.endpoints.lock().expect("mesh lock").remove(&node)
    }

    /// The loopback address `node` listens on, if it is part of the mesh
    /// (exposed for transport-level benchmarks that drive raw connections).
    pub fn address(&self, node: NodeId) -> Option<SocketAddr> {
        self.shared.addresses.get(&node).copied()
    }

    /// Mesh-wide traffic counters.
    pub fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Stops every acceptor, reader and writer thread of this mesh. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for TcpMesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One node's attachment to a [`TcpMesh`]: a cloneable sending [`TcpHandle`]
/// plus the queue of decoded inbound messages.
#[derive(Debug)]
pub struct TcpEndpoint {
    handle: TcpHandle,
    incoming: Receiver<(NodeId, Message)>,
}

impl TcpEndpoint {
    fn start(local: NodeId, listener: TcpListener, shared: Arc<MeshShared>) -> io::Result<Self> {
        let (incoming_tx, incoming) = unbounded();
        listener.set_nonblocking(true)?;
        let accept_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("tcp-accept-{local}"))
            .spawn(move || accept_loop(listener, incoming_tx, accept_shared))?;
        Ok(TcpEndpoint {
            handle: TcpHandle {
                local,
                shared,
                writers: Arc::new(Mutex::new(HashMap::new())),
            },
            incoming,
        })
    }

    /// A cloneable sending handle (usable from any thread).
    pub fn handle(&self) -> TcpHandle {
        self.handle.clone()
    }

    /// The queue of decoded inbound messages, tagged with their sender.
    pub fn incoming(&self) -> &Receiver<(NodeId, Message)> {
        &self.incoming
    }
}

impl Transport for TcpEndpoint {
    fn local(&self) -> NodeId {
        self.handle.local
    }

    fn send(&self, to: NodeId, message: &Message) -> Result<(), TransportError> {
        self.handle.send(to, message)
    }

    fn broadcast(&self, to: &[NodeId], message: &Message) -> Result<(), TransportError> {
        self.handle.broadcast(to, message)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, Message), RecvTimeoutError> {
        self.incoming.recv_timeout(timeout)
    }

    fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.handle.shared.stats)
    }
}

/// One peer's outbound state, shared between sender threads (direct-write
/// fast path) and the peer's writer thread (dial / reconnect / backlog).
///
/// The invariant that keeps FIFO trivial: **`stream` is installed only
/// while `backlog` is empty.** Sender threads write directly through the
/// installed stream (one `write(2)` from the sending thread, no writer-
/// thread wakeup, no context switch); whenever the connection is down —
/// initial dial, reconnect after a failed write — frames go to the backlog
/// and the writer thread drains it as coalesced bursts before re-installing
/// the stream. All writes happen under the state mutex, so frames of
/// concurrent senders never interleave mid-frame.
#[derive(Debug)]
struct PeerOutbox {
    state: Mutex<PeerState>,
    /// Signalled when the backlog gains frames (the writer thread's wakeup).
    ready: Condvar,
}

#[derive(Debug, Default)]
struct PeerState {
    /// The established connection, present only when `backlog` is empty.
    stream: Option<TcpStream>,
    /// Frames awaiting the writer thread (connection down or mid-drain).
    backlog: VecDeque<Frame>,
}

/// The sending half of a [`TcpEndpoint`]; cheap to clone and share.
#[derive(Debug, Clone)]
pub struct TcpHandle {
    local: NodeId,
    shared: Arc<MeshShared>,
    /// Outbound state per peer; populated lazily by the first send.
    writers: Arc<Mutex<HashMap<NodeId, Arc<PeerOutbox>>>>,
}

impl TcpHandle {
    /// The node this handle sends as.
    pub fn local(&self) -> NodeId {
        self.local
    }

    /// Encodes `message` (through the thread's reusable scratch buffer) and
    /// queues it for `to`, dialing the peer on first use. Order is FIFO
    /// while a connection lasts; a reconnect re-sends the failed frames
    /// first but may interleave with frames the receiver still holds from
    /// the old connection.
    pub fn send(&self, to: NodeId, message: &Message) -> Result<(), TransportError> {
        self.send_frame(to, self.encode_frame(message))
    }

    /// Encodes `message` once and queues the same shared frame for every
    /// peer in `to` (see [`Transport::broadcast`]). Every peer is attempted;
    /// the first error, if any, is returned afterwards.
    pub fn broadcast(&self, to: &[NodeId], message: &Message) -> Result<(), TransportError> {
        let Some((&last, rest)) = to.split_last() else {
            return Ok(());
        };
        let frame = self.encode_frame(message);
        self.shared
            .stats
            .encodes_saved
            .fetch_add(rest.len() as u64, Ordering::Relaxed);
        let mut first_error = None;
        for &peer in rest {
            if let Err(error) = self.send_frame(peer, frame.clone()) {
                first_error.get_or_insert(error);
            }
        }
        if let Err(error) = self.send_frame(last, frame) {
            first_error.get_or_insert(error);
        }
        match first_error {
            None => Ok(()),
            Some(error) => Err(error),
        }
    }

    /// Builds the shared frame for `message` through the thread-local
    /// encode scratch (one `Arc` allocation, no intermediate `Vec`).
    fn encode_frame(&self, message: &Message) -> Frame {
        ENCODE_SCRATCH.with(|scratch| Frame::encode_with(&mut scratch.borrow_mut(), message))
    }

    /// Queues (or directly writes) an already-encoded frame for `to` — the
    /// fan-out primitive under [`broadcast`](Self::broadcast): one encode is
    /// shared by every peer without re-serializing.
    ///
    /// With the connection up and no backlog pending, the frame is written
    /// to the socket **from the calling thread** — the common case pays one
    /// syscall and zero thread hops. Otherwise the frame joins the peer's
    /// backlog and the writer thread delivers it after (re)connecting.
    pub fn send_frame(&self, to: NodeId, frame: Frame) -> Result<(), TransportError> {
        if self.shared.is_shutdown() {
            return Err(TransportError::Closed);
        }
        let outbox = self.outbox(to)?;
        let mut state = outbox.state.lock().expect("peer outbox lock");
        match state.stream.as_mut() {
            Some(stream) => {
                // Direct write: FIFO holds because every write happens under
                // this lock and the stream is only installed with an empty
                // backlog.
                if stream.write_all(frame.bytes()).is_ok() {
                    let stats = &self.shared.stats;
                    stats
                        .bytes_sent
                        .fetch_add(frame.len() as u64, Ordering::Relaxed);
                    stats.messages_sent.fetch_add(1, Ordering::Relaxed);
                    stats.write_syscalls.fetch_add(1, Ordering::Relaxed);
                    stats.direct_writes.fetch_add(1, Ordering::Relaxed);
                } else {
                    // Connection lost mid-write: hand the frame (and the
                    // connection's future) back to the writer thread. The
                    // peer may observe a duplicate of partially delivered
                    // bytes after the retransmit; cores tolerate that.
                    state.stream = None;
                    state.backlog.push_back(frame);
                    outbox.ready.notify_one();
                }
            }
            None => {
                state.backlog.push_back(frame);
                outbox.ready.notify_one();
            }
        }
        Ok(())
    }

    /// Returns the peer's outbox, spawning its writer thread on first use.
    fn outbox(&self, to: NodeId) -> Result<Arc<PeerOutbox>, TransportError> {
        let addr = *self
            .shared
            .addresses
            .get(&to)
            .ok_or(TransportError::UnknownPeer(to))?;
        let mut writers = self.writers.lock().expect("writer map lock");
        Ok(Arc::clone(writers.entry(to).or_insert_with(|| {
            let outbox = Arc::new(PeerOutbox {
                state: Mutex::new(PeerState::default()),
                ready: Condvar::new(),
            });
            let local = self.local;
            let shared = Arc::clone(&self.shared);
            let thread_outbox = Arc::clone(&outbox);
            std::thread::Builder::new()
                .name(format!("tcp-write-{local}-to-{to}"))
                .spawn(move || writer_loop(local, addr, thread_outbox, shared))
                .expect("spawn writer thread");
            outbox
        })))
    }
}

/// The 16-byte connection preamble identifying the dialing node: magic,
/// codec version, a replica/client tag, two reserved bytes, and the id.
fn encode_preamble(node: NodeId) -> [u8; PREAMBLE_LEN] {
    let (tag, id) = match node {
        NodeId::Replica(ReplicaId(r)) => (0u8, u64::from(r)),
        NodeId::Client(ClientId(c)) => (1u8, c),
    };
    let mut out = [0u8; PREAMBLE_LEN];
    out[..4].copy_from_slice(&MAGIC);
    out[4] = CODEC_VERSION;
    out[5] = tag;
    out[8..16].copy_from_slice(&id.to_le_bytes());
    out
}

fn decode_preamble(bytes: &[u8; PREAMBLE_LEN]) -> Option<NodeId> {
    if bytes[..4] != MAGIC || bytes[4] != CODEC_VERSION {
        return None;
    }
    let id = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    match bytes[5] {
        0 => Some(NodeId::Replica(ReplicaId(u32::try_from(id).ok()?))),
        1 => Some(NodeId::Client(ClientId(id))),
        _ => None,
    }
}

fn accept_loop(
    listener: TcpListener,
    incoming: Sender<(NodeId, Message)>,
    shared: Arc<MeshShared>,
) {
    while !shared.is_shutdown() {
        match listener.accept() {
            Ok((stream, _)) => {
                let incoming = incoming.clone();
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("tcp-read".to_string())
                    .spawn(move || reader_loop(stream, incoming, shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            // Transient accept failures (ECONNABORTED when a peer resets
            // mid-handshake, EMFILE under fd pressure) must not kill the
            // acceptor — that would silently partition this node from every
            // future inbound connection. Back off and keep accepting; the
            // loop exits through the shutdown flag.
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Reads `buf.len()` bytes, tolerating read timeouts, aborting on shutdown.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shared: &MeshShared) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.is_shutdown() {
            return Err(io::ErrorKind::Interrupted.into());
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => {
                filled += n;
                shared
                    .stats
                    .bytes_read
                    .fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn reader_loop(
    mut stream: TcpStream,
    incoming: Sender<(NodeId, Message)>,
    shared: Arc<MeshShared>,
) {
    let _ = stream.set_read_timeout(Some(POLL * 4));
    let mut preamble = [0u8; PREAMBLE_LEN];
    if read_full(&mut stream, &mut preamble, &shared).is_err() {
        return;
    }
    let Some(peer) = decode_preamble(&preamble) else {
        // Not one of ours; drop the connection.
        return;
    };
    // One read buffer and one FrameReader per connection, both reused for
    // every frame of the connection's lifetime: the read chunk is filled by
    // `read(2)` and drained into the FrameReader, whose internal reassembly
    // buffer amortizes to zero allocations (and stays capacity-bounded —
    // see `FrameReader::compact`).
    let mut frames = FrameReader::new();
    let mut buf = vec![0u8; READ_CHUNK];
    while !shared.is_shutdown() {
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                shared
                    .stats
                    .bytes_read
                    .fetch_add(n as u64, Ordering::Relaxed);
                frames.push(&buf[..n]);
                loop {
                    // The buffered-bytes delta across a successful decode is
                    // exactly the frame's wire length — what bytes_received
                    // counts (payload traffic, net of framing overhead).
                    let before = frames.buffered();
                    match frames.next_frame() {
                        Ok(Some(message)) => {
                            shared
                                .stats
                                .messages_received
                                .fetch_add(1, Ordering::Relaxed);
                            shared
                                .stats
                                .bytes_received
                                .fetch_add((before - frames.buffered()) as u64, Ordering::Relaxed);
                            if incoming.send((peer, message)).is_err() {
                                return; // receiver gone: endpoint dropped
                            }
                        }
                        Ok(None) => break,
                        // Framing lost; a real deployment would log the peer.
                        Err(_) => return,
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Dials `addr`, doubling the retry delay from [`INITIAL_BACKOFF`] up to
/// [`MAX_BACKOFF`], until connected or the mesh shuts down.
fn connect_with_backoff(addr: SocketAddr, shared: &MeshShared) -> Option<TcpStream> {
    let mut backoff = INITIAL_BACKOFF;
    loop {
        if shared.is_shutdown() {
            return None;
        }
        match TcpStream::connect_timeout(&addr, MAX_BACKOFF) {
            Ok(stream) => return Some(stream),
            Err(_) => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_BACKOFF);
            }
        }
    }
}

/// The writer thread: owns the peer's connection lifecycle. It dials (and
/// re-dials with backoff), writes the identity preamble, then drains the
/// backlog accumulated while the connection was down — **whole queue per
/// wakeup, folded into a single coalesced buffered write per burst** (one
/// syscall per burst, not per frame) — and finally installs the stream into
/// the outbox so sender threads switch to the zero-hop direct-write path.
/// In steady state (connection up, backlog empty) this thread sleeps; it
/// wakes only when a direct write fails and the connection must be rebuilt.
fn writer_loop(local: NodeId, addr: SocketAddr, outbox: Arc<PeerOutbox>, shared: Arc<MeshShared>) {
    // Bytes (whole frames) that failed mid-write and must be retransmitted
    // first after reconnecting, preserving FIFO. The receiver may observe a
    // duplicate of a frame the kernel had partially delivered before the
    // failure; the protocol cores tolerate duplication by design.
    let mut carry_over: Vec<u8> = Vec::new();
    let mut carry_frames: u64 = 0;
    // The burst buffer is reused across writes (capacity bounded by
    // MAX_BURST plus one frame), so steady state allocates nothing.
    let mut burst: Vec<u8> = Vec::new();
    'connection: loop {
        // Sleep until there is something to deliver (or shutdown). The
        // stream, if it existed, was taken down by whoever saw the failure.
        {
            let mut state = outbox.state.lock().expect("peer outbox lock");
            loop {
                if shared.is_shutdown() {
                    return;
                }
                if !state.backlog.is_empty() || !carry_over.is_empty() {
                    break;
                }
                state = outbox
                    .ready
                    .wait_timeout(state, POLL * 10)
                    .expect("peer outbox lock")
                    .0;
            }
        }
        let Some(mut stream) = connect_with_backoff(addr, &shared) else {
            return;
        };
        shared.stats.reconnects.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nodelay(true);
        let preamble = encode_preamble(local);
        if stream.write_all(&preamble).is_err() {
            continue 'connection;
        }
        shared
            .stats
            .bytes_sent
            .fetch_add(PREAMBLE_LEN as u64, Ordering::Relaxed);
        shared.stats.write_syscalls.fetch_add(1, Ordering::Relaxed);
        // Drain the backlog in coalesced bursts; once it runs dry, publish
        // the connection for sender threads (direct writes) and go back to
        // waiting.
        loop {
            if shared.is_shutdown() {
                return;
            }
            burst.clear();
            let mut frames: u64 = if carry_over.is_empty() {
                0
            } else {
                burst.extend_from_slice(&carry_over);
                carry_frames
            };
            {
                let mut state = outbox.state.lock().expect("peer outbox lock");
                while burst.len() < MAX_BURST {
                    let Some(frame) = state.backlog.pop_front() else {
                        break;
                    };
                    burst.extend_from_slice(frame.bytes());
                    frames += 1;
                }
                if frames == 0 {
                    // Backlog drained under the lock: hand the stream to the
                    // senders. The next send writes directly, with no writer
                    // wakeup and no thread hop.
                    state.stream = Some(stream);
                    continue 'connection;
                }
            }
            if stream.write_all(&burst).is_err() {
                if shared.is_shutdown() {
                    return;
                }
                std::mem::swap(&mut carry_over, &mut burst);
                carry_frames = frames;
                continue 'connection;
            }
            carry_over.clear();
            carry_frames = 0;
            shared
                .stats
                .bytes_sent
                .fetch_add(burst.len() as u64, Ordering::Relaxed);
            shared
                .stats
                .messages_sent
                .fetch_add(frames, Ordering::Relaxed);
            shared.stats.write_syscalls.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .frames_coalesced
                .fetch_add(frames.saturating_sub(1), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seemore_types::{SeqNum, Timestamp};
    use seemore_wire::{ClientRequest, StateRequest, WireSize};

    fn nodes() -> Vec<NodeId> {
        vec![
            NodeId::Replica(ReplicaId(0)),
            NodeId::Replica(ReplicaId(1)),
            NodeId::Client(ClientId(7)),
        ]
    }

    fn state_request(seq: u64) -> Message {
        Message::StateRequest(StateRequest {
            from_seq: SeqNum(seq),
            replica: ReplicaId(0),
        })
    }

    #[test]
    fn messages_cross_the_mesh_with_sender_identity() {
        let mesh = TcpMesh::new(&nodes()).unwrap();
        let a = mesh.take_endpoint(NodeId::Replica(ReplicaId(0))).unwrap();
        let b = mesh.take_endpoint(NodeId::Replica(ReplicaId(1))).unwrap();

        for seq in 0..10 {
            a.send(NodeId::Replica(ReplicaId(1)), &state_request(seq))
                .unwrap();
        }
        for seq in 0..10 {
            let (from, message) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(from, NodeId::Replica(ReplicaId(0)));
            assert_eq!(message, state_request(seq), "FIFO on one connection");
        }
        mesh.shutdown();
    }

    #[test]
    fn bytes_on_wire_match_the_size_contract() {
        let mesh = TcpMesh::new(&nodes()).unwrap();
        let client = mesh.take_endpoint(NodeId::Client(ClientId(7))).unwrap();
        let replica = mesh.take_endpoint(NodeId::Replica(ReplicaId(0))).unwrap();

        let message = Message::Request(ClientRequest {
            client: ClientId(7),
            timestamp: Timestamp(1),
            operation: vec![0xEE; 500],
            signature: seemore_crypto::Signature::INVALID,
        });
        client
            .send(NodeId::Replica(ReplicaId(0)), &message)
            .unwrap();
        let (from, received) = replica.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, NodeId::Client(ClientId(7)));
        assert_eq!(received, message);

        let stats = mesh.stats();
        assert_eq!(stats.messages_sent(), 1);
        assert_eq!(stats.messages_received(), 1);
        // Wire bytes = one preamble + exactly wire_size() frame bytes.
        assert_eq!(
            stats.bytes_sent(),
            (PREAMBLE_LEN + message.wire_size()) as u64
        );
        // Raw reads saw everything that was written; the decoded-frame
        // counter excludes the preamble, matching the size contract exactly.
        assert_eq!(stats.bytes_read(), stats.bytes_sent());
        assert_eq!(stats.bytes_received(), message.wire_size() as u64);
        mesh.shutdown();
    }

    #[test]
    fn unknown_peers_are_rejected() {
        let mesh = TcpMesh::new(&nodes()).unwrap();
        let a = mesh.take_endpoint(NodeId::Replica(ReplicaId(0))).unwrap();
        assert_eq!(
            a.send(NodeId::Replica(ReplicaId(42)), &state_request(0)),
            Err(TransportError::UnknownPeer(NodeId::Replica(ReplicaId(42))))
        );
        mesh.shutdown();
        assert_eq!(
            a.send(NodeId::Replica(ReplicaId(1)), &state_request(0)),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn preamble_round_trips_identities() {
        for node in nodes() {
            assert_eq!(decode_preamble(&encode_preamble(node)), Some(node));
        }
        let mut garbage = encode_preamble(NodeId::Client(ClientId(1)));
        garbage[0] = b'!';
        assert_eq!(decode_preamble(&garbage), None);
    }

    #[test]
    fn broadcast_encodes_once_and_delivers_to_every_peer_in_order() {
        let all: Vec<NodeId> = (0..4).map(|r| NodeId::Replica(ReplicaId(r))).collect();
        let mesh = TcpMesh::new(&all).unwrap();
        let sender = mesh.take_endpoint(all[0]).unwrap();
        let peers: Vec<NodeId> = all[1..].to_vec();
        let receivers: Vec<TcpEndpoint> = peers
            .iter()
            .map(|&node| mesh.take_endpoint(node).unwrap())
            .collect();

        const FRAMES: u64 = 20;
        for seq in 0..FRAMES {
            sender.broadcast(&peers, &state_request(seq)).unwrap();
        }
        for receiver in &receivers {
            for seq in 0..FRAMES {
                let (from, message) = receiver.recv_timeout(Duration::from_secs(5)).unwrap();
                assert_eq!(from, all[0]);
                assert_eq!(message, state_request(seq), "exactly once, FIFO");
            }
            assert!(
                receiver.recv_timeout(Duration::from_millis(50)).is_err(),
                "no duplicate deliveries"
            );
        }
        let stats = mesh.stats();
        // One encode per broadcast; the other peers - 1 copies were shared.
        assert_eq!(stats.encodes_saved(), FRAMES * (peers.len() as u64 - 1));
        assert_eq!(stats.messages_sent(), FRAMES * peers.len() as u64);
        // Accounting identity of the coalescing writer: every sent frame
        // either opened a burst (one syscall, minus the per-connection
        // preamble writes) or rode along in one (coalesced).
        let preambles = peers.len() as u64;
        assert_eq!(
            stats.messages_sent(),
            (stats.write_syscalls() - preambles) + stats.frames_coalesced()
        );
        mesh.shutdown();

        // An empty peer list is a no-op, not an error.
        assert_eq!(sender.broadcast(&[], &state_request(0)), Ok(()));
    }

    #[test]
    fn broadcast_reports_unknown_peers_but_still_reaches_the_rest() {
        let mesh = TcpMesh::new(&nodes()).unwrap();
        let a = mesh.take_endpoint(NodeId::Replica(ReplicaId(0))).unwrap();
        let b = mesh.take_endpoint(NodeId::Replica(ReplicaId(1))).unwrap();
        let ghost = NodeId::Replica(ReplicaId(42));
        assert_eq!(
            a.broadcast(&[ghost, NodeId::Replica(ReplicaId(1))], &state_request(7)),
            Err(TransportError::UnknownPeer(ghost))
        );
        let (_, message) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(message, state_request(7), "known peers still served");
        mesh.shutdown();
    }

    /// Satellite regression: a broadcast's shared frame must reach every
    /// listed peer exactly once even when one peer's writer is
    /// mid-reconnect — the frames queued during the connect backoff (the
    /// carry-over/retransmit path) survive until the peer comes up.
    #[test]
    fn broadcast_survives_a_peer_mid_reconnect() {
        let a = NodeId::Replica(ReplicaId(0));
        let b = NodeId::Replica(ReplicaId(1));
        let c = NodeId::Replica(ReplicaId(2));
        let a_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let c_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        // Reserve a port for b, then close it: a's writer to b will spin in
        // connect backoff (ECONNREFUSED) while the broadcasts are queued.
        let b_addr = {
            let reserved = TcpListener::bind("127.0.0.1:0").unwrap();
            reserved.local_addr().unwrap()
        };
        let shared = Arc::new(MeshShared {
            addresses: HashMap::from([
                (a, a_listener.local_addr().unwrap()),
                (b, b_addr),
                (c, c_listener.local_addr().unwrap()),
            ]),
            stats: Arc::new(TransportStats::default()),
            shutdown: AtomicBool::new(false),
        });
        let sender = TcpEndpoint::start(a, a_listener, Arc::clone(&shared)).unwrap();
        let live = TcpEndpoint::start(c, c_listener, Arc::clone(&shared)).unwrap();

        const FRAMES: u64 = 16;
        for seq in 0..FRAMES {
            sender
                .handle()
                .broadcast(&[b, c], &state_request(seq))
                .unwrap();
        }
        // The live peer drains immediately, proving the shared frames are
        // not held hostage by the unreachable one.
        for seq in 0..FRAMES {
            let (_, message) = live.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(message, state_request(seq));
        }

        // Now bring b up on the reserved address; the writer's backoff loop
        // connects and retransmits the queue.
        std::thread::sleep(Duration::from_millis(20));
        let b_listener = (0..100)
            .find_map(|_| {
                TcpListener::bind(b_addr).ok().or_else(|| {
                    std::thread::sleep(Duration::from_millis(10));
                    None
                })
            })
            .expect("rebind the reserved port for b");
        let late = TcpEndpoint::start(b, b_listener, Arc::clone(&shared)).unwrap();
        for seq in 0..FRAMES {
            let (from, message) = late.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(from, a);
            assert_eq!(message, state_request(seq), "exactly once, in order");
        }
        assert!(
            late.recv_timeout(Duration::from_millis(100)).is_err(),
            "no frame delivered twice after the reconnect"
        );
        shared.shutdown.store(true, Ordering::Relaxed);
    }

    #[test]
    fn coalescing_accounting_holds_under_concurrent_load() {
        let mesh = TcpMesh::new(&nodes()).unwrap();
        let a = mesh.take_endpoint(NodeId::Replica(ReplicaId(0))).unwrap();
        let b = mesh.take_endpoint(NodeId::Replica(ReplicaId(1))).unwrap();
        const FRAMES: u64 = 500;
        for seq in 0..FRAMES {
            a.send(NodeId::Replica(ReplicaId(1)), &state_request(seq))
                .unwrap();
        }
        for seq in 0..FRAMES {
            let (_, message) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(message, state_request(seq));
        }
        let stats = mesh.stats();
        assert_eq!(stats.messages_sent(), FRAMES);
        assert_eq!(stats.messages_received(), FRAMES);
        // One preamble write, then bursts: sent = bursts + coalesced.
        assert_eq!(
            stats.messages_sent(),
            (stats.write_syscalls() - 1) + stats.frames_coalesced()
        );
        assert!(
            stats.write_syscalls() <= FRAMES + 1,
            "coalescing can never issue more writes than frames"
        );
        mesh.shutdown();
    }
}
