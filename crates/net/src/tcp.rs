//! A real socket transport over `std::net` TCP.
//!
//! This is the substrate under `seemore-runtime`'s `SocketCluster`: every
//! node (replica or client) owns a [`TcpEndpoint`] with a loopback listener,
//! and a [`TcpMesh`] wires a full set of endpoints together so that any node
//! can reach any other by [`NodeId`]. Messages serialize through the real
//! codec (`seemore_wire::codec`), so the bytes counted by
//! [`TransportStats`] are the bytes that actually crossed a TCP connection.
//!
//! # Topology and threads
//!
//! * One **acceptor** thread per endpoint polls its listener and spawns a
//!   **reader** thread per inbound connection. The reader learns the peer's
//!   identity from a 16-byte preamble, then feeds a streaming
//!   [`FrameReader`] and forwards every decoded message (tagged with the
//!   sender) into the endpoint's incoming queue. A malformed preamble or a
//!   poisoned frame stream drops the connection — never the process.
//! * Connections are dialed lazily: the first [`send`](TcpHandle::send) to a
//!   peer spawns a **writer** thread that connects with exponential backoff
//!   (1 ms doubling to [`MAX_BACKOFF`]), writes the preamble, and drains a
//!   per-peer outbound queue. A write failure triggers a reconnect and the
//!   in-flight frame is retransmitted first, so no frame is lost and order
//!   is FIFO per connection. Across a reconnect, frames still buffered on
//!   the old connection may interleave with the new connection's at the
//!   receiver — the protocol cores tolerate reordering (and duplication) by
//!   design, exactly as they must on a real network.
//!
//! # Trust model
//!
//! The preamble *asserts* the dialer's identity; nothing authenticates it.
//! That matches the paper's network assumptions — the protocol defends
//! against Byzantine *replicas* with signatures on every message whose
//! sender matters, but assumes point-to-point links are authenticated by
//! the environment (in a real deployment: TLS/mTLS between machines). The
//! one message class that leans on transport identity is the Lion mode's
//! *unsigned* `ACCEPT` (an optimization the paper allows because the
//! trusted primary is the only consumer): on this loopback transport, any
//! local process that can reach the primary's listener could forge it.
//! Loopback test clusters are the intended deployment here; an
//! authenticated handshake belongs to the same future substrate as TLS.
//!
//! # The async seam
//!
//! The container this workspace builds in has no crates.io access, so there
//! is no tokio; everything here is blocking `std::net` plus OS threads. The
//! [`Transport`] trait is the seam a future async substrate slots into: it
//! captures exactly what the runtimes consume (identity, fire-and-forget
//! `send`, timed `recv`, byte accounting) without exposing sockets, so a
//! tokio/mio implementation can replace [`TcpEndpoint`] without touching the
//! protocol cores or the cluster runtimes.

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use seemore_types::{ClientId, NodeId, ReplicaId};
use seemore_wire::codec::{encode, FrameReader, CODEC_VERSION, MAGIC};
use seemore_wire::Message;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// First reconnect delay of the writer's exponential backoff.
pub const INITIAL_BACKOFF: Duration = Duration::from_millis(1);

/// Ceiling of the reconnect backoff.
pub const MAX_BACKOFF: Duration = Duration::from_millis(100);

/// Length of the per-connection identity preamble.
const PREAMBLE_LEN: usize = 16;

/// Poll interval for accept loops and shutdown checks.
const POLL: Duration = Duration::from_millis(5);

/// What the cluster runtimes need from a network substrate.
///
/// Implemented today by [`TcpEndpoint`] (blocking `std::net`); designed so a
/// tokio- or mio-backed endpoint can implement it later without changing the
/// runtimes: no socket types leak through, sends are fire-and-forget (the
/// transport owns queueing and reconnection), and receives are pull-based
/// with a timeout so caller threads keep servicing their timers.
pub trait Transport: Send {
    /// The node this endpoint speaks as.
    fn local(&self) -> NodeId;

    /// Queues `message` for delivery to `to`. Returns immediately; delivery
    /// is asynchronous, FIFO per connection, and best-effort ordered across
    /// reconnects (receivers must tolerate reordering, as protocol cores
    /// do).
    fn send(&self, to: NodeId, message: &Message) -> Result<(), TransportError>;

    /// Waits up to `timeout` for the next message addressed to this node,
    /// returning it together with the sender's identity.
    fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, Message), RecvTimeoutError>;

    /// Live byte/message counters for this endpoint's mesh.
    fn stats(&self) -> Arc<TransportStats>;
}

/// Why a send was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The destination is not part of the mesh's address book.
    UnknownPeer(NodeId),
    /// The transport has been shut down.
    Closed,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownPeer(node) => write!(f, "unknown peer {node}"),
            TransportError::Closed => write!(f, "transport closed"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Bytes and messages that crossed the wire, aggregated mesh-wide.
///
/// Sent counters advance when a frame is written to a socket; received
/// counters advance on raw reads (bytes) and successful decodes (messages).
/// Identity preambles count toward bytes — they are on the wire too.
#[derive(Debug, Default)]
pub struct TransportStats {
    messages_sent: AtomicU64,
    messages_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

impl TransportStats {
    /// Messages successfully written to a socket.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Messages successfully decoded from a socket.
    pub fn messages_received(&self) -> u64 {
        self.messages_received.load(Ordering::Relaxed)
    }

    /// Bytes written to sockets (frames plus preambles).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Bytes read from sockets.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }
}

/// Shared state every handle, writer and reader of one mesh sees.
#[derive(Debug)]
struct MeshShared {
    addresses: HashMap<NodeId, SocketAddr>,
    stats: Arc<TransportStats>,
    shutdown: AtomicBool,
}

impl MeshShared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// A full mesh of TCP endpoints on loopback.
///
/// Binds one listener per node up front (so every address is known before
/// any traffic flows), then hands each node's [`TcpEndpoint`] to its owner
/// thread via [`take_endpoint`](Self::take_endpoint). Dropping the mesh or
/// calling [`shutdown`](Self::shutdown) stops every acceptor, reader and
/// writer thread.
#[derive(Debug)]
pub struct TcpMesh {
    shared: Arc<MeshShared>,
    endpoints: Mutex<HashMap<NodeId, TcpEndpoint>>,
}

impl TcpMesh {
    /// Binds a loopback listener for every node and starts the acceptors.
    pub fn new(nodes: &[NodeId]) -> io::Result<TcpMesh> {
        let mut listeners = Vec::with_capacity(nodes.len());
        let mut addresses = HashMap::with_capacity(nodes.len());
        for &node in nodes {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addresses.insert(node, listener.local_addr()?);
            listeners.push((node, listener));
        }
        let shared = Arc::new(MeshShared {
            addresses,
            stats: Arc::new(TransportStats::default()),
            shutdown: AtomicBool::new(false),
        });
        let mut endpoints = HashMap::with_capacity(nodes.len());
        for (node, listener) in listeners {
            endpoints.insert(
                node,
                TcpEndpoint::start(node, listener, Arc::clone(&shared))?,
            );
        }
        Ok(TcpMesh {
            shared,
            endpoints: Mutex::new(endpoints),
        })
    }

    /// Hands the endpoint of `node` to its owner. Each endpoint can be taken
    /// once.
    pub fn take_endpoint(&self, node: NodeId) -> Option<TcpEndpoint> {
        self.endpoints.lock().expect("mesh lock").remove(&node)
    }

    /// Mesh-wide traffic counters.
    pub fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Stops every acceptor, reader and writer thread of this mesh. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for TcpMesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One node's attachment to a [`TcpMesh`]: a cloneable sending [`TcpHandle`]
/// plus the queue of decoded inbound messages.
#[derive(Debug)]
pub struct TcpEndpoint {
    handle: TcpHandle,
    incoming: Receiver<(NodeId, Message)>,
}

impl TcpEndpoint {
    fn start(local: NodeId, listener: TcpListener, shared: Arc<MeshShared>) -> io::Result<Self> {
        let (incoming_tx, incoming) = unbounded();
        listener.set_nonblocking(true)?;
        let accept_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("tcp-accept-{local}"))
            .spawn(move || accept_loop(listener, incoming_tx, accept_shared))?;
        Ok(TcpEndpoint {
            handle: TcpHandle {
                local,
                shared,
                writers: Arc::new(Mutex::new(HashMap::new())),
            },
            incoming,
        })
    }

    /// A cloneable sending handle (usable from any thread).
    pub fn handle(&self) -> TcpHandle {
        self.handle.clone()
    }

    /// The queue of decoded inbound messages, tagged with their sender.
    pub fn incoming(&self) -> &Receiver<(NodeId, Message)> {
        &self.incoming
    }
}

impl Transport for TcpEndpoint {
    fn local(&self) -> NodeId {
        self.handle.local
    }

    fn send(&self, to: NodeId, message: &Message) -> Result<(), TransportError> {
        self.handle.send(to, message)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, Message), RecvTimeoutError> {
        self.incoming.recv_timeout(timeout)
    }

    fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.handle.shared.stats)
    }
}

/// The sending half of a [`TcpEndpoint`]; cheap to clone and share.
#[derive(Debug, Clone)]
pub struct TcpHandle {
    local: NodeId,
    shared: Arc<MeshShared>,
    /// Outbound queue per peer; populated lazily by the first send.
    writers: Arc<Mutex<HashMap<NodeId, Sender<SharedFrame>>>>,
}

/// An encoded frame shared between a broadcast's per-peer writer queues.
type SharedFrame = Arc<Vec<u8>>;

impl TcpHandle {
    /// The node this handle sends as.
    pub fn local(&self) -> NodeId {
        self.local
    }

    /// Encodes `message` and queues it for `to`, dialing the peer on first
    /// use. Order is FIFO while a connection lasts; a reconnect re-sends
    /// the failed frame first but may interleave with frames the receiver
    /// still holds from the old connection.
    pub fn send(&self, to: NodeId, message: &Message) -> Result<(), TransportError> {
        self.send_frame(to, Arc::new(encode(message)))
    }

    /// Queues an already-encoded frame for `to` — the broadcast path: one
    /// `encode` can fan out to every peer without re-serializing, which is
    /// what a primary's proposal broadcast does on the data path.
    pub fn send_frame(&self, to: NodeId, frame: SharedFrame) -> Result<(), TransportError> {
        if self.shared.is_shutdown() {
            return Err(TransportError::Closed);
        }
        let addr = *self
            .shared
            .addresses
            .get(&to)
            .ok_or(TransportError::UnknownPeer(to))?;
        let mut writers = self.writers.lock().expect("writer map lock");
        let tx = writers.entry(to).or_insert_with(|| {
            let (tx, rx) = unbounded();
            let local = self.local;
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("tcp-write-{local}-to-{to}"))
                .spawn(move || writer_loop(local, addr, rx, shared))
                .expect("spawn writer thread");
            tx
        });
        tx.send(frame).map_err(|_| TransportError::Closed)
    }
}

/// The 16-byte connection preamble identifying the dialing node: magic,
/// codec version, a replica/client tag, two reserved bytes, and the id.
fn encode_preamble(node: NodeId) -> [u8; PREAMBLE_LEN] {
    let (tag, id) = match node {
        NodeId::Replica(ReplicaId(r)) => (0u8, u64::from(r)),
        NodeId::Client(ClientId(c)) => (1u8, c),
    };
    let mut out = [0u8; PREAMBLE_LEN];
    out[..4].copy_from_slice(&MAGIC);
    out[4] = CODEC_VERSION;
    out[5] = tag;
    out[8..16].copy_from_slice(&id.to_le_bytes());
    out
}

fn decode_preamble(bytes: &[u8; PREAMBLE_LEN]) -> Option<NodeId> {
    if bytes[..4] != MAGIC || bytes[4] != CODEC_VERSION {
        return None;
    }
    let id = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    match bytes[5] {
        0 => Some(NodeId::Replica(ReplicaId(u32::try_from(id).ok()?))),
        1 => Some(NodeId::Client(ClientId(id))),
        _ => None,
    }
}

fn accept_loop(
    listener: TcpListener,
    incoming: Sender<(NodeId, Message)>,
    shared: Arc<MeshShared>,
) {
    while !shared.is_shutdown() {
        match listener.accept() {
            Ok((stream, _)) => {
                let incoming = incoming.clone();
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("tcp-read".to_string())
                    .spawn(move || reader_loop(stream, incoming, shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            // Transient accept failures (ECONNABORTED when a peer resets
            // mid-handshake, EMFILE under fd pressure) must not kill the
            // acceptor — that would silently partition this node from every
            // future inbound connection. Back off and keep accepting; the
            // loop exits through the shutdown flag.
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Reads `buf.len()` bytes, tolerating read timeouts, aborting on shutdown.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shared: &MeshShared) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.is_shutdown() {
            return Err(io::ErrorKind::Interrupted.into());
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => {
                filled += n;
                shared
                    .stats
                    .bytes_received
                    .fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn reader_loop(
    mut stream: TcpStream,
    incoming: Sender<(NodeId, Message)>,
    shared: Arc<MeshShared>,
) {
    let _ = stream.set_read_timeout(Some(POLL * 4));
    let mut preamble = [0u8; PREAMBLE_LEN];
    if read_full(&mut stream, &mut preamble, &shared).is_err() {
        return;
    }
    let Some(peer) = decode_preamble(&preamble) else {
        // Not one of ours; drop the connection.
        return;
    };
    let mut frames = FrameReader::new();
    let mut buf = [0u8; 16 * 1024];
    while !shared.is_shutdown() {
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                shared
                    .stats
                    .bytes_received
                    .fetch_add(n as u64, Ordering::Relaxed);
                frames.push(&buf[..n]);
                loop {
                    match frames.next_frame() {
                        Ok(Some(message)) => {
                            shared
                                .stats
                                .messages_received
                                .fetch_add(1, Ordering::Relaxed);
                            if incoming.send((peer, message)).is_err() {
                                return; // receiver gone: endpoint dropped
                            }
                        }
                        Ok(None) => break,
                        // Framing lost; a real deployment would log the peer.
                        Err(_) => return,
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Dials `addr`, doubling the retry delay from [`INITIAL_BACKOFF`] up to
/// [`MAX_BACKOFF`], until connected or the mesh shuts down.
fn connect_with_backoff(addr: SocketAddr, shared: &MeshShared) -> Option<TcpStream> {
    let mut backoff = INITIAL_BACKOFF;
    loop {
        if shared.is_shutdown() {
            return None;
        }
        match TcpStream::connect_timeout(&addr, MAX_BACKOFF) {
            Ok(stream) => return Some(stream),
            Err(_) => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_BACKOFF);
            }
        }
    }
}

fn writer_loop(
    local: NodeId,
    addr: SocketAddr,
    outbound: Receiver<SharedFrame>,
    shared: Arc<MeshShared>,
) {
    // A frame that failed mid-write and must go out first after reconnecting.
    let mut carry_over: Option<SharedFrame> = None;
    'connection: loop {
        let Some(mut stream) = connect_with_backoff(addr, &shared) else {
            return;
        };
        let _ = stream.set_nodelay(true);
        let preamble = encode_preamble(local);
        if stream.write_all(&preamble).is_err() {
            continue 'connection;
        }
        shared
            .stats
            .bytes_sent
            .fetch_add(PREAMBLE_LEN as u64, Ordering::Relaxed);
        loop {
            let frame = match carry_over.take() {
                Some(frame) => frame,
                None => match outbound.recv_timeout(POLL * 10) {
                    Ok(frame) => frame,
                    Err(RecvTimeoutError::Timeout) => {
                        if shared.is_shutdown() {
                            return;
                        }
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => return,
                },
            };
            if stream.write_all(&frame).is_err() {
                if shared.is_shutdown() {
                    return;
                }
                carry_over = Some(frame);
                continue 'connection;
            }
            shared
                .stats
                .bytes_sent
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
            shared.stats.messages_sent.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seemore_types::{SeqNum, Timestamp};
    use seemore_wire::{ClientRequest, StateRequest, WireSize};

    fn nodes() -> Vec<NodeId> {
        vec![
            NodeId::Replica(ReplicaId(0)),
            NodeId::Replica(ReplicaId(1)),
            NodeId::Client(ClientId(7)),
        ]
    }

    fn state_request(seq: u64) -> Message {
        Message::StateRequest(StateRequest {
            from_seq: SeqNum(seq),
            replica: ReplicaId(0),
        })
    }

    #[test]
    fn messages_cross_the_mesh_with_sender_identity() {
        let mesh = TcpMesh::new(&nodes()).unwrap();
        let a = mesh.take_endpoint(NodeId::Replica(ReplicaId(0))).unwrap();
        let b = mesh.take_endpoint(NodeId::Replica(ReplicaId(1))).unwrap();

        for seq in 0..10 {
            a.send(NodeId::Replica(ReplicaId(1)), &state_request(seq))
                .unwrap();
        }
        for seq in 0..10 {
            let (from, message) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(from, NodeId::Replica(ReplicaId(0)));
            assert_eq!(message, state_request(seq), "FIFO on one connection");
        }
        mesh.shutdown();
    }

    #[test]
    fn bytes_on_wire_match_the_size_contract() {
        let mesh = TcpMesh::new(&nodes()).unwrap();
        let client = mesh.take_endpoint(NodeId::Client(ClientId(7))).unwrap();
        let replica = mesh.take_endpoint(NodeId::Replica(ReplicaId(0))).unwrap();

        let message = Message::Request(ClientRequest {
            client: ClientId(7),
            timestamp: Timestamp(1),
            operation: vec![0xEE; 500],
            signature: seemore_crypto::Signature::INVALID,
        });
        client
            .send(NodeId::Replica(ReplicaId(0)), &message)
            .unwrap();
        let (from, received) = replica.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, NodeId::Client(ClientId(7)));
        assert_eq!(received, message);

        let stats = mesh.stats();
        assert_eq!(stats.messages_sent(), 1);
        assert_eq!(stats.messages_received(), 1);
        // Wire bytes = one preamble + exactly wire_size() frame bytes.
        assert_eq!(
            stats.bytes_sent(),
            (PREAMBLE_LEN + message.wire_size()) as u64
        );
        assert_eq!(stats.bytes_received(), stats.bytes_sent());
        mesh.shutdown();
    }

    #[test]
    fn unknown_peers_are_rejected() {
        let mesh = TcpMesh::new(&nodes()).unwrap();
        let a = mesh.take_endpoint(NodeId::Replica(ReplicaId(0))).unwrap();
        assert_eq!(
            a.send(NodeId::Replica(ReplicaId(42)), &state_request(0)),
            Err(TransportError::UnknownPeer(NodeId::Replica(ReplicaId(42))))
        );
        mesh.shutdown();
        assert_eq!(
            a.send(NodeId::Replica(ReplicaId(1)), &state_request(0)),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn preamble_round_trips_identities() {
        for node in nodes() {
            assert_eq!(decode_preamble(&encode_preamble(node)), Some(node));
        }
        let mut garbage = encode_preamble(NodeId::Client(ClientId(1)));
        garbage[0] = b'!';
        assert_eq!(decode_preamble(&garbage), None);
    }
}
