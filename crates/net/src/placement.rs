//! Endpoint placement: which cloud a node lives in.

use seemore_types::{ClusterConfig, NodeId};

/// The location class of an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Zone {
    /// The trusted private cloud.
    Private,
    /// The untrusted public cloud.
    Public,
    /// A client machine (outside both clouds).
    Client,
}

/// Maps endpoints to zones.
///
/// For SeeMoRe clusters the mapping comes from the [`ClusterConfig`]
/// (replicas below `S` are private); for the baselines, which do not
/// distinguish clouds, every replica is placed in the public cloud so that
/// all replica-to-replica links share one latency class — matching the
/// paper's setup where both clouds sit in the same EC2 region.
#[derive(Debug, Clone, Default)]
pub struct Placement {
    cluster: Option<ClusterConfig>,
}

impl Placement {
    /// Placement derived from a SeeMoRe cluster configuration.
    pub fn hybrid(cluster: ClusterConfig) -> Self {
        Placement {
            cluster: Some(cluster),
        }
    }

    /// Placement for a baseline group: every replica in one (public) cloud.
    pub fn flat() -> Self {
        Placement { cluster: None }
    }

    /// The zone of `node`.
    pub fn zone(&self, node: NodeId) -> Zone {
        match node {
            NodeId::Client(_) => Zone::Client,
            NodeId::Replica(replica) => match &self.cluster {
                Some(cluster) if cluster.is_trusted(replica) => Zone::Private,
                _ => Zone::Public,
            },
        }
    }

    /// Whether two endpoints live in different clouds (ignoring clients).
    pub fn crosses_clouds(&self, a: NodeId, b: NodeId) -> bool {
        let (za, zb) = (self.zone(a), self.zone(b));
        za != zb && za != Zone::Client && zb != Zone::Client
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seemore_types::{ClientId, FailureBounds, ReplicaId};

    fn cluster() -> ClusterConfig {
        ClusterConfig::new(2, 4, FailureBounds::new(1, 1)).unwrap()
    }

    #[test]
    fn hybrid_placement_follows_cluster_trust() {
        let placement = Placement::hybrid(cluster());
        assert_eq!(placement.zone(NodeId::Replica(ReplicaId(0))), Zone::Private);
        assert_eq!(placement.zone(NodeId::Replica(ReplicaId(1))), Zone::Private);
        assert_eq!(placement.zone(NodeId::Replica(ReplicaId(2))), Zone::Public);
        assert_eq!(placement.zone(NodeId::Client(ClientId(0))), Zone::Client);
    }

    #[test]
    fn flat_placement_is_all_public() {
        let placement = Placement::flat();
        assert_eq!(placement.zone(NodeId::Replica(ReplicaId(0))), Zone::Public);
        assert_eq!(placement.zone(NodeId::Replica(ReplicaId(9))), Zone::Public);
        assert_eq!(placement.zone(NodeId::Client(ClientId(3))), Zone::Client);
    }

    #[test]
    fn cross_cloud_detection() {
        let placement = Placement::hybrid(cluster());
        let private = NodeId::Replica(ReplicaId(0));
        let public = NodeId::Replica(ReplicaId(3));
        let client = NodeId::Client(ClientId(0));
        assert!(placement.crosses_clouds(private, public));
        assert!(!placement.crosses_clouds(private, NodeId::Replica(ReplicaId(1))));
        assert!(!placement.crosses_clouds(public, NodeId::Replica(ReplicaId(4))));
        assert!(!placement.crosses_clouds(private, client));

        let flat = Placement::flat();
        assert!(!flat.crosses_clouds(private, public));
    }
}
