//! Network substrate for the SeeMoRe reproduction.
//!
//! The paper evaluates SeeMoRe on Amazon EC2 with both clouds in the same
//! region; this crate supplies the models that let the discrete-event
//! simulator (in `seemore-runtime`) reproduce the same experiments on a
//! laptop:
//!
//! * [`Placement`] — which cloud (private, public, or client side) each
//!   endpoint lives in.
//! * [`LatencyModel`] — one-way link latency as a function of the two
//!   endpoints' placements and the message size, with optional jitter.
//! * [`CpuModel`] — per-message processing cost (serialization plus
//!   signature generation/verification), which is what saturates a replica
//!   and bends the throughput/latency curves of Figures 2 and 3.
//! * [`LinkFaults`] — message drop/duplication probabilities and explicit
//!   partitions for fault-injection experiments.
//!
//! Alongside the simulator models, [`tcp`] provides a *real* transport: a
//! `std::net` TCP mesh ([`TcpMesh`]) where every message serializes through
//! the wire codec and crosses an actual socket. The [`Transport`] trait is
//! the seam between the cluster runtimes and the network substrate, kept
//! deliberately narrow so an async (tokio/mio) implementation can slot in
//! once the build environment has registry access.
//!
//! # Hot path
//!
//! The transport is engineered to pay its three dominant costs once instead
//! of per-message/per-peer: [`Transport::broadcast`] serializes a message a
//! single time and shares the encoded frame across every destination
//! (encode-once), established connections are written from the *sending*
//! thread with backlog drains coalesced into single bursts (syscall- and
//! context-switch-light), and receive buffers are reused across frames.
//! See the [`tcp`] module docs for the full design and
//! [`TransportStats`] for the counters quantifying each saving.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cpu;
pub mod faults;
pub mod latency;
pub mod placement;
pub mod tcp;

pub use cpu::CpuModel;
pub use faults::{LinkDecision, LinkFaults};
pub use latency::LatencyModel;
pub use placement::{Placement, Zone};
pub use tcp::{TcpEndpoint, TcpHandle, TcpMesh, Transport, TransportError, TransportStats};
