//! Network substrate for the SeeMoRe reproduction.
//!
//! The paper evaluates SeeMoRe on Amazon EC2 with both clouds in the same
//! region; this crate supplies the models that let the discrete-event
//! simulator (in `seemore-runtime`) reproduce the same experiments on a
//! laptop:
//!
//! * [`Placement`] — which cloud (private, public, or client side) each
//!   endpoint lives in.
//! * [`LatencyModel`] — one-way link latency as a function of the two
//!   endpoints' placements and the message size, with optional jitter.
//! * [`CpuModel`] — per-message processing cost (serialization plus
//!   signature generation/verification), which is what saturates a replica
//!   and bends the throughput/latency curves of Figures 2 and 3.
//! * [`LinkFaults`] — message drop/duplication probabilities and explicit
//!   partitions for fault-injection experiments.
//!
//! Alongside the simulator models, two *real* transports serve actual
//! sockets behind the narrow [`Transport`] trait — the seam between the
//! cluster runtimes and the network substrate, kept deliberately narrow so
//! further substrates (an async runtime, TLS) can slot in without touching
//! the protocol cores:
//!
//! * [`tcp`] — a thread-per-peer `std::net` TCP mesh ([`TcpMesh`]): one
//!   reader thread per inbound connection, one writer thread per dialed
//!   peer, blocking I/O throughout.
//! * [`reactor`] — an event-loop mesh ([`ReactorMesh`]): a small fixed pool
//!   of reactor threads drives *every* connection of the node through
//!   nonblocking sockets and an `epoll` shim ([`poll`]), with gather
//!   (`writev`) backlog drains and many logical clients multiplexed over
//!   one physical connection per peer.
//!
//! # Which transport when
//!
//! * **[`ReactorMesh`] (event loops)** — the default for anything beyond a
//!   handful of connections. Thread count is fixed (a few event loops per
//!   node) regardless of peer or client count, so one node sustains
//!   thousands of concurrent client connections, and hundreds of logical
//!   clients can share one socket per replica via the client hub. Same
//!   FIFO-per-connection, reconnect-with-backoff, encode-once semantics as
//!   the thread-per-peer mesh — the `socket_e2e` suite drives both to
//!   identical histories.
//! * **[`TcpMesh`] (thread-per-peer)** — the baseline the reactor races
//!   against, and the simplest possible substrate when debugging protocol
//!   issues: every connection's I/O is a plain blocking loop you can read
//!   top to bottom. Costs two OS threads per connection, which caps a node
//!   at small meshes and a handful of clients.
//! * **Threaded / simulated runtimes** (`seemore-runtime`) — no sockets at
//!   all; see that crate's docs for when in-process channels or the
//!   discrete-event simulator are the right tool.
//!
//! # Hot path
//!
//! Both socket transports pay their dominant costs once instead of
//! per-message/per-peer: [`Transport::broadcast`] serializes a message a
//! single time and shares the encoded frame across every destination
//! (encode-once), established connections are written from the *sending*
//! thread (the reactor drains congested backlogs with `writev` gather
//! writes instead of a coalescing copy), and receive buffers are reused
//! across frames with hysteresis-bounded capacity. See the [`tcp`] and
//! [`reactor`] module docs for the designs and [`TransportStats`] for the
//! counters quantifying each saving.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cpu;
pub mod faults;
pub mod latency;
pub mod placement;
pub mod poll;
pub mod reactor;
pub mod tcp;

pub use cpu::CpuModel;
pub use faults::{LinkDecision, LinkFaults};
pub use latency::LatencyModel;
pub use placement::{Placement, Zone};
pub use reactor::{ClientHub, HubPort, ReactorEndpoint, ReactorHandle, ReactorMesh};
pub use tcp::{TcpEndpoint, TcpHandle, TcpMesh, Transport, TransportError, TransportStats};
