//! A deterministic replicated key-value store.
//!
//! Operations and results are encoded with a tiny self-describing binary
//! format (1-byte tag + length-prefixed fields) so that requests and replies
//! travel through the protocol as opaque byte strings, exactly like the
//! YCSB-style workloads the paper evaluates against.

use crate::state_machine::StateMachine;
use seemore_crypto::{Digest, Sha256};
use seemore_types::OpClass;
use std::collections::BTreeMap;

/// An operation against the key-value store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Store `value` under `key`, overwriting any previous value.
    Put {
        /// Key to write.
        key: Vec<u8>,
        /// Value to store.
        value: Vec<u8>,
    },
    /// Read the value stored under `key`.
    Get {
        /// Key to read.
        key: Vec<u8>,
    },
    /// Remove `key` and its value.
    Delete {
        /// Key to remove.
        key: Vec<u8>,
    },
    /// Read-modify-write: append `suffix` to the value stored under `key`
    /// (treating a missing value as empty).
    Append {
        /// Key to modify.
        key: Vec<u8>,
        /// Bytes appended to the current value.
        suffix: Vec<u8>,
    },
}

const TAG_PUT: u8 = 1;
const TAG_GET: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_APPEND: u8 = 4;

const RESULT_OK: u8 = 1;
const RESULT_VALUE: u8 = 2;
const RESULT_NOT_FOUND: u8 = 3;
const RESULT_ERROR: u8 = 4;

fn put_field(out: &mut Vec<u8>, field: &[u8]) {
    out.extend_from_slice(&(field.len() as u32).to_le_bytes());
    out.extend_from_slice(field);
}

fn take_field(input: &mut &[u8]) -> Option<Vec<u8>> {
    if input.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes(input[..4].try_into().ok()?) as usize;
    *input = &input[4..];
    if input.len() < len {
        return None;
    }
    let field = input[..len].to_vec();
    *input = &input[len..];
    Some(field)
}

impl KvOp {
    /// Whether this operation mutates the store ([`OpClass::Write`]) or only
    /// observes it ([`OpClass::Read`]). `Get` is the only read; everything
    /// else — including the read-modify-write `Append` — must be ordered.
    pub fn class(&self) -> OpClass {
        match self {
            KvOp::Get { .. } => OpClass::Read,
            KvOp::Put { .. } | KvOp::Delete { .. } | KvOp::Append { .. } => OpClass::Write,
        }
    }

    /// Classifies an *encoded* operation without fully decoding it.
    ///
    /// Conservative: anything that is not a well-formed `Get` (unknown tags,
    /// malformed fields, trailing bytes) is classified as a write, so a
    /// Byzantine client cannot smuggle a mutation through the read path by
    /// mislabelling it.
    pub fn classify(bytes: &[u8]) -> OpClass {
        match KvOp::decode(bytes) {
            Some(op) => op.class(),
            None => OpClass::Write,
        }
    }

    /// Borrows the key of an encoded operation without copying the value —
    /// the shard router's hot path: every operation a client submits is
    /// routed by `key_of` before it touches a wire.
    ///
    /// Returns `None` for malformed input; un-keyed byte strings are routed
    /// by hashing the whole operation instead.
    pub fn key_of(bytes: &[u8]) -> Option<&[u8]> {
        let (&tag, rest) = bytes.split_first()?;
        if !(TAG_PUT..=TAG_APPEND).contains(&tag) {
            return None;
        }
        let len_bytes: [u8; 4] = rest.get(..4)?.try_into().ok()?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        rest.get(4..4 + len)
    }

    /// Encodes the operation into the byte string carried by a `REQUEST`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            KvOp::Put { key, value } => {
                out.push(TAG_PUT);
                put_field(&mut out, key);
                put_field(&mut out, value);
            }
            KvOp::Get { key } => {
                out.push(TAG_GET);
                put_field(&mut out, key);
            }
            KvOp::Delete { key } => {
                out.push(TAG_DELETE);
                put_field(&mut out, key);
            }
            KvOp::Append { key, suffix } => {
                out.push(TAG_APPEND);
                put_field(&mut out, key);
                put_field(&mut out, suffix);
            }
        }
        out
    }

    /// Decodes an operation previously produced by [`encode`](Self::encode).
    ///
    /// Returns `None` for malformed input (a Byzantine client could send
    /// arbitrary bytes; the store replies with an error result rather than
    /// diverging).
    pub fn decode(mut bytes: &[u8]) -> Option<KvOp> {
        let tag = *bytes.first()?;
        bytes = &bytes[1..];
        let op = match tag {
            TAG_PUT => KvOp::Put {
                key: take_field(&mut bytes)?,
                value: take_field(&mut bytes)?,
            },
            TAG_GET => KvOp::Get {
                key: take_field(&mut bytes)?,
            },
            TAG_DELETE => KvOp::Delete {
                key: take_field(&mut bytes)?,
            },
            TAG_APPEND => KvOp::Append {
                key: take_field(&mut bytes)?,
                suffix: take_field(&mut bytes)?,
            },
            _ => return None,
        };
        if bytes.is_empty() {
            Some(op)
        } else {
            None
        }
    }
}

/// The result of executing a [`KvOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResult {
    /// The write / delete succeeded.
    Ok,
    /// A read returned this value.
    Value(
        /// The bytes stored under the requested key.
        Vec<u8>,
    ),
    /// The requested key does not exist.
    NotFound,
    /// The operation could not be decoded.
    MalformedOperation,
}

impl KvResult {
    /// Encodes the result into the byte string carried by a `REPLY`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            KvResult::Ok => out.push(RESULT_OK),
            KvResult::Value(value) => {
                out.push(RESULT_VALUE);
                put_field(&mut out, value);
            }
            KvResult::NotFound => out.push(RESULT_NOT_FOUND),
            KvResult::MalformedOperation => out.push(RESULT_ERROR),
        }
        out
    }

    /// Decodes a result previously produced by [`encode`](Self::encode).
    pub fn decode(mut bytes: &[u8]) -> Option<KvResult> {
        let tag = *bytes.first()?;
        bytes = &bytes[1..];
        let result = match tag {
            RESULT_OK => KvResult::Ok,
            RESULT_VALUE => KvResult::Value(take_field(&mut bytes)?),
            RESULT_NOT_FOUND => KvResult::NotFound,
            RESULT_ERROR => KvResult::MalformedOperation,
            _ => return None,
        };
        if bytes.is_empty() {
            Some(result)
        } else {
            None
        }
    }
}

/// A deterministic, in-memory key-value store.
///
/// Uses a `BTreeMap` so that iteration order — and therefore the state
/// digest — is identical on every replica.
#[derive(Debug, Default, Clone)]
pub struct KvStore {
    data: BTreeMap<Vec<u8>, Vec<u8>>,
    executed: u64,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Direct read access (not part of the replicated interface; used by
    /// tests and examples to inspect state).
    pub fn get(&self, key: &[u8]) -> Option<&Vec<u8>> {
        self.data.get(key)
    }

    /// Applies a decoded operation.
    pub fn apply(&mut self, op: KvOp) -> KvResult {
        match op {
            KvOp::Put { key, value } => {
                self.data.insert(key, value);
                KvResult::Ok
            }
            KvOp::Get { key } => match self.data.get(&key) {
                Some(value) => KvResult::Value(value.clone()),
                None => KvResult::NotFound,
            },
            KvOp::Delete { key } => {
                if self.data.remove(&key).is_some() {
                    KvResult::Ok
                } else {
                    KvResult::NotFound
                }
            }
            KvOp::Append { key, suffix } => {
                self.data.entry(key).or_default().extend_from_slice(&suffix);
                KvResult::Ok
            }
        }
    }
}

impl StateMachine for KvStore {
    fn execute(&mut self, op: &[u8]) -> Vec<u8> {
        self.executed += 1;
        match KvOp::decode(op) {
            Some(op) => self.apply(op).encode(),
            None => KvResult::MalformedOperation.encode(),
        }
    }

    fn execute_read(&self, op: &[u8]) -> Option<Vec<u8>> {
        // Only a well-formed `Get` is served without ordering; every other
        // operation (or garbage) is refused so it cannot bypass agreement.
        match KvOp::decode(op) {
            Some(KvOp::Get { key }) => {
                let result = match self.data.get(&key) {
                    Some(value) => KvResult::Value(value.clone()),
                    None => KvResult::NotFound,
                };
                Some(result.encode())
            }
            _ => None,
        }
    }

    fn state_digest(&self) -> Digest {
        let mut hasher = Sha256::new();
        hasher.update(&(self.data.len() as u64).to_le_bytes());
        for (key, value) in &self.data {
            hasher.update(&(key.len() as u64).to_le_bytes());
            hasher.update(key);
            hasher.update(&(value.len() as u64).to_le_bytes());
            hasher.update(value);
        }
        Digest::from_bytes(hasher.finalize())
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.executed.to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u64).to_le_bytes());
        for (key, value) in &self.data {
            put_field(&mut out, key);
            put_field(&mut out, value);
        }
        out
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let mut input = snapshot;
        if input.len() < 16 {
            return;
        }
        self.executed = u64::from_le_bytes(input[..8].try_into().unwrap());
        let count = u64::from_le_bytes(input[8..16].try_into().unwrap());
        input = &input[16..];
        self.data.clear();
        for _ in 0..count {
            let (Some(key), Some(value)) = (take_field(&mut input), take_field(&mut input)) else {
                break;
            };
            self.data.insert(key, value);
        }
    }

    fn executed_count(&self) -> u64 {
        self.executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_of_borrows_the_key_of_every_op_shape() {
        let ops = [
            KvOp::Put {
                key: b"alpha".to_vec(),
                value: b"v".to_vec(),
            },
            KvOp::Get {
                key: b"alpha".to_vec(),
            },
            KvOp::Delete {
                key: b"alpha".to_vec(),
            },
            KvOp::Append {
                key: b"alpha".to_vec(),
                suffix: b"s".to_vec(),
            },
        ];
        for op in &ops {
            let bytes = op.encode();
            assert_eq!(KvOp::key_of(&bytes), Some(&b"alpha"[..]));
        }
        // Empty keys are still keys.
        let empty = KvOp::Get { key: Vec::new() }.encode();
        assert_eq!(KvOp::key_of(&empty), Some(&b""[..]));
    }

    #[test]
    fn key_of_rejects_malformed_bytes() {
        assert_eq!(KvOp::key_of(&[]), None);
        assert_eq!(KvOp::key_of(&[9, 0, 0, 0, 0]), None); // unknown tag
        assert_eq!(KvOp::key_of(&[TAG_GET, 5, 0, 0, 0, b'k']), None); // short key
        assert_eq!(KvOp::key_of(&[TAG_PUT, 2, 0]), None); // truncated length
    }

    #[test]
    fn classification_is_conservative() {
        assert_eq!(KvOp::Get { key: b"k".to_vec() }.class(), OpClass::Read);
        assert_eq!(
            KvOp::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec()
            }
            .class(),
            OpClass::Write
        );
        assert_eq!(KvOp::Delete { key: b"k".to_vec() }.class(), OpClass::Write);
        assert_eq!(
            KvOp::Append {
                key: b"k".to_vec(),
                suffix: b"s".to_vec()
            }
            .class(),
            OpClass::Write
        );
        // Encoded classification agrees with the decoded one.
        assert_eq!(
            KvOp::classify(&KvOp::Get { key: b"k".to_vec() }.encode()),
            OpClass::Read
        );
        // Garbage, truncated and trailing-byte encodings are writes.
        assert_eq!(KvOp::classify(&[]), OpClass::Write);
        assert_eq!(KvOp::classify(&[99, 1, 2]), OpClass::Write);
        let mut with_trailing = KvOp::Get { key: b"k".to_vec() }.encode();
        with_trailing.push(0);
        assert_eq!(KvOp::classify(&with_trailing), OpClass::Write);
    }

    #[test]
    fn execute_read_serves_gets_without_mutating() {
        let mut store = KvStore::new();
        store.execute(
            &KvOp::Put {
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            }
            .encode(),
        );
        let digest_before = store.state_digest();
        let executed_before = store.executed_count();

        let hit = store
            .execute_read(&KvOp::Get { key: b"a".to_vec() }.encode())
            .expect("well-formed get is served");
        assert_eq!(KvResult::decode(&hit), Some(KvResult::Value(b"1".to_vec())));
        let miss = store
            .execute_read(&KvOp::Get { key: b"z".to_vec() }.encode())
            .expect("misses are still served");
        assert_eq!(KvResult::decode(&miss), Some(KvResult::NotFound));

        // Writes, read-modify-writes and garbage are refused.
        assert!(store
            .execute_read(
                &KvOp::Put {
                    key: b"a".to_vec(),
                    value: b"2".to_vec()
                }
                .encode()
            )
            .is_none());
        assert!(store
            .execute_read(
                &KvOp::Append {
                    key: b"a".to_vec(),
                    suffix: b"x".to_vec()
                }
                .encode()
            )
            .is_none());
        assert!(store.execute_read(b"\xffgarbage").is_none());

        // Reads left no trace: digest and execution count are untouched.
        assert_eq!(store.state_digest(), digest_before);
        assert_eq!(store.executed_count(), executed_before);
    }

    #[test]
    fn op_encode_decode_round_trip() {
        let ops = vec![
            KvOp::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
            KvOp::Get {
                key: b"key".to_vec(),
            },
            KvOp::Delete { key: vec![] },
            KvOp::Append {
                key: b"log".to_vec(),
                suffix: b"entry".to_vec(),
            },
        ];
        for op in ops {
            assert_eq!(KvOp::decode(&op.encode()), Some(op));
        }
    }

    #[test]
    fn result_encode_decode_round_trip() {
        let results = vec![
            KvResult::Ok,
            KvResult::Value(b"payload".to_vec()),
            KvResult::NotFound,
            KvResult::MalformedOperation,
        ];
        for result in results {
            assert_eq!(KvResult::decode(&result.encode()), Some(result));
        }
    }

    #[test]
    fn malformed_encodings_are_rejected() {
        assert_eq!(KvOp::decode(&[]), None);
        assert_eq!(KvOp::decode(&[99]), None);
        assert_eq!(KvOp::decode(&[TAG_PUT, 4, 0, 0, 0, b'a']), None);
        // Trailing bytes are rejected.
        let mut encoded = KvOp::Get { key: b"k".to_vec() }.encode();
        encoded.push(0);
        assert_eq!(KvOp::decode(&encoded), None);
        assert_eq!(KvResult::decode(&[]), None);
        assert_eq!(KvResult::decode(&[99]), None);
    }

    #[test]
    fn store_put_get_delete_semantics() {
        let mut store = KvStore::new();
        assert!(store.is_empty());
        assert_eq!(
            store.apply(KvOp::Get { key: b"a".to_vec() }),
            KvResult::NotFound
        );
        assert_eq!(
            store.apply(KvOp::Put {
                key: b"a".to_vec(),
                value: b"1".to_vec()
            }),
            KvResult::Ok
        );
        assert_eq!(
            store.apply(KvOp::Get { key: b"a".to_vec() }),
            KvResult::Value(b"1".to_vec())
        );
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.apply(KvOp::Delete { key: b"a".to_vec() }),
            KvResult::Ok
        );
        assert_eq!(
            store.apply(KvOp::Delete { key: b"a".to_vec() }),
            KvResult::NotFound
        );
        assert!(store.get(b"a").is_none());
    }

    #[test]
    fn append_treats_missing_value_as_empty() {
        let mut store = KvStore::new();
        store.apply(KvOp::Append {
            key: b"log".to_vec(),
            suffix: b"a".to_vec(),
        });
        store.apply(KvOp::Append {
            key: b"log".to_vec(),
            suffix: b"b".to_vec(),
        });
        assert_eq!(store.get(b"log"), Some(&b"ab".to_vec()));
    }

    #[test]
    fn execute_counts_and_handles_garbage() {
        let mut store = KvStore::new();
        let result = store.execute(
            &KvOp::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            }
            .encode(),
        );
        assert_eq!(KvResult::decode(&result), Some(KvResult::Ok));
        let result = store.execute(b"\xffgarbage");
        assert_eq!(
            KvResult::decode(&result),
            Some(KvResult::MalformedOperation)
        );
        assert_eq!(store.executed_count(), 2);
    }

    #[test]
    fn state_digest_reflects_content_not_history() {
        let mut a = KvStore::new();
        a.execute(
            &KvOp::Put {
                key: b"x".to_vec(),
                value: b"1".to_vec(),
            }
            .encode(),
        );
        a.execute(
            &KvOp::Put {
                key: b"y".to_vec(),
                value: b"2".to_vec(),
            }
            .encode(),
        );

        let mut b = KvStore::new();
        b.execute(
            &KvOp::Put {
                key: b"y".to_vec(),
                value: b"2".to_vec(),
            }
            .encode(),
        );
        b.execute(
            &KvOp::Put {
                key: b"x".to_vec(),
                value: b"1".to_vec(),
            }
            .encode(),
        );

        // Same content, different insertion order -> same digest.
        assert_eq!(a.state_digest(), b.state_digest());

        b.execute(&KvOp::Delete { key: b"x".to_vec() }.encode());
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut original = KvStore::new();
        for i in 0..100u32 {
            original.execute(
                &KvOp::Put {
                    key: format!("key-{i}").into_bytes(),
                    value: vec![i as u8; (i % 17) as usize],
                }
                .encode(),
            );
        }
        let snapshot = original.snapshot();

        let mut restored = KvStore::new();
        restored.restore(&snapshot);
        assert_eq!(restored.state_digest(), original.state_digest());
        assert_eq!(restored.executed_count(), original.executed_count());
        assert_eq!(restored.len(), original.len());

        // Restoring garbage leaves the store untouched (best effort).
        let mut untouched = KvStore::new();
        untouched.restore(&[1, 2, 3]);
        assert!(untouched.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_op() -> impl Strategy<Value = KvOp> {
        let key = proptest::collection::vec(any::<u8>(), 0..16);
        let value = proptest::collection::vec(any::<u8>(), 0..64);
        prop_oneof![
            (key.clone(), value.clone()).prop_map(|(key, value)| KvOp::Put { key, value }),
            key.clone().prop_map(|key| KvOp::Get { key }),
            key.clone().prop_map(|key| KvOp::Delete { key }),
            (key, value).prop_map(|(key, suffix)| KvOp::Append { key, suffix }),
        ]
    }

    proptest! {
        /// Encoding round-trips for arbitrary operations.
        #[test]
        fn op_round_trip(op in arb_op()) {
            prop_assert_eq!(KvOp::decode(&op.encode()), Some(op));
        }

        /// Two replicas applying the same operation sequence reach the same
        /// state digest and produce the same results (determinism).
        #[test]
        fn replicas_converge(ops in proptest::collection::vec(arb_op(), 0..64)) {
            let mut a = KvStore::new();
            let mut b = KvStore::new();
            for op in &ops {
                let ra = a.execute(&op.encode());
                let rb = b.execute(&op.encode());
                prop_assert_eq!(ra, rb);
            }
            prop_assert_eq!(a.state_digest(), b.state_digest());
        }

        /// Snapshot/restore preserves the digest for arbitrary histories.
        #[test]
        fn snapshot_preserves_state(ops in proptest::collection::vec(arb_op(), 0..64)) {
            let mut store = KvStore::new();
            for op in &ops {
                store.execute(&op.encode());
            }
            let mut restored = KvStore::new();
            restored.restore(&store.snapshot());
            prop_assert_eq!(restored.state_digest(), store.state_digest());
        }
    }
}
