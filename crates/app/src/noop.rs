//! The micro-benchmark application used by the paper's evaluation.
//!
//! The 0/0, 0/4 and 4/0 benchmarks send requests whose payload and reply are
//! respectively (0 KB, 0 KB), (0 KB, 4 KB) and (4 KB, 0 KB). [`NoopApp`]
//! performs no computation; it merely returns a reply of the configured size
//! so that the protocols' sensitivity to request and reply sizes can be
//! measured in isolation (Figure 3).

use crate::state_machine::StateMachine;
use seemore_crypto::Digest;

/// A state machine that ignores operations and returns fixed-size replies.
#[derive(Debug, Clone)]
pub struct NoopApp {
    reply_size: usize,
    executed: u64,
}

impl NoopApp {
    /// Creates a no-op application whose every reply is `reply_size` bytes.
    pub fn new(reply_size: usize) -> Self {
        NoopApp {
            reply_size,
            executed: 0,
        }
    }

    /// The configured reply size in bytes.
    pub fn reply_size(&self) -> usize {
        self.reply_size
    }

    /// Builds the request payload for a given request size, as the workload
    /// generator does for the 0/0, 0/4 and 4/0 benchmarks.
    pub fn request_payload(request_size: usize) -> Vec<u8> {
        vec![0xABu8; request_size]
    }
}

impl Default for NoopApp {
    fn default() -> Self {
        NoopApp::new(0)
    }
}

impl StateMachine for NoopApp {
    fn execute(&mut self, _op: &[u8]) -> Vec<u8> {
        self.executed += 1;
        vec![0xCDu8; self.reply_size]
    }

    fn execute_read(&self, _op: &[u8]) -> Option<Vec<u8>> {
        // Every reply is the same fixed-size payload regardless of state, so
        // any operation is trivially servable as a read (the micro workload
        // classifies its operations as writes, so this only matters when a
        // scenario explicitly issues reads against the no-op application).
        Some(vec![0xCDu8; self.reply_size])
    }

    fn state_digest(&self) -> Digest {
        Digest::of_fields(&[b"noop-app", &self.executed.to_le_bytes()])
    }

    fn snapshot(&self) -> Vec<u8> {
        self.executed.to_le_bytes().to_vec()
    }

    fn restore(&mut self, snapshot: &[u8]) {
        if snapshot.len() >= 8 {
            self.executed = u64::from_le_bytes(snapshot[..8].try_into().unwrap());
        }
    }

    fn executed_count(&self) -> u64 {
        self.executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_size_is_respected() {
        let mut zero = NoopApp::new(0);
        let mut four_kb = NoopApp::new(4096);
        assert_eq!(zero.execute(b"x").len(), 0);
        assert_eq!(four_kb.execute(b"x").len(), 4096);
        assert_eq!(zero.reply_size(), 0);
        assert_eq!(four_kb.reply_size(), 4096);
    }

    #[test]
    fn request_payload_sizes() {
        assert_eq!(NoopApp::request_payload(0).len(), 0);
        assert_eq!(NoopApp::request_payload(4096).len(), 4096);
    }

    #[test]
    fn digest_tracks_execution_count() {
        let mut app = NoopApp::default();
        let d0 = app.state_digest();
        app.execute(b"ignored");
        let d1 = app.state_digest();
        assert_ne!(d0, d1);
        assert_eq!(app.executed_count(), 1);
    }

    #[test]
    fn snapshot_round_trip() {
        let mut app = NoopApp::new(16);
        app.execute(b"a");
        app.execute(b"b");
        let snapshot = app.snapshot();

        let mut other = NoopApp::new(16);
        other.restore(&snapshot);
        assert_eq!(other.executed_count(), 2);
        assert_eq!(other.state_digest(), app.state_digest());

        // Garbage snapshots are ignored.
        let mut untouched = NoopApp::new(16);
        untouched.restore(&[1, 2]);
        assert_eq!(untouched.executed_count(), 0);
    }
}
