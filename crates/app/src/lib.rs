//! Replicated application layer.
//!
//! SeeMoRe (like every State Machine Replication protocol) is agnostic to
//! the service being replicated: replicas agree on an order for opaque
//! operations and each replica applies them to a local copy of the service
//! state. This crate supplies:
//!
//! * [`StateMachine`] — the deterministic-execution contract replicas drive,
//! * [`KvStore`] — a deterministic key-value store used by the examples and
//!   integration tests,
//! * [`NoopApp`] — the micro-benchmark application of the paper's
//!   evaluation (0/0, 0/4 and 4/0 payload configurations), which executes
//!   nothing but returns replies of a configurable size,
//! * [`kv::KvOp`] / [`kv::KvResult`] — a tiny self-describing binary
//!   encoding for operations and results, so that requests are plain byte
//!   strings on the wire exactly as the protocol expects.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod kv;
pub mod noop;
pub mod state_machine;

pub use kv::{KvOp, KvResult, KvStore};
pub use noop::NoopApp;
pub use state_machine::StateMachine;
