//! The deterministic state machine contract.

use seemore_crypto::Digest;

/// A deterministic service replicated by the protocol.
///
/// The paper requires operations to be *atomic* and *deterministic*: the same
/// operation executed in the same initial state must produce the same final
/// state and the same result on every replica, and the initial state must be
/// identical everywhere (Section 5). The protocol guarantees that every
/// non-faulty replica calls [`execute`](StateMachine::execute) with the same
/// operations in the same order.
pub trait StateMachine: Send {
    /// Applies one operation and returns its result.
    ///
    /// `op` is the opaque operation payload carried inside the client's
    /// `REQUEST`; the returned bytes become the `REPLY` payload.
    fn execute(&mut self, op: &[u8]) -> Vec<u8>;

    /// Evaluates a *read-only* operation against the current state without
    /// mutating it, or returns `None` when the operation is not provably
    /// read-only (including malformed input).
    ///
    /// This is the application half of the read fast path: replicas serve
    /// `READ-REQUEST`s through this method instead of ordering them, so an
    /// implementation must guarantee that `execute_read` observes exactly
    /// the state produced by the `execute` history so far and changes
    /// nothing — not even diagnostic counters that feed
    /// [`state_digest`](StateMachine::state_digest). Returning `None` makes
    /// the replica refuse the fast path and the client falls back to the
    /// ordered path, which is always safe; the default implementation
    /// refuses everything.
    fn execute_read(&self, _op: &[u8]) -> Option<Vec<u8>> {
        None
    }

    /// A digest of the current state, used in `CHECKPOINT` messages so that
    /// replicas can compare snapshots without shipping them.
    fn state_digest(&self) -> Digest;

    /// Serializes the full state for state transfer to a lagging replica.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the state with a snapshot produced by
    /// [`snapshot`](StateMachine::snapshot) on another replica.
    fn restore(&mut self, snapshot: &[u8]);

    /// Number of operations executed so far (diagnostic; used by tests to
    /// assert exactly-once execution).
    fn executed_count(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal in-test state machine: appends operation lengths.
    struct Counter {
        total: u64,
        executed: u64,
    }

    impl StateMachine for Counter {
        fn execute(&mut self, op: &[u8]) -> Vec<u8> {
            self.total += op.len() as u64;
            self.executed += 1;
            self.total.to_le_bytes().to_vec()
        }
        fn state_digest(&self) -> Digest {
            Digest::of_fields(&[b"counter", &self.total.to_le_bytes()])
        }
        fn snapshot(&self) -> Vec<u8> {
            let mut out = self.total.to_le_bytes().to_vec();
            out.extend_from_slice(&self.executed.to_le_bytes());
            out
        }
        fn restore(&mut self, snapshot: &[u8]) {
            self.total = u64::from_le_bytes(snapshot[..8].try_into().unwrap());
            self.executed = u64::from_le_bytes(snapshot[8..16].try_into().unwrap());
        }
        fn executed_count(&self) -> u64 {
            self.executed
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut sm: Box<dyn StateMachine> = Box::new(Counter {
            total: 0,
            executed: 0,
        });
        let r1 = sm.execute(b"abc");
        assert_eq!(r1, 3u64.to_le_bytes().to_vec());
        assert_eq!(sm.executed_count(), 1);
        let digest_before = sm.state_digest();
        sm.execute(b"defg");
        assert_ne!(sm.state_digest(), digest_before);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut a = Counter {
            total: 0,
            executed: 0,
        };
        a.execute(b"hello");
        a.execute(b"world!");
        let snap = a.snapshot();

        let mut b = Counter {
            total: 0,
            executed: 0,
        };
        b.restore(&snap);
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(b.executed_count(), 2);
    }
}
